package sgx

import (
	"errors"
	"sync"
	"sync/atomic"

	"montsalvat/internal/simcfg"
)

// Switchless calls (Tian et al., SysTEX'18 [51], the paper's §7 future
// work): instead of a context-switching transition, the caller posts the
// request into a shared mailbox served by a resident worker thread,
// paying only cross-core hand-off latency. The SGX SDK marks individual
// routines switchless in the EDL; here the boundary dispatch layer (or
// any direct caller) opts in per call via Pool.Call/TryCall. Two
// symmetric pools exist:
//
//   - SwitchlessPool serves ecalls with resident *enclave* workers, each
//     pinning one TCS slot for the pool's lifetime;
//   - HostPool serves ocalls with resident *host* workers, so trusted
//     code can call out without a full enclave exit.
//
// Long-running calls (e.g. the GC helper thread) should keep regular
// transitions — a resident worker blocked on them would starve the
// mailbox. TryCall returns ErrPoolBusy instead of queueing when every
// worker is occupied; callers fall back to a regular transition, which
// both models the SDK's fallback path and makes nested relay chains
// deadlock-free.

// Errors returned by switchless pools.
var (
	// ErrPoolStopped is returned for calls submitted after Stop.
	ErrPoolStopped = errors.New("sgx: switchless pool stopped")
	// ErrPoolBusy is returned by TryCall when the mailbox is full.
	ErrPoolBusy = errors.New("sgx: switchless pool busy")
)

type swReq struct {
	id    int
	fn    func() error
	reply chan error
}

// mailbox is the stop-safe request channel shared by both pool kinds.
//
// The shutdown protocol closes the subtle race the original pool had: a
// request posted just as Stop closed the stop channel could land in the
// buffer after the last worker exited, leaving the caller blocked on its
// reply forever. Posting now happens under a read lock with `stopped`
// checked first; Stop closes the stop channel, then takes the write lock
// to flip `stopped` (waiting out in-flight posts — none can block
// indefinitely, because every post also selects on stop), and finally
// drains the buffer, replying ErrPoolStopped, until the workers are gone
// and the buffer is empty. After that point no post can touch the buffer.
type mailbox struct {
	reqs chan swReq
	stop chan struct{}

	mu      sync.RWMutex
	stopped bool

	stopOnce sync.Once
	wg       sync.WaitGroup

	workers int
	busy    atomic.Int64 // workers currently executing a request
}

func newMailbox(buffer int) *mailbox {
	return &mailbox{
		reqs:    make(chan swReq, buffer),
		stop:    make(chan struct{}),
		workers: buffer,
	}
}

// stats snapshots worker occupancy for the telemetry collector.
func (m *mailbox) stats() PoolStats {
	return PoolStats{
		Workers: m.workers,
		Busy:    int(m.busy.Load()),
		Queued:  len(m.reqs),
	}
}

// PoolStats reports switchless-pool occupancy at one instant.
type PoolStats struct {
	// Workers is the resident worker count.
	Workers int
	// Busy is how many workers are executing a request right now.
	Busy int
	// Queued is how many accepted requests are waiting in the mailbox.
	Queued int
}

// post submits a request, blocking while the mailbox is full. It returns
// ErrPoolStopped if the pool stopped before the request was accepted.
func (m *mailbox) post(req swReq) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.stopped {
		return ErrPoolStopped
	}
	select {
	case m.reqs <- req:
		return nil
	case <-m.stop:
		return ErrPoolStopped
	}
}

// tryPost submits a request only if a mailbox slot is immediately free.
func (m *mailbox) tryPost(req swReq) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.stopped {
		return ErrPoolStopped
	}
	select {
	case m.reqs <- req:
		return nil
	default:
		return ErrPoolBusy
	}
}

// shutdown stops intake, waits for the workers, and fails every request
// left in (or racing into) the buffer with ErrPoolStopped.
func (m *mailbox) shutdown() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.mu.Lock()
	m.stopped = true
	m.mu.Unlock()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	for {
		select {
		case req := <-m.reqs:
			req.reply <- ErrPoolStopped
		case <-done:
			for {
				select {
				case req := <-m.reqs:
					req.reply <- ErrPoolStopped
				default:
					return
				}
			}
		}
	}
}

// SwitchlessPool serves switchless ecalls with resident enclave worker
// threads. Each worker occupies one TCS slot for the pool's lifetime.
type SwitchlessPool struct {
	e  *Enclave
	mb *mailbox
}

// StartSwitchless spawns a pool of resident enclave workers (<=0 means
// simcfg.DefaultSwitchlessWorkers). The enclave must be initialized;
// Stop the pool to release its TCS slots.
func (e *Enclave) StartSwitchless(workers int) (*SwitchlessPool, error) {
	if err := e.checkRunnable(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = simcfg.DefaultSwitchlessWorkers
	}
	p := &SwitchlessPool{e: e, mb: newMailbox(workers)}
	for i := 0; i < workers; i++ {
		// Each resident worker enters the enclave once (one regular
		// ecall) and stays inside serving the mailbox.
		<-e.tcs
		e.clock.Charge(e.cfg.TransitionCycles(true))
		e.ecalls.Add(1)
		e.depth.Add(1)
		p.mb.wg.Add(1)
		go p.worker()
	}
	return p, nil
}

// EnterResident establishes long-lived enclave residency for the
// calling goroutine outside the pool machinery: it takes a TCS slot,
// charges one regular entry transition, and marks the goroutine as
// executing inside the enclave (so nested ocalls — including the
// switchless host path — are legal). The returned leave releases the
// slot; it is idempotent. The ring data plane uses this for its
// trusted-side resident consumers, which poll shared memory instead of
// a mailbox.
func (e *Enclave) EnterResident() (func(), error) {
	if err := e.checkRunnable(); err != nil {
		return nil, err
	}
	<-e.tcs
	e.clock.Charge(e.cfg.TransitionCycles(true))
	e.ecalls.Add(1)
	e.depth.Add(1)
	var once sync.Once
	leave := func() {
		once.Do(func() {
			e.depth.Add(-1)
			e.tcs <- struct{}{}
		})
	}
	return leave, nil
}

func (p *SwitchlessPool) worker() {
	defer func() {
		p.e.depth.Add(-1)
		p.e.tcs <- struct{}{}
		p.mb.wg.Done()
	}()
	for {
		select {
		case req := <-p.mb.reqs:
			p.mb.busy.Add(1)
			p.e.mu.Lock()
			p.e.ecallsByID[req.id]++
			p.e.mu.Unlock()
			req.reply <- req.fn()
			p.mb.busy.Add(-1)
		case <-p.mb.stop:
			return
		}
	}
}

// Stats reports the pool's current worker occupancy.
func (p *SwitchlessPool) Stats() PoolStats { return p.mb.stats() }

// Call executes fn inside the enclave via the worker mailbox, charging
// only the switchless hand-off cost instead of a full transition. It
// blocks until a worker is free.
func (p *SwitchlessPool) Call(id int, fn func() error) error {
	return p.call(id, fn, p.mb.post)
}

// TryCall is Call, except it returns ErrPoolBusy instead of waiting when
// every worker is occupied. Callers should fall back to a regular ecall.
func (p *SwitchlessPool) TryCall(id int, fn func() error) error {
	return p.call(id, fn, p.mb.tryPost)
}

func (p *SwitchlessPool) call(id int, fn func() error, post func(swReq) error) error {
	if err := p.e.checkRunnable(); err != nil {
		return err
	}
	req := swReq{id: id, fn: fn, reply: make(chan error, 1)}
	if err := post(req); err != nil {
		return err
	}
	p.e.clock.Charge(simcfg.SwitchlessCallCycles)
	p.e.ecalls.Add(1)
	p.e.swEcalls.Add(1)
	return <-req.reply
}

// Stop signals the workers to exit the enclave and waits for them,
// releasing their TCS slots. In-flight calls complete first; requests
// still queued (or racing with Stop) fail with ErrPoolStopped rather
// than being abandoned.
func (p *SwitchlessPool) Stop() {
	p.mb.shutdown()
}

// HostPool is the ocall-side mirror of SwitchlessPool: resident host
// worker threads serve trusted→untrusted calls so enclave code can call
// out without paying a full exit/re-enter transition. Host workers run
// outside the enclave and hold no TCS slot.
type HostPool struct {
	e  *Enclave
	mb *mailbox
}

// StartSwitchlessHost spawns a pool of resident host workers (<=0 means
// simcfg.DefaultSwitchlessWorkers).
func (e *Enclave) StartSwitchlessHost(workers int) (*HostPool, error) {
	if err := e.checkRunnable(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = simcfg.DefaultSwitchlessWorkers
	}
	p := &HostPool{e: e, mb: newMailbox(workers)}
	for i := 0; i < workers; i++ {
		p.mb.wg.Add(1)
		go p.worker()
	}
	return p, nil
}

func (p *HostPool) worker() {
	defer p.mb.wg.Done()
	for {
		select {
		case req := <-p.mb.reqs:
			p.mb.busy.Add(1)
			p.e.mu.Lock()
			p.e.ocallsByID[req.id]++
			p.e.mu.Unlock()
			req.reply <- req.fn()
			p.mb.busy.Add(-1)
		case <-p.mb.stop:
			return
		}
	}
}

// Stats reports the pool's current worker occupancy.
func (p *HostPool) Stats() PoolStats { return p.mb.stats() }

// Call executes fn outside the enclave via the host-worker mailbox. Like
// Ocall, it is an error to call out when no enclave thread is executing.
func (p *HostPool) Call(id int, fn func() error) error {
	return p.call(id, fn, p.mb.post)
}

// TryCall is Call, except it returns ErrPoolBusy instead of waiting when
// every worker is occupied. Callers should fall back to a regular ocall.
func (p *HostPool) TryCall(id int, fn func() error) error {
	return p.call(id, fn, p.mb.tryPost)
}

func (p *HostPool) call(id int, fn func() error, post func(swReq) error) error {
	if err := p.e.checkRunnable(); err != nil {
		return err
	}
	if p.e.depth.Load() == 0 {
		return ErrOcallOutside
	}
	req := swReq{id: id, fn: fn, reply: make(chan error, 1)}
	if err := post(req); err != nil {
		return err
	}
	p.e.clock.Charge(simcfg.SwitchlessCallCycles)
	p.e.ocalls.Add(1)
	p.e.swOcalls.Add(1)
	return <-req.reply
}

// Stop terminates the host workers. In-flight calls complete first;
// queued requests fail with ErrPoolStopped.
func (p *HostPool) Stop() {
	p.mb.shutdown()
}
