package sgx

import (
	"errors"
	"sync"

	"montsalvat/internal/simcfg"
)

// Switchless calls (Tian et al., SysTEX'18 [51], the paper's §7 future
// work): instead of a context-switching ecall, the caller posts the
// request into a shared mailbox served by a resident enclave worker
// thread, paying only cross-core hand-off latency. The SGX SDK marks
// individual routines switchless in the EDL; here the caller opts in per
// call via SwitchlessPool.Call. Long-running calls (e.g. the GC helper
// thread) should keep regular transitions — a resident worker blocked on
// them would starve the mailbox.

// ErrPoolStopped is returned for calls submitted after Stop.
var ErrPoolStopped = errors.New("sgx: switchless pool stopped")

// SwitchlessPool serves switchless ecalls with resident enclave worker
// threads. Each worker occupies one TCS slot for the pool's lifetime.
type SwitchlessPool struct {
	e    *Enclave
	reqs chan swReq

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

type swReq struct {
	id    int
	fn    func() error
	reply chan error
}

// StartSwitchless spawns a pool of resident enclave workers (<=0 means
// 2). The enclave must be initialized; Stop the pool to release its TCS
// slots.
func (e *Enclave) StartSwitchless(workers int) (*SwitchlessPool, error) {
	if err := e.checkRunnable(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = 2
	}
	p := &SwitchlessPool{
		e:    e,
		reqs: make(chan swReq),
		stop: make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		// Each resident worker enters the enclave once (one regular
		// ecall) and stays inside serving the mailbox.
		<-e.tcs
		e.clock.Charge(e.cfg.TransitionCycles(true))
		e.ecalls.Add(1)
		e.depth.Add(1)
		p.wg.Add(1)
		go p.worker()
	}
	return p, nil
}

func (p *SwitchlessPool) worker() {
	defer func() {
		p.e.depth.Add(-1)
		p.e.tcs <- struct{}{}
		p.wg.Done()
	}()
	for {
		select {
		case req := <-p.reqs:
			p.e.mu.Lock()
			p.e.ecallsByID[req.id]++
			p.e.mu.Unlock()
			req.reply <- req.fn()
		case <-p.stop:
			return
		}
	}
}

// Call executes fn inside the enclave via the worker mailbox, charging
// only the switchless hand-off cost instead of a full transition.
func (p *SwitchlessPool) Call(id int, fn func() error) error {
	if err := p.e.checkRunnable(); err != nil {
		return err
	}
	p.e.clock.Charge(simcfg.SwitchlessCallCycles)
	req := swReq{id: id, fn: fn, reply: make(chan error, 1)}
	select {
	case p.reqs <- req:
	case <-p.stop:
		return ErrPoolStopped
	}
	p.e.ecalls.Add(1)
	return <-req.reply
}

// Stop signals the workers to exit the enclave and waits for them,
// releasing their TCS slots. In-flight calls complete first.
func (p *SwitchlessPool) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
}
