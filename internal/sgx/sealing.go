package sgx

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
)

// Sealing — the EGETKEY/seal-data facility of the SGX SDK. An enclave
// derives a sealing key bound to its identity and encrypts data so that
// only the same enclave (MRENCLAVE policy) or any enclave from the same
// author (MRSIGNER policy) on the same platform can recover it. Sealed
// blobs survive enclave teardown: persist them through the untrusted
// filesystem and unseal after restart + re-attestation.
//
// Keys are derived HKDF-style from a per-platform hardware secret (the
// analog of the CPU's fused seal key) plus the chosen identity.

// SealPolicy selects the identity the sealing key binds to.
type SealPolicy int

// Seal policies.
const (
	// SealToMRENCLAVE binds sealed data to this exact enclave image.
	SealToMRENCLAVE SealPolicy = iota + 1
	// SealToMRSIGNER binds sealed data to the enclave author, so
	// upgraded enclave versions can unseal old data.
	SealToMRSIGNER
)

func (p SealPolicy) String() string {
	if p == SealToMRENCLAVE {
		return "MRENCLAVE"
	}
	return "MRSIGNER"
}

// ErrUnseal is returned when a sealed blob cannot be recovered: wrong
// enclave identity, wrong platform, or tampered ciphertext.
var ErrUnseal = errors.New("sgx: unseal failed")

// sealedOverhead is nonce + GCM tag.
const sealedOverhead = 12 + 16

// PlatformSecret is the per-machine hardware seal secret. A Platform
// owns one; enclaves on the same Platform derive their keys from it.
type PlatformSecret [32]byte

// NewPlatformSecret generates a fresh per-platform seal secret.
func NewPlatformSecret() (PlatformSecret, error) {
	var s PlatformSecret
	if _, err := rand.Read(s[:]); err != nil {
		return PlatformSecret{}, fmt.Errorf("sgx: platform secret: %w", err)
	}
	return s, nil
}

// SealingKey derives the enclave's sealing key for a policy (EGETKEY).
// The enclave must be initialized: MRSIGNER is only known after EINIT.
func (e *Enclave) SealingKey(secret PlatformSecret, policy SealPolicy) ([32]byte, error) {
	e.mu.Lock()
	st := e.st
	meas := e.measurement
	signer := e.mrsigner
	e.mu.Unlock()
	var key [32]byte
	if st != stateInitialized {
		return key, ErrNotInitialized
	}
	var identity [32]byte
	switch policy {
	case SealToMRENCLAVE:
		identity = meas
	case SealToMRSIGNER:
		identity = signer
	default:
		return key, fmt.Errorf("sgx: unknown seal policy %d", policy)
	}
	mac := hmac.New(sha256.New, secret[:])
	mac.Write([]byte("sgx-seal-key-v1"))
	mac.Write([]byte{byte(policy)})
	mac.Write(identity[:])
	copy(key[:], mac.Sum(nil))
	return key, nil
}

// Seal encrypts and authenticates data under the enclave's sealing key
// (AES-256-GCM with a random nonce), with additionalData bound into the
// tag (like the SDK's AAD parameter).
func (e *Enclave) Seal(secret PlatformSecret, policy SealPolicy, data, additionalData []byte) ([]byte, error) {
	key, err := e.SealingKey(secret, policy)
	if err != nil {
		return nil, err
	}
	aead, err := newSealAEAD(key)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("sgx: seal nonce: %w", err)
	}
	return aead.Seal(nonce, nonce, data, additionalData), nil
}

// Unseal recovers data sealed by Seal. It fails for blobs sealed by a
// different enclave identity (under MRENCLAVE policy), by a different
// author (MRSIGNER), on a different platform, or tampered with.
func (e *Enclave) Unseal(secret PlatformSecret, policy SealPolicy, blob, additionalData []byte) ([]byte, error) {
	key, err := e.SealingKey(secret, policy)
	if err != nil {
		return nil, err
	}
	aead, err := newSealAEAD(key)
	if err != nil {
		return nil, err
	}
	if len(blob) < sealedOverhead {
		return nil, fmt.Errorf("%w: blob too short", ErrUnseal)
	}
	nonce, ct := blob[:aead.NonceSize()], blob[aead.NonceSize():]
	plain, err := aead.Open(nil, nonce, ct, additionalData)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnseal, err)
	}
	return plain, nil
}

// NewChannelAEAD builds an AES-256-GCM AEAD over a negotiated channel
// key, for secure sessions established against an attested enclave
// (e.g. the enclave gateway). Callers own nonce discipline.
func NewChannelAEAD(key [32]byte) (cipher.AEAD, error) {
	return newSealAEAD(key)
}

func newSealAEAD(key [32]byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("sgx: seal cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("sgx: seal gcm: %w", err)
	}
	return aead, nil
}
