// Package epc simulates the SGX enclave page cache.
//
// Enclave memory is a flat address space whose backing bytes are always
// stored encrypted (paper §2.1: "All EPC pages in DRAM are encrypted and
// only decrypted by a memory encryption engine (MEE) when they are loaded
// into a CPU cache line"). Every Read and Write passes through the MEE at
// 64-byte cache-line granularity, performing real AES work and charging
// MEE cycles.
//
// The usable EPC is limited (93.5 MB on the paper's machine, §6.1) and is
// shared by all memory regions of an enclave, so residency is tracked by a
// Residency object shared across Memory instances. When the resident set
// of 4 KB pages exceeds the limit, the least recently used page is evicted
// — the analog of the Linux SGX driver swapping pages between the EPC and
// regular DRAM, "at a significant cost" (§2.1). Each fault charges fixed
// eviction/load cycle costs on top of the crypto work.
package epc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"montsalvat/internal/cycles"
	"montsalvat/internal/mee"
	"montsalvat/internal/simcfg"
)

const (
	lineBytes = mee.LineBytes
	pageBytes = simcfg.PageBytes
)

// ErrOutOfRange is returned for accesses beyond the memory size.
var ErrOutOfRange = errors.New("epc: access out of range")

// ResidencyStats holds cumulative paging counters.
type ResidencyStats struct {
	// PageFaults counts accesses to non-resident pages.
	PageFaults uint64
	// Evictions counts pages written back to untrusted DRAM.
	Evictions uint64
	// ResidentPages is the current number of EPC-resident pages.
	ResidentPages int
	// CapacityPages is the maximum resident set.
	CapacityPages int
}

// Residency models the limited EPC resident set shared by all memory
// regions of one enclave. It is safe for concurrent use.
type Residency struct {
	mu sync.Mutex

	clock       *cycles.Clock
	maxResident int
	resident    map[pageKey]*lruNode
	lruHead     *lruNode
	lruTail     *lruNode

	faults    uint64
	evictions uint64

	// evictEpoch increments on every eviction. Memories use it to
	// validate their MRU page filter: a repeated touch of the same page
	// may be skipped only while no eviction could have displaced it.
	evictEpoch atomic.Uint64
}

type pageKey struct {
	mem  *Memory
	page int
}

type lruNode struct {
	key        pageKey
	prev, next *lruNode
}

// NewResidency creates a residency tracker for an EPC of the given size.
func NewResidency(epcBytes int, clock *cycles.Clock) (*Residency, error) {
	if epcBytes < pageBytes {
		return nil, fmt.Errorf("epc: EPC size %d smaller than one page", epcBytes)
	}
	if clock == nil {
		return nil, errors.New("epc: nil clock")
	}
	return &Residency{
		clock:       clock,
		maxResident: epcBytes / pageBytes,
		resident:    make(map[pageKey]*lruNode),
	}, nil
}

// Stats returns a snapshot of the paging counters.
func (r *Residency) Stats() ResidencyStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ResidencyStats{
		PageFaults:    r.faults,
		Evictions:     r.evictions,
		ResidentPages: len(r.resident),
		CapacityPages: r.maxResident,
	}
}

// touch marks a page most-recently-used, charging fault/eviction costs.
func (r *Residency) touch(m *Memory, page int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := pageKey{mem: m, page: page}
	if node, ok := r.resident[key]; ok {
		r.moveFront(node)
		return
	}
	r.faults++
	r.clock.Charge(simcfg.EPCPageLoadCycles)
	for len(r.resident) >= r.maxResident {
		victim := r.lruTail
		if victim == nil {
			break
		}
		r.remove(victim)
		delete(r.resident, victim.key)
		r.evictions++
		r.evictEpoch.Add(1)
		r.clock.Charge(simcfg.EPCPageEvictCycles)
	}
	node := &lruNode{key: key}
	r.resident[key] = node
	r.pushFront(node)
}

func (r *Residency) pushFront(n *lruNode) {
	n.prev = nil
	n.next = r.lruHead
	if r.lruHead != nil {
		r.lruHead.prev = n
	}
	r.lruHead = n
	if r.lruTail == nil {
		r.lruTail = n
	}
}

func (r *Residency) remove(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		r.lruHead = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		r.lruTail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (r *Residency) moveFront(n *lruNode) {
	if r.lruHead == n {
		return
	}
	r.remove(n)
	r.pushFront(n)
}

// Memory is an encrypted, integrity-protected address space inside the
// EPC. It is safe for concurrent use; accesses are serialised, matching
// the stop-the-world discipline of the isolate GC that owns it.
type Memory struct {
	mu sync.Mutex

	eng   *mee.Engine
	clock *cycles.Clock
	res   *Residency // nil disables paging accounting

	ct       []byte    // ciphertext backing store
	versions []uint64  // per-line write counters (freshness)
	tags     []mee.Tag // per-line integrity tags
	inited   []bool    // per-line "has been written" flags

	// pt memoises the plaintext of lines whose current ciphertext has
	// already been decrypted (or was just encrypted), so repeated reads
	// of a hot line skip redundant AES work in the emulator. The memo is
	// semantically transparent — it holds exactly the bytes DecryptLine
	// would produce for the current (ct, version, tag) — and is dropped
	// for a line whenever the ciphertext is changed behind the MEE's
	// back (Tamper). Charged MEE cycles are unaffected.
	pt   []byte
	ptOK []bool

	// MRU page filter: consecutive accesses to the same resident page
	// skip the shared residency LRU. Valid only while the residency's
	// eviction epoch is unchanged (guarded in touchPage).
	lastPage  int
	lastEvict uint64
}

// New creates an encrypted memory of the given size. res may be nil, in
// which case no paging costs are modelled (the region always fits).
func New(size int, res *Residency, eng *mee.Engine, clock *cycles.Clock) (*Memory, error) {
	if size < 0 {
		return nil, fmt.Errorf("epc: negative size %d", size)
	}
	if eng == nil {
		return nil, errors.New("epc: nil mee engine")
	}
	if clock == nil {
		return nil, errors.New("epc: nil clock")
	}
	nLines := (size + lineBytes - 1) / lineBytes
	return &Memory{
		eng:      eng,
		clock:    clock,
		res:      res,
		ct:       make([]byte, nLines*lineBytes),
		versions: make([]uint64, nLines),
		tags:     make([]mee.Tag, nLines),
		inited:   make([]bool, nLines),
		pt:       make([]byte, nLines*lineBytes),
		ptOK:     make([]bool, nLines),
		lastPage: -1,
	}, nil
}

// Size returns the addressable size in bytes.
func (m *Memory) Size() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.ct)
}

// Read decrypts len(dst) bytes starting at off into dst.
func (m *Memory) Read(off int, dst []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check(off, len(dst)); err != nil {
		return err
	}
	m.clock.ChargeBytes(len(dst), simcfg.MEEBytesPerCycle)
	var line [lineBytes]byte
	for n := 0; n < len(dst); {
		li := (off + n) / lineBytes
		m.touchPage(li * lineBytes / pageBytes)
		lo := (off + n) % lineBytes
		if m.inited[li] && m.ptOK[li] {
			// Memo hit: copy straight out of the plaintext shadow.
			n += copy(dst[n:], m.pt[li*lineBytes+lo:(li+1)*lineBytes])
			continue
		}
		if err := m.loadLine(li, &line); err != nil {
			return err
		}
		n += copy(dst[n:], line[lo:])
	}
	return nil
}

// Write encrypts src into the memory starting at off. Partial lines are
// handled read-modify-write, as a real cache does.
func (m *Memory) Write(off int, src []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check(off, len(src)); err != nil {
		return err
	}
	m.clock.ChargeBytes(len(src), simcfg.MEEBytesPerCycle)
	var line [lineBytes]byte
	for n := 0; n < len(src); {
		li := (off + n) / lineBytes
		m.touchPage(li * lineBytes / pageBytes)
		lo := (off + n) % lineBytes
		span := lineBytes - lo
		if span > len(src)-n {
			span = len(src) - n
		}
		if span < lineBytes {
			if err := m.loadLine(li, &line); err != nil {
				return err
			}
		}
		copy(line[lo:lo+span], src[n:n+span])
		if err := m.storeLine(li, &line); err != nil {
			return err
		}
		n += span
	}
	return nil
}

// Grow extends the address space to at least newSize bytes. Existing
// contents are preserved. Growth models the enclave heap expanding within
// its configured bound; the caller enforces the bound.
func (m *Memory) Grow(newSize int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if newSize < 0 {
		return fmt.Errorf("epc: negative size %d", newSize)
	}
	nLines := (newSize + lineBytes - 1) / lineBytes
	if nLines*lineBytes <= len(m.ct) {
		return nil
	}
	ct := make([]byte, nLines*lineBytes)
	copy(ct, m.ct)
	m.ct = ct
	versions := make([]uint64, nLines)
	copy(versions, m.versions)
	m.versions = versions
	tags := make([]mee.Tag, nLines)
	copy(tags, m.tags)
	m.tags = tags
	inited := make([]bool, nLines)
	copy(inited, m.inited)
	m.inited = inited
	pt := make([]byte, nLines*lineBytes)
	copy(pt, m.pt)
	m.pt = pt
	ptOK := make([]bool, nLines)
	copy(ptOK, m.ptOK)
	m.ptOK = ptOK
	return nil
}

// Tamper XORs a byte of the ciphertext backing store directly, bypassing
// the MEE — the simulation analog of a physical attacker flipping bits in
// DRAM. A subsequent Read of that line fails integrity verification.
func (m *Memory) Tamper(off int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off < 0 || off >= len(m.ct) {
		return ErrOutOfRange
	}
	m.ct[off] ^= 0xff
	// The memoised plaintext no longer matches the ciphertext; the next
	// read must go through the MEE and fail verification.
	m.ptOK[off/lineBytes] = false
	return nil
}

func (m *Memory) check(off, n int) error {
	if off < 0 || n < 0 || off+n > len(m.ct) {
		return fmt.Errorf("%w: off=%d len=%d size=%d", ErrOutOfRange, off, n, len(m.ct))
	}
	return nil
}

// loadLine decrypts line li into dst. Never-written lines read as zero.
// Lines with a valid plaintext memo skip the AES work entirely.
func (m *Memory) loadLine(li int, dst *[lineBytes]byte) error {
	if !m.inited[li] {
		*dst = [lineBytes]byte{}
		return nil
	}
	if m.ptOK[li] {
		copy(dst[:], m.pt[li*lineBytes:(li+1)*lineBytes])
		return nil
	}
	if err := m.eng.DecryptLine(dst[:], m.ct[li*lineBytes:(li+1)*lineBytes], uint64(li), m.versions[li], m.tags[li]); err != nil {
		return err
	}
	copy(m.pt[li*lineBytes:(li+1)*lineBytes], dst[:])
	m.ptOK[li] = true
	return nil
}

// storeLine bumps the line version and encrypts src into the backing store.
func (m *Memory) storeLine(li int, src *[lineBytes]byte) error {
	m.versions[li]++
	tag, err := m.eng.EncryptLine(m.ct[li*lineBytes:(li+1)*lineBytes], src[:], uint64(li), m.versions[li])
	if err != nil {
		return err
	}
	m.tags[li] = tag
	m.inited[li] = true
	copy(m.pt[li*lineBytes:(li+1)*lineBytes], src[:])
	m.ptOK[li] = true
	return nil
}

func (m *Memory) touchPage(page int) {
	if m.res == nil {
		return
	}
	if page == m.lastPage && m.res.evictEpoch.Load() == m.lastEvict {
		// Same page, no eviction since it was made MRU: it is still
		// resident and no fault can be due — skip the shared LRU.
		return
	}
	// Snapshot the epoch before touching: any eviction that races (or is
	// caused by) this touch invalidates the filter conservatively.
	epoch := m.res.evictEpoch.Load()
	m.res.touch(m, page)
	m.lastPage, m.lastEvict = page, epoch
}
