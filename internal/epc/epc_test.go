package epc

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"montsalvat/internal/cycles"
	"montsalvat/internal/mee"
)

func testMemory(t *testing.T, size, epcBytes int) (*Memory, *Residency, *cycles.Clock) {
	t.Helper()
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i)
	}
	eng, err := mee.NewWithKey(key)
	if err != nil {
		t.Fatalf("mee.NewWithKey: %v", err)
	}
	clk := cycles.New(3.8e9, false)
	var res *Residency
	if epcBytes > 0 {
		res, err = NewResidency(epcBytes, clk)
		if err != nil {
			t.Fatalf("NewResidency: %v", err)
		}
	}
	m, err := New(size, res, eng, clk)
	if err != nil {
		t.Fatalf("epc.New: %v", err)
	}
	return m, res, clk
}

func TestReadWriteRoundTrip(t *testing.T) {
	m, _, _ := testMemory(t, 4096, 0)
	src := []byte("hello enclave world")
	if err := m.Write(100, src); err != nil {
		t.Fatalf("Write: %v", err)
	}
	dst := make([]byte, len(src))
	if err := m.Read(100, dst); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatalf("Read = %q, want %q", dst, src)
	}
}

func TestUnwrittenMemoryReadsZero(t *testing.T) {
	m, _, _ := testMemory(t, 1024, 0)
	dst := make([]byte, 64)
	dst[0] = 0xff
	if err := m.Read(0, dst); err != nil {
		t.Fatalf("Read: %v", err)
	}
	for i, b := range dst {
		if b != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, b)
		}
	}
}

func TestUnalignedAccess(t *testing.T) {
	m, _, _ := testMemory(t, 1024, 0)
	// Write spanning a line boundary at an odd offset.
	src := make([]byte, 130)
	for i := range src {
		src[i] = byte(i + 1)
	}
	if err := m.Write(61, src); err != nil {
		t.Fatalf("Write: %v", err)
	}
	dst := make([]byte, len(src))
	if err := m.Read(61, dst); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatal("unaligned round trip mismatch")
	}
	// Neighbouring bytes untouched.
	one := make([]byte, 1)
	if err := m.Read(60, one); err != nil {
		t.Fatal(err)
	}
	if one[0] != 0 {
		t.Fatalf("byte before write = %#x, want 0", one[0])
	}
}

func TestOverwritePreservesRest(t *testing.T) {
	m, _, _ := testMemory(t, 256, 0)
	if err := m.Write(0, bytes.Repeat([]byte{0xaa}, 128)); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(64, []byte{0xbb}); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 128)
	if err := m.Read(0, dst); err != nil {
		t.Fatal(err)
	}
	if dst[63] != 0xaa || dst[64] != 0xbb || dst[65] != 0xaa {
		t.Fatalf("overwrite leaked: %x %x %x", dst[63], dst[64], dst[65])
	}
}

func TestOutOfRange(t *testing.T) {
	m, _, _ := testMemory(t, 128, 0)
	if err := m.Write(120, make([]byte, 16)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Write out of range: err = %v, want ErrOutOfRange", err)
	}
	if err := m.Read(-1, make([]byte, 1)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Read negative offset: err = %v, want ErrOutOfRange", err)
	}
}

func TestGrowPreservesContents(t *testing.T) {
	m, _, _ := testMemory(t, 128, 0)
	src := []byte("persistent")
	if err := m.Write(3, src); err != nil {
		t.Fatal(err)
	}
	if err := m.Grow(4096); err != nil {
		t.Fatalf("Grow: %v", err)
	}
	if m.Size() < 4096 {
		t.Fatalf("Size() = %d, want >= 4096", m.Size())
	}
	dst := make([]byte, len(src))
	if err := m.Read(3, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatal("contents lost across Grow")
	}
	// Newly grown region is writable.
	if err := m.Write(4000, []byte{1, 2, 3}); err != nil {
		t.Fatalf("Write after grow: %v", err)
	}
}

func TestTamperDetected(t *testing.T) {
	m, _, _ := testMemory(t, 128, 0)
	if err := m.Write(0, bytes.Repeat([]byte{0x42}, 64)); err != nil {
		t.Fatal(err)
	}
	if err := m.Tamper(10); err != nil {
		t.Fatalf("Tamper: %v", err)
	}
	err := m.Read(0, make([]byte, 64))
	if !errors.Is(err, mee.ErrIntegrity) {
		t.Fatalf("Read after tamper: err = %v, want ErrIntegrity", err)
	}
}

func TestPagingEvictsAndFaults(t *testing.T) {
	// 4 pages of EPC, 16 pages of memory: sweeping it twice must fault.
	const size = 16 * 4096
	m, res, clk := testMemory(t, size, 4*4096)
	buf := make([]byte, 4096)
	for sweep := 0; sweep < 2; sweep++ {
		for p := 0; p < 16; p++ {
			if err := m.Write(p*4096, buf); err != nil {
				t.Fatal(err)
			}
		}
	}
	s := res.Stats()
	if s.PageFaults < 32 {
		t.Fatalf("PageFaults = %d, want >= 32 (two full sweeps)", s.PageFaults)
	}
	if s.Evictions == 0 {
		t.Fatal("Evictions = 0, want > 0")
	}
	if s.ResidentPages > 4 {
		t.Fatalf("ResidentPages = %d, want <= 4", s.ResidentPages)
	}
	if clk.Total() == 0 {
		t.Fatal("no cycles charged for paging traffic")
	}
}

func TestResidencySharedAcrossMemories(t *testing.T) {
	key := make([]byte, 32)
	eng, err := mee.NewWithKey(key)
	if err != nil {
		t.Fatal(err)
	}
	clk := cycles.New(1e9, false)
	res, err := NewResidency(2*4096, clk)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := New(4*4096, res, eng, clk)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := New(4*4096, res, eng, clk)
	if err != nil {
		t.Fatal(err)
	}
	// Touch pages in both memories; the shared residency must cap the
	// combined resident set at 2 pages.
	for p := 0; p < 4; p++ {
		if err := m1.Write(p*4096, []byte{1}); err != nil {
			t.Fatal(err)
		}
		if err := m2.Write(p*4096, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	s := res.Stats()
	if s.ResidentPages > 2 {
		t.Fatalf("ResidentPages = %d, want <= 2 across both memories", s.ResidentPages)
	}
	if s.Evictions == 0 {
		t.Fatal("expected evictions from shared residency pressure")
	}
}

func TestLRUKeepsHotPageResident(t *testing.T) {
	m, res, _ := testMemory(t, 8*4096, 2*4096)
	hot := make([]byte, 8)
	// Touch page 0 between every access of pages 1..7; page 0 must never
	// be evicted, so its fault count stays at 1.
	for p := 1; p < 8; p++ {
		if err := m.Read(0, hot); err != nil {
			t.Fatal(err)
		}
		if err := m.Read(p*4096, make([]byte, 8)); err != nil {
			t.Fatal(err)
		}
	}
	before := res.Stats().PageFaults
	if err := m.Read(0, hot); err != nil {
		t.Fatal(err)
	}
	if got := res.Stats().PageFaults; got != before {
		t.Fatalf("hot page faulted: faults %d -> %d", before, got)
	}
}

func TestChargesCyclesForTraffic(t *testing.T) {
	m, _, clk := testMemory(t, 1<<20, 0)
	if err := m.Write(0, make([]byte, 1<<16)); err != nil {
		t.Fatal(err)
	}
	if clk.Total() < 1<<16 {
		t.Fatalf("cycles charged = %d, want >= %d (1 byte/cycle)", clk.Total(), 1<<16)
	}
}

func TestNewValidation(t *testing.T) {
	eng, err := mee.New()
	if err != nil {
		t.Fatal(err)
	}
	clk := cycles.New(1e9, false)
	if _, err := New(-1, nil, eng, clk); err == nil {
		t.Fatal("New accepted negative size")
	}
	if _, err := New(10, nil, nil, clk); err == nil {
		t.Fatal("New accepted nil engine")
	}
	if _, err := New(10, nil, eng, nil); err == nil {
		t.Fatal("New accepted nil clock")
	}
	if _, err := NewResidency(100, clk); err == nil {
		t.Fatal("NewResidency accepted sub-page size")
	}
	if _, err := NewResidency(1<<20, nil); err == nil {
		t.Fatal("NewResidency accepted nil clock")
	}
}

// Property: random writes then reads behave like a plain byte array, even
// with paging enabled.
func TestQuickMirrorsPlainMemory(t *testing.T) {
	const size = 8 * 4096
	m, _, _ := testMemory(t, size, 2*4096)
	shadow := make([]byte, size)
	rng := rand.New(rand.NewSource(7))

	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 16; i++ {
			off := r.Intn(size - 256)
			n := 1 + r.Intn(255)
			data := make([]byte, n)
			rng.Read(data)
			if err := m.Write(off, data); err != nil {
				return false
			}
			copy(shadow[off:], data)
		}
		off := r.Intn(size - 512)
		n := 1 + r.Intn(511)
		got := make([]byte, n)
		if err := m.Read(off, got); err != nil {
			return false
		}
		return bytes.Equal(got, shadow[off:off+n])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
