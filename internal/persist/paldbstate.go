package persist

import (
	"errors"
	"fmt"

	"montsalvat/internal/shim"
)

// ErrImmutableState rejects journaled mutations against a write-once
// state (the paldb index): it changes only by rebuild, never in place.
var ErrImmutableState = errors.New("persist: state is write-once; rebuild and checkpoint instead of journaling")

// PalDBState makes a write-once paldb store durable. The store's
// canonical form already is a single untrusted file (built by
// paldb.NewWriter, served by paldb.Open), so the adapter checkpoints
// the file bytes — sealed, like every checkpoint payload — and recovery
// rewrites the file before readers re-open it. There is no journal
// surface: paldb is immutable after Close, so Apply fails with
// ErrImmutableState and rebuilds are persisted by the next checkpoint.
type PalDBState struct {
	name string
	fs   shim.FS
	file string
}

// NewPalDBState returns an adapter named name for the paldb store file
// on fs. The file may not exist yet (an absent store snapshots empty).
func NewPalDBState(name string, fs shim.FS, file string) *PalDBState {
	return &PalDBState{name: name, fs: fs, file: file}
}

// Name implements State.
func (p *PalDBState) Name() string { return p.name }

// Snapshot implements State: the raw store file (empty when absent).
func (p *PalDBState) Snapshot() ([]byte, error) {
	size, err := p.fs.Size(p.file)
	if err != nil {
		return nil, nil // no store built yet
	}
	buf, err := p.fs.ReadAt(p.file, 0, int(size))
	if err != nil {
		return nil, fmt.Errorf("persist: snapshot %s: %w", p.name, err)
	}
	return buf, nil
}

// Restore implements State: the file is rewritten from the snapshot
// (or removed, for an empty snapshot).
func (p *PalDBState) Restore(data []byte) error {
	_ = p.fs.Remove(p.file)
	if len(data) == 0 {
		return nil
	}
	if err := p.fs.WriteAt(p.file, 0, data); err != nil {
		return fmt.Errorf("persist: restore %s: %w", p.name, err)
	}
	return nil
}

// Apply implements State.
func (p *PalDBState) Apply(rec Record) error {
	return fmt.Errorf("%w: %s record for %q", ErrImmutableState, p.name, rec.Key)
}
