package persist

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"montsalvat/internal/shim"
)

// State is one registered piece of durable trusted state. The Manager
// snapshots it into checkpoints and replays journaled mutations into it
// during recovery. Apply must be idempotent (last-write-wins): the WAL
// tail replayed after a checkpoint may overlap mutations the snapshot
// already captured.
type State interface {
	// Name identifies the state inside checkpoints; it must be stable
	// across restarts and unique within a Manager.
	Name() string
	// Snapshot serialises the current state.
	Snapshot() ([]byte, error)
	// Restore replaces the state from a snapshot.
	Restore(data []byte) error
	// Apply replays one journaled mutation.
	Apply(rec Record) error
}

// MapState is a string→bytes map implementing State — the in-memory
// model the crash matrix and the recovery bench check against, and the
// shape demo KVStore state is mirrored through.
type MapState struct {
	name string
	mu   sync.Mutex
	m    map[string][]byte
}

// NewMapState returns an empty named map state.
func NewMapState(name string) *MapState {
	return &MapState{name: name, m: make(map[string][]byte)}
}

// Name implements State.
func (s *MapState) Name() string { return s.name }

// Put upserts a key (the mutation side; journaling is the caller's job).
func (s *MapState) Put(key string, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = append([]byte(nil), value...)
}

// Get returns the value for key.
func (s *MapState) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	return v, ok
}

// Delete removes a key.
func (s *MapState) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, key)
}

// Len returns the number of keys.
func (s *MapState) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// Keys returns the keys in sorted order.
func (s *MapState) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Snapshot implements State: count, then sorted (key, value) pairs,
// each length-prefixed — deterministic so equal states snapshot equal.
func (s *MapState) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf := binary.AppendUvarint(nil, uint64(len(keys)))
	for _, k := range keys {
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
		buf = binary.AppendUvarint(buf, uint64(len(s.m[k])))
		buf = append(buf, s.m[k]...)
	}
	return buf, nil
}

// Restore implements State.
func (s *MapState) Restore(data []byte) error {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return fmt.Errorf("%w: map count", ErrRecordTruncated)
	}
	data = data[n:]
	m := make(map[string][]byte, count)
	for i := uint64(0); i < count; i++ {
		key, rest, err := decodeField(data, "map key")
		if err != nil {
			return err
		}
		val, rest, err := decodeField(rest, "map value")
		if err != nil {
			return err
		}
		m[string(key)] = append([]byte(nil), val...)
		data = rest
	}
	if len(data) != 0 {
		return fmt.Errorf("%w: %d trailing snapshot bytes", ErrRecordMalformed, len(data))
	}
	s.mu.Lock()
	s.m = m
	s.mu.Unlock()
	return nil
}

// Apply implements State.
func (s *MapState) Apply(rec Record) error {
	switch rec.Op {
	case OpPut:
		s.Put(rec.Key, rec.Value)
	case OpDelete:
		s.Delete(rec.Key)
	default:
		return fmt.Errorf("%w: op %d", ErrRecordMalformed, rec.Op)
	}
	return nil
}

// FSCounterStore persists monotonic-counter values on a shim.FS — the
// untrusted non-volatile storage of the simulated platform services.
// One small file per counter: 8-byte BE value + 32-byte MAC.
type FSCounterStore struct {
	fs     shim.FS
	prefix string
}

// NewFSCounterStore returns a counter store writing prefix + id files
// on fs.
func NewFSCounterStore(fs shim.FS, prefix string) *FSCounterStore {
	return &FSCounterStore{fs: fs, prefix: prefix}
}

func (s *FSCounterStore) file(id string) string { return s.prefix + "counter-" + id }

// LoadCounter implements sgx.CounterStore.
func (s *FSCounterStore) LoadCounter(id string) (uint64, [32]byte, bool, error) {
	var mac [32]byte
	size, err := s.fs.Size(s.file(id))
	if err != nil {
		return 0, mac, false, nil // never stored
	}
	if size != 40 {
		// A truncated or padded counter file is indistinguishable from
		// tampering; surface it as a bad MAC by returning zeroes.
		return 0, mac, true, nil
	}
	buf, err := s.fs.ReadAt(s.file(id), 0, 40)
	if err != nil {
		return 0, mac, false, fmt.Errorf("persist: read counter file: %w", err)
	}
	copy(mac[:], buf[8:])
	return binary.BigEndian.Uint64(buf[:8]), mac, true, nil
}

// StoreCounter implements sgx.CounterStore.
func (s *FSCounterStore) StoreCounter(id string, value uint64, mac [32]byte) error {
	buf := make([]byte, 40)
	binary.BigEndian.PutUint64(buf[:8], value)
	copy(buf[8:], mac[:])
	return s.fs.WriteAt(s.file(id), 0, buf)
}
