package persist

import (
	"errors"
	"fmt"
	"sync"
)

// Crash injection. The durability protocol is only as good as its worst
// crash site, so the Manager instruments every interesting point with a
// crashpoint hook. In production the Injector is nil and the hooks cost
// one nil check; in tests an armed Injector makes the Manager return a
// typed *Crash mid-operation, after which the harness kills the world
// (World.Kill) and drives recovery. The matrix test in crash_test.go
// walks CrashPoints end to end.

// CrashPoint identifies one instrumented point in the commit protocols.
type CrashPoint int

// The crash matrix. Ordering follows the append and checkpoint
// protocols (see Manager.Append / Manager.Checkpoint).
const (
	// CrashBeforeAppend fires before any WAL bytes are written: the
	// mutation is applied in-enclave but never journaled (the caller
	// never acks it).
	CrashBeforeAppend CrashPoint = iota
	// CrashMidAppend fires after the length prefix and half the sealed
	// record have been written — a torn record at the log tail.
	CrashMidAppend
	// CrashAfterAppend fires after the record is fully durable but
	// before the caller is told: recovery may legitimately include one
	// more mutation than was acked.
	CrashAfterAppend
	// CrashBeforeCheckpointSeal fires after the flush barrier, before
	// any checkpoint state is captured.
	CrashBeforeCheckpointSeal
	// CrashMidCheckpoint fires with half the sealed checkpoint file
	// written — a torn checkpoint that must not shadow its predecessor.
	CrashMidCheckpoint
	// CrashAfterCheckpointWrite fires between writing the sealed
	// checkpoint and bumping the monotonic counter: the blob's stamp is
	// one ahead of the counter and must be discarded on recovery.
	CrashAfterCheckpointWrite
	// CrashAfterCounterBump fires after the counter bump but before old
	// checkpoints and segments are cleaned up.
	CrashAfterCounterBump
	// CrashMidTruncate fires after deleting one old segment with more
	// cleanup remaining.
	CrashMidTruncate
	// CrashAfterBatchSeal fires in the group-commit path after the
	// leader sealed the batch record but before any bytes reached
	// storage: the whole group is lost, and since no member was acked,
	// recovery must surface none of them.
	CrashAfterBatchSeal
	// CrashMidBatchAppend fires with the batch frame half-written — a
	// torn batch at the log tail. Replay drops the entire torn frame,
	// so the group vanishes at per-mutation granularity (none acked).
	CrashMidBatchAppend
	// CrashBeforeGroupWake fires after the batch frame is fully durable
	// but before any parked waiter is woken: the batch analogue of
	// CrashAfterAppend — recovery may legitimately surface every
	// mutation of the group even though none was acked.
	CrashBeforeGroupWake

	numCrashPoints
)

// CrashPoints lists every instrumented point, for matrix tests.
func CrashPoints() []CrashPoint {
	pts := make([]CrashPoint, numCrashPoints)
	for i := range pts {
		pts[i] = CrashPoint(i)
	}
	return pts
}

var crashPointNames = [...]string{
	"before-append",
	"mid-append",
	"after-append",
	"before-checkpoint-seal",
	"mid-checkpoint",
	"after-checkpoint-write",
	"after-counter-bump",
	"mid-truncate",
	"after-batch-seal",
	"mid-batch-append",
	"before-group-wake",
}

func (p CrashPoint) String() string {
	if p < 0 || int(p) >= len(crashPointNames) {
		return fmt.Sprintf("crashpoint(%d)", int(p))
	}
	return crashPointNames[p]
}

// Crash is the typed error an armed Injector makes the Manager return.
// The simulated enclave is considered dead at that instant: the caller
// must tear the world down and recover.
type Crash struct {
	Point CrashPoint
}

func (c *Crash) Error() string {
	return fmt.Sprintf("persist: injected crash at %s", c.Point)
}

// IsCrash reports whether err is (or wraps) an injected crash.
func IsCrash(err error) bool {
	var c *Crash
	return errors.As(err, &c)
}

// Injector arms one crash point at a time. Safe for concurrent use.
// The zero value is disarmed.
type Injector struct {
	mu     sync.Mutex
	armed  bool
	point  CrashPoint
	remain int // fire on the remain'th hit (1 = next)
}

// Arm makes the next hit of point crash. Re-arming replaces any
// previous arming.
func (in *Injector) Arm(point CrashPoint) { in.ArmAfter(point, 1) }

// ArmAfter makes the n'th hit of point crash (n >= 1), so tests can
// crash on a later append or checkpoint rather than the first.
func (in *Injector) ArmAfter(point CrashPoint, n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.armed = true
	in.point = point
	in.remain = n
}

// Armed reports the currently armed crash point, if any. Deterministic
// drivers use it to fold the injector's state into their canonical
// state hash.
func (in *Injector) Armed() (CrashPoint, bool) {
	if in == nil {
		return 0, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.armed {
		return 0, false
	}
	return in.point, true
}

// Disarm clears any armed crash point.
func (in *Injector) Disarm() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.armed = false
}

// hit is called by the Manager at each instrumented point; it returns a
// *Crash when the armed point fires. A nil Injector never fires.
func (in *Injector) hit(point CrashPoint) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.armed || in.point != point {
		return nil
	}
	in.remain--
	if in.remain > 0 {
		return nil
	}
	in.armed = false
	return &Crash{Point: point}
}
