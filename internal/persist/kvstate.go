package persist

// This file holds world-backed state adapters: bridges from application
// state living inside a partitioned World to the Manager's State
// interface, so the durability layer can checkpoint and replay
// enclave-resident objects, not just in-process maps.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/wire"
	"montsalvat/internal/world"
)

// ErrNoStoreRef reports a WorldKV used before SetRef pointed it at a
// live store object (required again after every World restart — refs
// die with the enclave).
var ErrNoStoreRef = errors.New("persist: WorldKV has no live store ref (SetRef after boot and after every restart)")

// WorldKV adapts an enclave-resident key-value store object (the demo
// KVStore shape: put/get/size/keyat, string keys and values) to State.
// Snapshot drains the store through its enumeration surface
// (keyat/get) into the deterministic MapState encoding; Restore and
// Apply drive mutations back in through put. The adapter holds a world
// ref, not the object: after a crash/restart cycle the caller re-creates
// the store and re-points the adapter with SetRef before Recover.
type WorldKV struct {
	name string
	w    *world.World

	mu  sync.Mutex
	ref wire.Value
}

// NewWorldKV returns an adapter named name over w, with no store ref
// yet.
func NewWorldKV(name string, w *world.World) *WorldKV {
	return &WorldKV{name: name, w: w, ref: wire.Null()}
}

// SetRef points the adapter at a live store object. Must be called
// before the first Snapshot/Restore/Apply and again after every world
// restart.
func (k *WorldKV) SetRef(ref wire.Value) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.ref = ref
}

// Ref returns the current store ref (null before SetRef).
func (k *WorldKV) Ref() wire.Value {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.ref
}

func (k *WorldKV) liveRef() (wire.Value, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.ref.IsNull() {
		return wire.Value{}, ErrNoStoreRef
	}
	return k.ref, nil
}

// Name implements State.
func (k *WorldKV) Name() string { return k.name }

// Snapshot implements State: the store is enumerated inside one Exec
// frame (size, then keyat/get per index) and encoded as sorted
// length-prefixed pairs — the same deterministic shape MapState uses,
// so a WorldKV checkpoint restores into either adapter.
func (k *WorldKV) Snapshot() ([]byte, error) {
	ref, err := k.liveRef()
	if err != nil {
		return nil, err
	}
	pairs := map[string]string{}
	err = k.w.Exec(false, func(env classmodel.Env) error {
		sz, err := env.Call(ref, "size")
		if err != nil {
			return err
		}
		n, _ := sz.AsInt()
		for i := int64(0); i < n; i++ {
			kv, err := env.Call(ref, "keyat", wire.Int(i))
			if err != nil {
				return err
			}
			key, _ := kv.AsStr()
			vv, err := env.Call(ref, "get", wire.Str(key))
			if err != nil {
				return err
			}
			val, _ := vv.AsStr()
			pairs[key] = val
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("persist: snapshot %s: %w", k.name, err)
	}
	keys := make([]string, 0, len(pairs))
	for key := range pairs {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	buf := binary.AppendUvarint(nil, uint64(len(keys)))
	for _, key := range keys {
		buf = binary.AppendUvarint(buf, uint64(len(key)))
		buf = append(buf, key...)
		buf = binary.AppendUvarint(buf, uint64(len(pairs[key])))
		buf = append(buf, pairs[key]...)
	}
	return buf, nil
}

// Restore implements State: the snapshot's pairs are written into the
// (freshly re-created, empty) store through put.
func (k *WorldKV) Restore(data []byte) error {
	ref, err := k.liveRef()
	if err != nil {
		return err
	}
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return fmt.Errorf("%w: kv count", ErrRecordTruncated)
	}
	data = data[n:]
	type pair struct{ key, val string }
	pairs := make([]pair, 0, count)
	for i := uint64(0); i < count; i++ {
		key, rest, err := decodeField(data, "kv key")
		if err != nil {
			return err
		}
		val, rest, err := decodeField(rest, "kv value")
		if err != nil {
			return err
		}
		pairs = append(pairs, pair{string(key), string(val)})
		data = rest
	}
	if len(data) != 0 {
		return fmt.Errorf("%w: %d trailing snapshot bytes", ErrRecordMalformed, len(data))
	}
	err = k.w.Exec(false, func(env classmodel.Env) error {
		for _, p := range pairs {
			if _, err := env.Call(ref, "put", wire.Str(p.key), wire.Str(p.val)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("persist: restore %s: %w", k.name, err)
	}
	return nil
}

// Apply implements State: a journaled put replays through the store's
// put (idempotent — last write wins). The demo store has no delete
// surface, so OpDelete is a replay error.
func (k *WorldKV) Apply(rec Record) error {
	ref, err := k.liveRef()
	if err != nil {
		return err
	}
	if rec.Op != OpPut {
		return fmt.Errorf("%w: op %d on world kv", ErrRecordMalformed, rec.Op)
	}
	err = k.w.Exec(false, func(env classmodel.Env) error {
		_, err := env.Call(ref, "put", wire.Str(rec.Key), wire.Str(string(rec.Value)))
		return err
	})
	if err != nil {
		return fmt.Errorf("persist: replay %s put %q: %w", k.name, rec.Key, err)
	}
	return nil
}
