package persist

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestCrashMatrix kills the manager at every instrumented crash point
// and proves recovery converges to a prefix-consistent state: every
// acked mutation survives, and at most the single in-flight mutation
// that was durable-but-unacked may additionally appear.
//
// Workload per point: a run of acked puts (small segments force
// rotation), a mid-run checkpoint so there is real checkpoint lineage,
// then the crash — either on a final append (append points) or on an
// explicit checkpoint (checkpoint points). After the crash the world
// is rebuilt from scratch (new enclave, same signer) and recovered.
func TestCrashMatrix(t *testing.T) {
	for _, point := range CrashPoints() {
		t.Run(point.String(), func(t *testing.T) {
			appendPoint := point == CrashBeforeAppend || point == CrashMidAppend || point == CrashAfterAppend
			batchPoint := point == CrashAfterBatchSeal || point == CrashMidBatchAppend || point == CrashBeforeGroupWake
			e := newEnv(t)
			inj := &Injector{}
			opts := Options{Dir: "p/", SegmentBytes: 300, Injector: inj}
			if batchPoint {
				// The batch points only exist on the group-commit path.
				opts.GroupCommit = true
			}

			kv := NewMapState("kv")
			m := e.open(opts, kv)
			if _, err := m.Recover(); err != nil {
				t.Fatal(err)
			}

			acked := map[string]string{}
			put := func(k, v string) {
				t.Helper()
				kv.Put(k, []byte(v))
				mustAppend(t, m, "kv", k, v)
				acked[k] = v
			}
			for i := 0; i < 8; i++ {
				put(fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d", i))
			}
			if err := m.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			for i := 8; i < 14; i++ {
				put(fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d", i))
			}

			// The crash. pending holds the in-flight mutations; mayRecover
			// marks them as legitimately recoverable (durable before the
			// crash fired).
			pending := map[string]string{}
			mayRecover := false
			switch {
			case appendPoint:
				inj.Arm(point)
				pending["pending"] = "pv"
				kv.Put("pending", []byte("pv"))
				_, err := m.Append("kv", OpPut, "pending", []byte("pv"))
				if !IsCrash(err) {
					t.Fatalf("append survived armed %s: %v", point, err)
				}
				mayRecover = point == CrashAfterAppend
			case batchPoint:
				// Crash inside a multi-member batch: park the commit leader
				// on m.mu so followers provably pile into one group, arm the
				// point for the group's commit (hit #2 — the leader's own
				// singleton batch is hit #1), then let it run.
				gc := m.gc
				waitFor := func(cond func() bool, what string) {
					t.Helper()
					deadline := time.Now().Add(5 * time.Second)
					for !cond() {
						if time.Now().After(deadline) {
							t.Fatalf("timeout waiting for %s", what)
						}
						time.Sleep(time.Millisecond)
					}
				}
				m.mu.Lock()
				kv.Put("lead", []byte("lv"))
				leaderErr := make(chan error, 1)
				go func() {
					_, err := m.Append("kv", OpPut, "lead", []byte("lv"))
					leaderErr <- err
				}()
				waitFor(func() bool {
					gc.mu.Lock()
					defer gc.mu.Unlock()
					return gc.leading && len(gc.pending) == 0
				}, "leader to drain its own batch")
				groupKeys := []string{"ga", "gb", "gc"}
				var wg sync.WaitGroup
				errs := make([]error, len(groupKeys))
				for i, k := range groupKeys {
					kv.Put(k, []byte("gv"))
					wg.Add(1)
					go func(i int, k string) {
						defer wg.Done()
						_, errs[i] = m.Append("kv", OpPut, k, []byte("gv"))
					}(i, k)
				}
				waitFor(func() bool {
					gc.mu.Lock()
					defer gc.mu.Unlock()
					return len(gc.pending) == len(groupKeys)
				}, "followers to queue")
				inj.ArmAfter(point, 2)
				m.mu.Unlock()
				if err := <-leaderErr; err != nil {
					t.Fatalf("leader append before armed %s: %v", point, err)
				}
				acked["lead"] = "lv"
				wg.Wait()
				for i, err := range errs {
					if !IsCrash(err) {
						t.Fatalf("group append %q survived armed %s: %v", groupKeys[i], point, err)
					}
				}
				for _, k := range groupKeys {
					pending[k] = "gv"
				}
				mayRecover = point == CrashBeforeGroupWake
			default:
				inj.Arm(point)
				err := m.Checkpoint()
				if !IsCrash(err) {
					t.Fatalf("checkpoint survived armed %s: %v", point, err)
				}
			}
			// Restart: fresh enclave, fresh states, recover from storage.
			inj.Disarm()
			kv2 := NewMapState("kv")
			m2 := e.open(opts, kv2)
			rep, err := m2.Recover()
			if err != nil {
				t.Fatalf("recovery after %s: %v", point, err)
			}
			if (point == CrashMidAppend || point == CrashMidBatchAppend) && !rep.TornTail {
				t.Errorf("%s crash did not surface a torn tail", point)
			}

			// Prefix consistency: all acked mutations present...
			assertPrefix := func(s *MapState) {
				t.Helper()
				for k, v := range acked {
					got, ok := s.Get(k)
					if !ok || string(got) != v {
						t.Fatalf("acked %q lost after %s: got %q, %v", k, point, got, ok)
					}
				}
				// ...and nothing beyond acked plus (maybe) the pending ops.
				for _, k := range s.Keys() {
					if _, ok := acked[k]; ok {
						continue
					}
					if want, ok := pending[k]; ok && mayRecover {
						if got, _ := s.Get(k); string(got) != want {
							t.Fatalf("pending %q recovered with wrong value %q", k, got)
						}
						continue
					}
					t.Fatalf("phantom key %q recovered after %s", k, point)
				}
			}
			assertPrefix(kv2)
			if batchPoint {
				// A batch is all-or-nothing: either the whole group was
				// durable before the crash (before-group-wake) or none of
				// it survives — never a partial group.
				recovered := 0
				for k := range pending {
					if _, ok := kv2.Get(k); ok {
						recovered++
					}
				}
				want := 0
				if mayRecover {
					want = len(pending)
				}
				if recovered != want {
					t.Fatalf("batch recovered %d/%d members after %s, want %d",
						recovered, len(pending), point, want)
				}
			}

			// The recovered log is live: write, checkpoint, restart again.
			kv2.Put("post", []byte("crash"))
			mustAppend(t, m2, "kv", "post", "crash")
			acked["post"] = "crash"
			if mayRecover {
				for k, v := range pending {
					acked[k] = v // now part of durable state
				}
				mayRecover = false
				pending = map[string]string{}
			}
			if err := m2.Checkpoint(); err != nil {
				t.Fatalf("checkpoint after recovery from %s: %v", point, err)
			}
			kv3 := NewMapState("kv")
			m3 := e.open(opts, kv3)
			if _, err := m3.Recover(); err != nil {
				t.Fatalf("second recovery after %s: %v", point, err)
			}
			assertPrefix(kv3)
		})
	}
}

// TestCrashDuringAutoCheckpoint crashes inside a checkpoint triggered
// from Append's auto-checkpoint path: the append itself is durable, so
// it may (and does) surface after recovery even though the caller saw
// an error.
func TestCrashDuringAutoCheckpoint(t *testing.T) {
	e := newEnv(t)
	inj := &Injector{}
	opts := Options{CheckpointEvery: 3, Injector: inj}
	kv := NewMapState("kv")
	m := e.open(opts, kv)
	if _, err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	acked := map[string]string{}
	for i := 0; i < 2; i++ {
		k := fmt.Sprintf("k%d", i)
		kv.Put(k, []byte("v"))
		mustAppend(t, m, "kv", k, "v")
		acked[k] = "v"
	}
	inj.Arm(CrashAfterCheckpointWrite)
	kv.Put("k2", []byte("v"))
	if _, err := m.Append("kv", OpPut, "k2", []byte("v")); !IsCrash(err) {
		t.Fatalf("append #3 should have crashed in auto-checkpoint: %v", err)
	}
	inj.Disarm()

	kv2 := NewMapState("kv")
	m2 := e.open(opts, kv2)
	if _, err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	acked["k2"] = "v" // durable before the checkpoint began
	assertKV(t, kv2, acked)
}

// TestRollbackRejected restores an older full-storage snapshot — the
// classic host rollback — and proves recovery refuses it with the
// typed error instead of silently serving stale state.
func TestRollbackRejected(t *testing.T) {
	e := newEnv(t)
	kv := NewMapState("kv")
	m := e.open(Options{Dir: "p/"}, kv)
	if _, err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	kv.Put("balance", []byte("100"))
	mustAppend(t, m, "kv", "balance", "100")
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	old := e.snapshotFiles() // attacker's copy: balance=100 sealed state

	kv.Put("balance", []byte("0"))
	mustAppend(t, m, "kv", "balance", "0")
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Host swaps the storage back to the old snapshot. The monotonic
	// counter (in its own store) has moved on: recovery must refuse.
	e.restoreFiles(old)
	m2 := e.open(Options{Dir: "p/"}, NewMapState("kv"))
	if _, err := m2.Recover(); !errors.Is(err, ErrRollback) {
		t.Fatalf("rollback recovery: %v, want ErrRollback", err)
	}
}

// TestForkCheckpointRejected renames/copies a stale checkpoint blob
// into the current stamp's file name: the sealed AAD binds the stamp,
// so the forgery fails closed.
func TestForkCheckpointRejected(t *testing.T) {
	e := newEnv(t)
	kv := NewMapState("kv")
	m := e.open(Options{Dir: "p/"}, kv)
	if _, err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	kv.Put("k", []byte("old"))
	mustAppend(t, m, "kv", "k", "old")
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	oldFiles := e.snapshotFiles()
	oldStamp := m.epoch

	kv.Put("k", []byte("new"))
	mustAppend(t, m, "kv", "k", "new")
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	newStamp := m.epoch

	// Graft the old blob under the new stamp's file name.
	oldBlob := oldFiles[m.checkpointName(oldStamp)]
	if oldBlob == nil {
		t.Fatalf("no old checkpoint in snapshot (stamp %d)", oldStamp)
	}
	if err := e.fs.Remove(m.checkpointName(newStamp)); err != nil {
		t.Fatal(err)
	}
	if err := e.fs.WriteAt(m.checkpointName(newStamp), 0, oldBlob); err != nil {
		t.Fatal(err)
	}
	m2 := e.open(Options{Dir: "p/"}, NewMapState("kv"))
	if _, err := m2.Recover(); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("grafted checkpoint: %v, want ErrCorruptCheckpoint", err)
	}
}

// TestCrashErrorShape pins the typed-error contract.
func TestCrashErrorShape(t *testing.T) {
	err := fmt.Errorf("wrapped: %w", &Crash{Point: CrashMidAppend})
	if !IsCrash(err) {
		t.Fatal("IsCrash failed through wrapping")
	}
	var c *Crash
	if !errors.As(err, &c) || c.Point != CrashMidAppend {
		t.Fatalf("crash point lost: %v", c)
	}
	if IsCrash(errors.New("plain")) {
		t.Fatal("IsCrash on plain error")
	}
}
