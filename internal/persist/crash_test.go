package persist

import (
	"errors"
	"fmt"
	"testing"
)

// TestCrashMatrix kills the manager at every instrumented crash point
// and proves recovery converges to a prefix-consistent state: every
// acked mutation survives, and at most the single in-flight mutation
// that was durable-but-unacked may additionally appear.
//
// Workload per point: a run of acked puts (small segments force
// rotation), a mid-run checkpoint so there is real checkpoint lineage,
// then the crash — either on a final append (append points) or on an
// explicit checkpoint (checkpoint points). After the crash the world
// is rebuilt from scratch (new enclave, same signer) and recovered.
func TestCrashMatrix(t *testing.T) {
	for _, point := range CrashPoints() {
		t.Run(point.String(), func(t *testing.T) {
			e := newEnv(t)
			inj := &Injector{}
			opts := Options{Dir: "p/", SegmentBytes: 300, Injector: inj}

			kv := NewMapState("kv")
			m := e.open(opts, kv)
			if _, err := m.Recover(); err != nil {
				t.Fatal(err)
			}

			acked := map[string]string{}
			put := func(k, v string) {
				t.Helper()
				kv.Put(k, []byte(v))
				mustAppend(t, m, "kv", k, v)
				acked[k] = v
			}
			for i := 0; i < 8; i++ {
				put(fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d", i))
			}
			if err := m.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			for i := 8; i < 14; i++ {
				put(fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d", i))
			}

			// The crash. mayRecover marks the in-flight mutation as
			// legitimately recoverable (durable before the crash fired).
			appendPoint := point == CrashBeforeAppend || point == CrashMidAppend || point == CrashAfterAppend
			var pendingKey, pendingVal string
			mayRecover := false
			inj.Arm(point)
			if appendPoint {
				pendingKey, pendingVal = "pending", "pv"
				kv.Put(pendingKey, []byte(pendingVal))
				_, err := m.Append("kv", OpPut, pendingKey, []byte(pendingVal))
				if !IsCrash(err) {
					t.Fatalf("append survived armed %s: %v", point, err)
				}
				mayRecover = point == CrashAfterAppend
			} else {
				err := m.Checkpoint()
				if !IsCrash(err) {
					t.Fatalf("checkpoint survived armed %s: %v", point, err)
				}
			}
			// Restart: fresh enclave, fresh states, recover from storage.
			inj.Disarm()
			kv2 := NewMapState("kv")
			m2 := e.open(opts, kv2)
			rep, err := m2.Recover()
			if err != nil {
				t.Fatalf("recovery after %s: %v", point, err)
			}
			if point == CrashMidAppend && !rep.TornTail {
				t.Error("mid-append crash did not surface a torn tail")
			}

			// Prefix consistency: all acked mutations present...
			assertPrefix := func(s *MapState) {
				t.Helper()
				for k, v := range acked {
					got, ok := s.Get(k)
					if !ok || string(got) != v {
						t.Fatalf("acked %q lost after %s: got %q, %v", k, point, got, ok)
					}
				}
				// ...and nothing beyond acked plus (maybe) the pending op.
				for _, k := range s.Keys() {
					if _, ok := acked[k]; ok {
						continue
					}
					if k == pendingKey && mayRecover {
						if got, _ := s.Get(k); string(got) != pendingVal {
							t.Fatalf("pending %q recovered with wrong value %q", k, got)
						}
						continue
					}
					t.Fatalf("phantom key %q recovered after %s", k, point)
				}
			}
			assertPrefix(kv2)

			// The recovered log is live: write, checkpoint, restart again.
			kv2.Put("post", []byte("crash"))
			mustAppend(t, m2, "kv", "post", "crash")
			acked["post"] = "crash"
			if mayRecover {
				acked[pendingKey] = pendingVal // now part of durable state
				mayRecover = false
				pendingKey = ""
			}
			if err := m2.Checkpoint(); err != nil {
				t.Fatalf("checkpoint after recovery from %s: %v", point, err)
			}
			kv3 := NewMapState("kv")
			m3 := e.open(opts, kv3)
			if _, err := m3.Recover(); err != nil {
				t.Fatalf("second recovery after %s: %v", point, err)
			}
			assertPrefix(kv3)
		})
	}
}

// TestCrashDuringAutoCheckpoint crashes inside a checkpoint triggered
// from Append's auto-checkpoint path: the append itself is durable, so
// it may (and does) surface after recovery even though the caller saw
// an error.
func TestCrashDuringAutoCheckpoint(t *testing.T) {
	e := newEnv(t)
	inj := &Injector{}
	opts := Options{CheckpointEvery: 3, Injector: inj}
	kv := NewMapState("kv")
	m := e.open(opts, kv)
	if _, err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	acked := map[string]string{}
	for i := 0; i < 2; i++ {
		k := fmt.Sprintf("k%d", i)
		kv.Put(k, []byte("v"))
		mustAppend(t, m, "kv", k, "v")
		acked[k] = "v"
	}
	inj.Arm(CrashAfterCheckpointWrite)
	kv.Put("k2", []byte("v"))
	if _, err := m.Append("kv", OpPut, "k2", []byte("v")); !IsCrash(err) {
		t.Fatalf("append #3 should have crashed in auto-checkpoint: %v", err)
	}
	inj.Disarm()

	kv2 := NewMapState("kv")
	m2 := e.open(opts, kv2)
	if _, err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	acked["k2"] = "v" // durable before the checkpoint began
	assertKV(t, kv2, acked)
}

// TestRollbackRejected restores an older full-storage snapshot — the
// classic host rollback — and proves recovery refuses it with the
// typed error instead of silently serving stale state.
func TestRollbackRejected(t *testing.T) {
	e := newEnv(t)
	kv := NewMapState("kv")
	m := e.open(Options{Dir: "p/"}, kv)
	if _, err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	kv.Put("balance", []byte("100"))
	mustAppend(t, m, "kv", "balance", "100")
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	old := e.snapshotFiles() // attacker's copy: balance=100 sealed state

	kv.Put("balance", []byte("0"))
	mustAppend(t, m, "kv", "balance", "0")
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Host swaps the storage back to the old snapshot. The monotonic
	// counter (in its own store) has moved on: recovery must refuse.
	e.restoreFiles(old)
	m2 := e.open(Options{Dir: "p/"}, NewMapState("kv"))
	if _, err := m2.Recover(); !errors.Is(err, ErrRollback) {
		t.Fatalf("rollback recovery: %v, want ErrRollback", err)
	}
}

// TestForkCheckpointRejected renames/copies a stale checkpoint blob
// into the current stamp's file name: the sealed AAD binds the stamp,
// so the forgery fails closed.
func TestForkCheckpointRejected(t *testing.T) {
	e := newEnv(t)
	kv := NewMapState("kv")
	m := e.open(Options{Dir: "p/"}, kv)
	if _, err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	kv.Put("k", []byte("old"))
	mustAppend(t, m, "kv", "k", "old")
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	oldFiles := e.snapshotFiles()
	oldStamp := m.epoch

	kv.Put("k", []byte("new"))
	mustAppend(t, m, "kv", "k", "new")
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	newStamp := m.epoch

	// Graft the old blob under the new stamp's file name.
	oldBlob := oldFiles[m.checkpointName(oldStamp)]
	if oldBlob == nil {
		t.Fatalf("no old checkpoint in snapshot (stamp %d)", oldStamp)
	}
	if err := e.fs.Remove(m.checkpointName(newStamp)); err != nil {
		t.Fatal(err)
	}
	if err := e.fs.WriteAt(m.checkpointName(newStamp), 0, oldBlob); err != nil {
		t.Fatal(err)
	}
	m2 := e.open(Options{Dir: "p/"}, NewMapState("kv"))
	if _, err := m2.Recover(); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("grafted checkpoint: %v, want ErrCorruptCheckpoint", err)
	}
}

// TestCrashErrorShape pins the typed-error contract.
func TestCrashErrorShape(t *testing.T) {
	err := fmt.Errorf("wrapped: %w", &Crash{Point: CrashMidAppend})
	if !IsCrash(err) {
		t.Fatal("IsCrash failed through wrapping")
	}
	var c *Crash
	if !errors.As(err, &c) || c.Point != CrashMidAppend {
		t.Fatalf("crash point lost: %v", c)
	}
	if IsCrash(errors.New("plain")) {
		t.Fatal("IsCrash on plain error")
	}
}
