package persist

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Checkpoint on-disk format. One file per checkpoint, named
// dir + "ckpt-%016x.ckp" by counter stamp:
//
//	[8-byte magic "MSVCKP1\n"]
//	[4-byte BE len][sealed checkpoint payload]
//
// The payload (version, stamp, watermark, per-state snapshots) is
// sealed with AAD binding the stamp, so a blob cannot be renamed into a
// different counter position. The commit protocol orders:
//
//	1. flush the boundary (BeforeCommit) — batched relay calls land
//	2. snapshot registered states, seal with stamp = counter + 1
//	3. write the checkpoint file
//	4. increment the monotonic counter  ← the commit point
//	5. delete older checkpoints, truncate covered segments
//	6. rotate to a fresh segment at the new epoch
//
// A crash before 4 leaves a checkpoint stamped ahead of the counter:
// recovery discards it (incomplete commit) and uses the predecessor
// plus the untruncated WAL tail. A crash after 4 leaves stale files:
// recovery ignores them. Only a checkpoint whose stamp equals the live
// counter is acceptable; a best-available stamp below the counter means
// the matching blob was destroyed or replaced — ErrRollback.

const (
	ckpMagic   = "MSVCKP1\n"
	ckpVersion = 1
	ckpAADTag  = "msv/ckpt/1"
)

type checkpoint struct {
	stamp     uint64 // monotonic-counter value this blob commits to
	watermark uint64 // highest LSN the snapshots capture
	states    map[string][]byte
}

func encodeCheckpoint(c checkpoint) []byte {
	names := make([]string, 0, len(c.states))
	for name := range c.states {
		names = append(names, name)
	}
	sort.Strings(names)
	buf := []byte{ckpVersion}
	buf = appendU64(buf, c.stamp)
	buf = appendU64(buf, c.watermark)
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, name := range names {
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
		buf = binary.AppendUvarint(buf, uint64(len(c.states[name])))
		buf = append(buf, c.states[name]...)
	}
	return buf
}

func decodeCheckpoint(buf []byte) (checkpoint, error) {
	var c checkpoint
	if len(buf) < 1+16 || buf[0] != ckpVersion {
		return c, fmt.Errorf("%w: payload header", ErrCorruptCheckpoint)
	}
	var err error
	rest := buf[1:]
	if c.stamp, rest, err = readU64(rest); err != nil {
		return c, fmt.Errorf("%w: stamp", ErrCorruptCheckpoint)
	}
	if c.watermark, rest, err = readU64(rest); err != nil {
		return c, fmt.Errorf("%w: watermark", ErrCorruptCheckpoint)
	}
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return c, fmt.Errorf("%w: state count", ErrCorruptCheckpoint)
	}
	rest = rest[n:]
	c.states = make(map[string][]byte, count)
	for i := uint64(0); i < count; i++ {
		name, r, err := decodeField(rest, "state name")
		if err != nil {
			return c, fmt.Errorf("%w: %v", ErrCorruptCheckpoint, err)
		}
		// State snapshots may exceed the per-record field bound; they are
		// length-prefixed the same way but checked against the buffer.
		sz, w := binary.Uvarint(r)
		if w <= 0 || uint64(len(r)-w) < sz {
			return c, fmt.Errorf("%w: state %q payload", ErrCorruptCheckpoint, name)
		}
		c.states[string(name)] = append([]byte(nil), r[w:w+int(sz)]...)
		rest = r[w+int(sz):]
	}
	if len(rest) != 0 {
		return c, fmt.Errorf("%w: trailing bytes", ErrCorruptCheckpoint)
	}
	return c, nil
}

func ckpAAD(stamp uint64) []byte {
	return appendU64([]byte(ckpAADTag), stamp)
}

func (m *Manager) checkpointName(stamp uint64) string {
	return fmt.Sprintf("%sckpt-%016x.ckp", m.dir, stamp)
}

// listCheckpoints returns the stamps of existing checkpoint files,
// sorted ascending. Stamps come from file names — untrusted hints,
// verified by the sealed payload's AAD when a blob is opened.
func (m *Manager) listCheckpoints() ([]uint64, error) {
	names, err := m.fs.List()
	if err != nil {
		return nil, fmt.Errorf("persist: list checkpoints: %w", err)
	}
	var stamps []uint64
	for _, name := range names {
		if !strings.HasPrefix(name, m.dir+"ckpt-") || !strings.HasSuffix(name, ".ckp") {
			continue
		}
		var stamp uint64
		numPart := strings.TrimSuffix(strings.TrimPrefix(name, m.dir+"ckpt-"), ".ckp")
		if _, err := fmt.Sscanf(numPart, "%x", &stamp); err != nil {
			continue
		}
		stamps = append(stamps, stamp)
	}
	sort.Slice(stamps, func(i, j int) bool { return stamps[i] < stamps[j] })
	return stamps, nil
}

// writeCheckpoint seals and writes the blob for stamp, honouring the
// mid-checkpoint crash point by leaving a torn file.
func (m *Manager) writeCheckpoint(c checkpoint) error {
	sealed, err := m.seal(encodeCheckpoint(c), ckpAAD(c.stamp))
	if err != nil {
		return err
	}
	if !fitsLen(len(sealed)) {
		return fmt.Errorf("persist: checkpoint too large: %d bytes", len(sealed))
	}
	buf := make([]byte, 0, len(ckpMagic)+4+len(sealed))
	buf = append(buf, ckpMagic...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(sealed)))
	buf = append(buf, sealed...)
	name := m.checkpointName(c.stamp)
	_ = m.fs.Remove(name) // a torn predecessor from a crashed commit at this stamp
	if err := m.injector.hit(CrashMidCheckpoint); err != nil {
		_, _ = m.fs.Append(name, buf[:len(buf)/2]) // the torn file the crash leaves
		return err
	}
	if _, err := m.fs.Append(name, buf); err != nil {
		return fmt.Errorf("persist: write checkpoint %d: %w", c.stamp, err)
	}
	return nil
}

// readCheckpoint opens the blob for stamp.
func (m *Manager) readCheckpoint(stamp uint64) (checkpoint, error) {
	name := m.checkpointName(stamp)
	size, err := m.fs.Size(name)
	if err != nil {
		return checkpoint{}, fmt.Errorf("%w: stamp %d unreadable: %v", ErrCorruptCheckpoint, stamp, err)
	}
	buf, err := m.fs.ReadAt(name, 0, int(size))
	if err != nil {
		return checkpoint{}, fmt.Errorf("%w: stamp %d unreadable: %v", ErrCorruptCheckpoint, stamp, err)
	}
	if len(buf) < len(ckpMagic)+4 || string(buf[:len(ckpMagic)]) != ckpMagic {
		return checkpoint{}, fmt.Errorf("%w: stamp %d bad magic", ErrCorruptCheckpoint, stamp)
	}
	rest := buf[len(ckpMagic):]
	n := int(binary.BigEndian.Uint32(rest))
	rest = rest[4:]
	if n <= 0 || n > len(rest) {
		return checkpoint{}, fmt.Errorf("%w: stamp %d framing", ErrCorruptCheckpoint, stamp)
	}
	plain, err := m.unseal(rest[:n], ckpAAD(stamp))
	if err != nil {
		return checkpoint{}, fmt.Errorf("%w: stamp %d: %v", ErrCorruptCheckpoint, stamp, err)
	}
	c, err := decodeCheckpoint(plain)
	if err != nil {
		return checkpoint{}, err
	}
	if c.stamp != stamp {
		return checkpoint{}, fmt.Errorf("%w: file claims %d, payload %d", ErrCorruptCheckpoint, stamp, c.stamp)
	}
	return c, nil
}

// dropCheckpoints removes every checkpoint file except keep.
func (m *Manager) dropCheckpoints(keep uint64) error {
	stamps, err := m.listCheckpoints()
	if err != nil {
		return err
	}
	for _, stamp := range stamps {
		if stamp == keep {
			continue
		}
		if err := m.fs.Remove(m.checkpointName(stamp)); err != nil {
			return fmt.Errorf("persist: drop checkpoint %d: %w", stamp, err)
		}
	}
	return nil
}
