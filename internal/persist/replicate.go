package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"

	"montsalvat/internal/shim"
)

// Replication: checkpoint + WAL-tail shipping.
//
// A primary Manager exposes its durable directory as a stream of byte
// deltas (ReplicaDelta); a follower applies them to its own shim.FS
// (ApplyDelta) and ends up with a bit-identical copy of the primary's
// sealed checkpoints, WAL segments, and — when the counter store lives
// under the same Dir (FSCounterStore with a prefix inside it) — the
// monotonic-counter file. Promotion is then just persist.Recover over
// the replicated FS on an enclave sharing the primary's MRSIGNER.
//
// The delta is computed under the manager's mutex, so every shipment is
// a consistent cut: a record never arrives without the segment header
// before it, and a checkpoint never arrives ahead of the counter state
// that commits it. File classes are exploited for minimal traffic:
// WAL segments are append-only (ship the tail), checkpoints are
// immutable once written (ship when absent), and anything else under
// the directory — the counter file — is small and mutable in place
// (ship whole every round).
//
// Shipping is transport-agnostic: the fabric layer moves encoded deltas
// over mutually attested AES-GCM peer channels, but any ordered,
// lossless byte pipe works. Nothing in a delta is plaintext state —
// records and checkpoints are sealed blobs; only framing and names are
// visible — so replication does not widen the trust boundary.

// ErrNoDelta reports a ReplicaDelta call against a manager that has not
// recovered yet: the directory contents are not a meaningful cut until
// recovery establishes the log position.
var ErrNoDelta = errors.New("persist: manager not recovered; no delta")

// Chunk is one span of file bytes to write at the follower.
type Chunk struct {
	// Name is the full file name (including the manager's Dir prefix).
	Name string
	// Off is the write offset; Data the bytes starting there.
	Off  int64
	Data []byte
}

// Delta is one replication shipment: applying Remove then Chunks to a
// follower that honestly reported `have` makes its directory
// bit-identical to the primary's at the capture point.
type Delta struct {
	// Stamp is the primary's checkpoint epoch (monotonic-counter value)
	// at capture; LastLSN the highest appended LSN. Followers track
	// these for observability and promotion-staleness checks.
	Stamp   uint64
	LastLSN uint64
	// Chunks are the byte spans to write, in apply order.
	Chunks []Chunk
	// Remove names follower files the primary no longer has (truncated
	// WAL segments, superseded checkpoints). Processed before Chunks.
	Remove []string
}

// Bytes returns the payload size of the delta's chunks.
func (d Delta) Bytes() int {
	n := 0
	for _, c := range d.Chunks {
		n += len(c.Data)
	}
	return n
}

// Empty reports a delta that changes nothing.
func (d Delta) Empty() bool { return len(d.Chunks) == 0 && len(d.Remove) == 0 }

// ReplicaDelta computes the shipment that brings a follower holding
// `have` (file name → byte size, as previously applied) up to this
// manager's current durable state. The computation runs under the
// manager's mutex — a consistent cut against concurrent Appends and
// Checkpoints. The returned chunks alias freshly read buffers and are
// safe to retain.
//
// The follower map is trusted only for traffic reduction, never for
// integrity: a follower lying about its state ends up with files that
// fail authenticated unsealing at promotion, not with silently wrong
// state.
func (m *Manager) ReplicaDelta(have map[string]int64) (Delta, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.recovered {
		return Delta{}, ErrNoDelta
	}
	var d Delta
	d.Stamp = m.epoch
	if m.nextLSN > 0 {
		d.LastLSN = m.nextLSN - 1
	}

	names, err := m.fs.List()
	if err != nil {
		return Delta{}, fmt.Errorf("persist: delta list: %w", err)
	}
	sort.Strings(names)
	present := make(map[string]bool, len(names))
	for _, name := range names {
		if !strings.HasPrefix(name, m.dir) {
			continue
		}
		present[name] = true
		size, err := m.fs.Size(name)
		if err != nil {
			return Delta{}, fmt.Errorf("persist: delta size %s: %w", name, err)
		}
		from := have[name]
		switch {
		case m.appendOnly(name):
			// Tail-ship; a follower claiming more than we have (a fork,
			// or damage) is reset and re-shipped whole.
			if from > size {
				d.Remove = append(d.Remove, name)
				from = 0
			}
			if from == size {
				continue
			}
			data, err := m.fs.ReadAt(name, from, int(size-from))
			if err != nil {
				return Delta{}, fmt.Errorf("persist: delta read %s: %w", name, err)
			}
			d.Chunks = append(d.Chunks, Chunk{Name: name, Off: from, Data: data})
		case m.immutable(name):
			// Checkpoints never change after their write completes; ship
			// only when absent or size-mismatched (interrupted apply).
			if from == size {
				continue
			}
			if from > 0 {
				d.Remove = append(d.Remove, name)
			}
			data, err := m.fs.ReadAt(name, 0, int(size))
			if err != nil {
				return Delta{}, fmt.Errorf("persist: delta read %s: %w", name, err)
			}
			d.Chunks = append(d.Chunks, Chunk{Name: name, Off: 0, Data: data})
		default:
			// Mutable in place (the monotonic-counter file): size alone
			// cannot prove freshness, so ship whole every round. These
			// files are tens of bytes.
			if from > size {
				d.Remove = append(d.Remove, name)
			}
			data, err := m.fs.ReadAt(name, 0, int(size))
			if err != nil {
				return Delta{}, fmt.Errorf("persist: delta read %s: %w", name, err)
			}
			d.Chunks = append(d.Chunks, Chunk{Name: name, Off: 0, Data: data})
		}
	}
	// Files the follower has that we no longer do: truncated segments,
	// superseded checkpoints.
	removed := make([]string, 0)
	for name := range have {
		if strings.HasPrefix(name, m.dir) && !present[name] {
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	d.Remove = append(d.Remove, removed...)

	// Counter-class files apply last: a crash mid-apply must not leave
	// the follower's counter ahead of the checkpoints that justify it
	// (that would read as rollback at promotion, not as a short ship).
	sort.SliceStable(d.Chunks, func(i, j int) bool {
		ci, cj := m.shipClass(d.Chunks[i].Name), m.shipClass(d.Chunks[j].Name)
		return ci < cj
	})
	return d, nil
}

// appendOnly reports a WAL segment file (grows by Append, never
// rewritten).
func (m *Manager) appendOnly(name string) bool {
	return strings.HasPrefix(name, m.dir+"wal-") && strings.HasSuffix(name, ".seg")
}

// immutable reports a checkpoint file (written once, then only ever
// removed).
func (m *Manager) immutable(name string) bool {
	return strings.HasPrefix(name, m.dir+"ckpt-") && strings.HasSuffix(name, ".ckp")
}

// shipClass orders chunk application: log and checkpoint bytes first,
// in-place mutable files (the counter) last.
func (m *Manager) shipClass(name string) int {
	if m.appendOnly(name) || m.immutable(name) {
		return 0
	}
	return 1
}

// ApplyDelta applies one shipment to a follower filesystem: removals
// first, then chunks in order. Idempotent for a re-delivered delta
// whose writes all landed; a torn apply is repaired by the next
// delta (size mismatches re-ship whole files).
func ApplyDelta(fs shim.FS, d Delta) error {
	for _, name := range d.Remove {
		if err := fs.Remove(name); err != nil {
			// Already gone is fine: removal is reconciliation, not a
			// protocol step.
			continue
		}
	}
	for _, c := range d.Chunks {
		if err := fs.WriteAt(c.Name, c.Off, c.Data); err != nil {
			return fmt.Errorf("persist: apply %s@%d: %w", c.Name, c.Off, err)
		}
	}
	return nil
}

// HaveMap snapshots a filesystem's file sizes under dir — what a
// follower reports to the primary before the first shipment.
func HaveMap(fs shim.FS, dir string) (map[string]int64, error) {
	names, err := fs.List()
	if err != nil {
		return nil, err
	}
	have := make(map[string]int64)
	for _, name := range names {
		if !strings.HasPrefix(name, dir) {
			continue
		}
		size, err := fs.Size(name)
		if err != nil {
			return nil, err
		}
		have[name] = size
	}
	return have, nil
}

// UpdateHave folds an applied delta into a follower's have map, so the
// next ReplicaDelta call ships only what changed since.
func UpdateHave(have map[string]int64, d Delta) {
	for _, name := range d.Remove {
		delete(have, name)
	}
	for _, c := range d.Chunks {
		if end := c.Off + int64(len(c.Data)); end > have[c.Name] {
			have[c.Name] = end
		}
	}
}

// ---- wire encoding ----------------------------------------------------

// Deltas ship over attested peer channels as one binary blob:
//
//	[1-byte version][stamp][lastLSN]
//	[uvarint nRemove]{[uvarint len][name]}...
//	[uvarint nChunks]{[uvarint len][name][off][uvarint dataLen][data]}...

const deltaVersion = 1

// ErrCorruptDelta reports a delta blob that fails structural decoding.
var ErrCorruptDelta = errors.New("persist: corrupt replication delta")

// EncodeDelta serialises a delta for shipping.
func EncodeDelta(d Delta) []byte {
	buf := []byte{deltaVersion}
	buf = appendU64(buf, d.Stamp)
	buf = appendU64(buf, d.LastLSN)
	buf = binary.AppendUvarint(buf, uint64(len(d.Remove)))
	for _, name := range d.Remove {
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(d.Chunks)))
	for _, c := range d.Chunks {
		buf = binary.AppendUvarint(buf, uint64(len(c.Name)))
		buf = append(buf, c.Name...)
		buf = appendU64(buf, uint64(c.Off))
		buf = binary.AppendUvarint(buf, uint64(len(c.Data)))
		buf = append(buf, c.Data...)
	}
	return buf
}

// DecodeDelta parses a shipped delta.
func DecodeDelta(buf []byte) (Delta, error) {
	var d Delta
	if len(buf) < 1+16 || buf[0] != deltaVersion {
		return d, fmt.Errorf("%w: header", ErrCorruptDelta)
	}
	var err error
	rest := buf[1:]
	if d.Stamp, rest, err = readU64(rest); err != nil {
		return d, fmt.Errorf("%w: stamp", ErrCorruptDelta)
	}
	if d.LastLSN, rest, err = readU64(rest); err != nil {
		return d, fmt.Errorf("%w: last LSN", ErrCorruptDelta)
	}
	readStr := func() (string, error) {
		n, used := binary.Uvarint(rest)
		if used <= 0 || uint64(len(rest)-used) < n {
			return "", fmt.Errorf("%w: string", ErrCorruptDelta)
		}
		s := string(rest[used : used+int(n)])
		rest = rest[used+int(n):]
		return s, nil
	}
	nRemove, used := binary.Uvarint(rest)
	if used <= 0 {
		return d, fmt.Errorf("%w: remove count", ErrCorruptDelta)
	}
	rest = rest[used:]
	for i := uint64(0); i < nRemove; i++ {
		name, err := readStr()
		if err != nil {
			return d, err
		}
		d.Remove = append(d.Remove, name)
	}
	nChunks, used := binary.Uvarint(rest)
	if used <= 0 {
		return d, fmt.Errorf("%w: chunk count", ErrCorruptDelta)
	}
	rest = rest[used:]
	for i := uint64(0); i < nChunks; i++ {
		var c Chunk
		if c.Name, err = readStr(); err != nil {
			return d, err
		}
		var off uint64
		if off, rest, err = readU64(rest); err != nil {
			return d, fmt.Errorf("%w: offset", ErrCorruptDelta)
		}
		c.Off = int64(off)
		n, used := binary.Uvarint(rest)
		if used <= 0 || uint64(len(rest)-used) < n {
			return d, fmt.Errorf("%w: chunk data", ErrCorruptDelta)
		}
		c.Data = append([]byte(nil), rest[used:used+int(n)]...)
		rest = rest[used+int(n):]
		d.Chunks = append(d.Chunks, c)
	}
	if len(rest) != 0 {
		return d, fmt.Errorf("%w: trailing bytes", ErrCorruptDelta)
	}
	return d, nil
}
