package persist

import (
	"bytes"
	"errors"
	"testing"

	"montsalvat/internal/sgx"
	"montsalvat/internal/shim"
)

// replicaEnv builds a primary manager whose counter store lives on the
// same shim.FS as the log (FSCounterStore under Dir), so ReplicaDelta
// covers the complete durable root including rollback-protection state.
type replicaEnv struct {
	t       *testing.T
	fs      *shim.MemFS
	secret  sgx.PlatformSecret
	mgr     *Manager
	state   *MapState
	dir     string
	enclave *sgx.Enclave
}

func newReplicaEnv(t *testing.T, dir string) *replicaEnv {
	t.Helper()
	secret, err := sgx.NewPlatformSecret()
	if err != nil {
		t.Fatal(err)
	}
	fs := shim.NewMemFS()
	enclave := testEnclave(t, "replica test image")
	ctr, err := sgx.NewMonotonicCounter(secret, NewFSCounterStore(fs, dir), "shard")
	if err != nil {
		t.Fatal(err)
	}
	state := NewMapState("kv")
	m, err := Open(Options{
		FS:      fs,
		Enclave: enclave,
		Secret:  secret,
		Counter: ctr,
		Dir:     dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Register(state); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	return &replicaEnv{t: t, fs: fs, secret: secret, mgr: m, state: state, dir: dir, enclave: enclave}
}

// ship computes a delta against the follower's have map, round-trips it
// through the wire encoding, applies it, and folds it into have.
func (e *replicaEnv) ship(follower *shim.MemFS, have map[string]int64) Delta {
	e.t.Helper()
	d, err := e.mgr.ReplicaDelta(have)
	if err != nil {
		e.t.Fatalf("ReplicaDelta: %v", err)
	}
	decoded, err := DecodeDelta(EncodeDelta(d))
	if err != nil {
		e.t.Fatalf("decode(encode(delta)): %v", err)
	}
	if err := ApplyDelta(follower, decoded); err != nil {
		e.t.Fatalf("ApplyDelta: %v", err)
	}
	UpdateHave(have, decoded)
	return decoded
}

// assertIdentical compares every file under dir byte for byte.
func (e *replicaEnv) assertIdentical(follower *shim.MemFS) {
	e.t.Helper()
	read := func(fs *shim.MemFS) map[string][]byte {
		names, err := fs.List()
		if err != nil {
			e.t.Fatal(err)
		}
		out := make(map[string][]byte)
		for _, name := range names {
			size, err := fs.Size(name)
			if err != nil {
				e.t.Fatal(err)
			}
			buf, err := fs.ReadAt(name, 0, int(size))
			if err != nil {
				e.t.Fatal(err)
			}
			out[name] = buf
		}
		return out
	}
	p, f := read(e.fs), read(follower)
	if len(p) != len(f) {
		e.t.Fatalf("file count: primary %d, follower %d\nprimary: %v\nfollower: %v", len(p), len(f), keys(p), keys(f))
	}
	for name, data := range p {
		if !bytes.Equal(data, f[name]) {
			e.t.Fatalf("file %s differs: primary %d bytes, follower %d bytes", name, len(data), len(f[name]))
		}
	}
}

func keys(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestReplicaDeltaConverges ships a primary's durable root to an empty
// follower, drives more traffic (including a checkpoint, which rotates
// and truncates segments), re-ships, and requires bit-identical
// directories after every round — the invariant promotion relies on.
func TestReplicaDeltaConverges(t *testing.T) {
	e := newReplicaEnv(t, "p/")
	follower := shim.NewMemFS()
	have := map[string]int64{}

	for i := 0; i < 8; i++ {
		if _, err := e.mgr.Append("kv", OpPut, string(rune('a'+i)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	d := e.ship(follower, have)
	if d.Empty() {
		t.Fatal("first shipment empty")
	}
	if d.LastLSN != 8 {
		t.Fatalf("delta LastLSN = %d, want 8", d.LastLSN)
	}
	e.assertIdentical(follower)

	// Nothing changed: the next delta is empty (no redundant traffic
	// beyond the whole-file counter class).
	d = e.ship(follower, have)
	for _, c := range d.Chunks {
		if e.mgr.appendOnly(c.Name) || e.mgr.immutable(c.Name) {
			t.Fatalf("idle delta re-shipped %s", c.Name)
		}
	}
	e.assertIdentical(follower)

	// A checkpoint supersedes the old lineage: segments truncate, a new
	// checkpoint appears, the counter bumps. The follower must converge
	// through removals.
	if err := e.mgr.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := e.mgr.Append("kv", OpPut, "post", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	d = e.ship(follower, have)
	if len(d.Remove) == 0 {
		t.Fatal("post-checkpoint delta removed nothing (expected truncated lineage)")
	}
	e.assertIdentical(follower)
}

// TestReplicaPromote recovers a second manager over the shipped
// follower filesystem — with a different enclave instance sharing the
// signer, as a promoted replica would — and requires every appended
// record to be visible.
func TestReplicaPromote(t *testing.T) {
	e := newReplicaEnv(t, "p/")
	follower := shim.NewMemFS()
	have := map[string]int64{}
	for i := 0; i < 10; i++ {
		if _, err := e.mgr.Append("kv", OpPut, "k"+string(rune('0'+i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	e.ship(follower, have)

	ctr, err := sgx.NewMonotonicCounter(e.secret, NewFSCounterStore(follower, "p/"), "shard")
	if err != nil {
		t.Fatal(err)
	}
	state := NewMapState("kv")
	rm, err := Open(Options{
		FS:      follower,
		Enclave: testEnclave(t, "replica test image"),
		Secret:  e.secret,
		Counter: ctr,
		Dir:     "p/",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rm.Register(state); err != nil {
		t.Fatal(err)
	}
	rep, err := rm.Recover()
	if err != nil {
		t.Fatalf("promote recover: %v", err)
	}
	if rep.LastLSN != 10 {
		t.Fatalf("promoted LastLSN = %d, want 10", rep.LastLSN)
	}
	for i := 0; i < 10; i++ {
		if v, ok := state.Get("k" + string(rune('0'+i))); !ok || string(v) != "v" {
			t.Fatalf("promoted state missing k%d (ok=%v v=%q)", i, ok, v)
		}
	}
}

// TestReplicaDeltaRequiresRecovery: no consistent cut exists before
// Recover establishes the log position.
func TestReplicaDeltaRequiresRecovery(t *testing.T) {
	env := newEnv(t)
	m := env.open(Options{Dir: "p/"}, NewMapState("kv"))
	if _, err := m.ReplicaDelta(nil); !errors.Is(err, ErrNoDelta) {
		t.Fatalf("ReplicaDelta before Recover: %v, want ErrNoDelta", err)
	}
}

// TestDecodeDeltaRejectsJunk: structural decoding failures are typed,
// and a truncated blob never panics.
func TestDecodeDeltaRejectsJunk(t *testing.T) {
	good := EncodeDelta(Delta{
		Stamp: 3, LastLSN: 17,
		Remove: []string{"p/wal-00000001.seg"},
		Chunks: []Chunk{{Name: "p/wal-00000002.seg", Off: 8, Data: []byte("abc")}},
	})
	rt, err := DecodeDelta(good)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if rt.Stamp != 3 || rt.LastLSN != 17 || len(rt.Remove) != 1 || len(rt.Chunks) != 1 {
		t.Fatalf("round trip = %+v", rt)
	}
	if rt.Chunks[0].Off != 8 || string(rt.Chunks[0].Data) != "abc" {
		t.Fatalf("chunk = %+v", rt.Chunks[0])
	}
	for i := 0; i < len(good); i++ {
		if _, err := DecodeDelta(good[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		} else if !errors.Is(err, ErrCorruptDelta) {
			t.Fatalf("truncation at %d: %v, want ErrCorruptDelta", i, err)
		}
	}
	if _, err := DecodeDelta(append([]byte(nil), append(good, 0xff)...)); !errors.Is(err, ErrCorruptDelta) {
		t.Fatalf("trailing byte accepted")
	}
}
