// Package persist is the durable-state subsystem: it journals
// trusted-side mutations into a sealed write-ahead log, takes periodic
// sealed checkpoints of registered trusted state, and defends both
// against rollback/fork attacks with an SGX monotonic counter stamped
// into every checkpoint and segment header (DESIGN.md §10).
//
// Sealed blobs are the only enclave state that survives teardown
// (Montsalvat §5.4): everything else — the mirror–proxy registry, the
// trusted heap, PalDB's in-enclave index — is volatile. The Manager in
// this package turns that volatile state into a restartable service:
// after a crash, Recover unseals the latest counter-valid checkpoint
// and replays the WAL tail to a prefix-consistent state.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Op identifies a journaled mutation. The subsystem is op-agnostic —
// replay hands (op, key, value) back to the registered State — but ops
// must be idempotent upserts/deletes: a checkpoint may capture a
// mutation that is also replayed from the overlapping WAL tail.
type Op uint8

// Well-known ops for KV-shaped state.
const (
	OpPut Op = 1 + iota
	OpDelete
)

// Record is one journaled mutation, in plaintext form. LSN (log
// sequence number) is assigned by the Manager: strictly sequential from
// 1, never reused, so duplicates and gaps are detectable at replay.
// State names the registered State the mutation belongs to; replay
// routes the record to that state's Apply.
type Record struct {
	LSN   uint64
	Op    Op
	State string
	Key   string
	Value []byte
}

// Record decode errors. DecodeWALRecord is the untrusted-input surface
// of the WAL (fuzzed by FuzzDecodeWALRecord); it must fail cleanly on
// arbitrary bytes.
var (
	// ErrRecordTruncated reports a record plaintext that ends mid-field.
	ErrRecordTruncated = errors.New("persist: truncated WAL record")
	// ErrRecordMalformed reports structurally invalid record bytes.
	ErrRecordMalformed = errors.New("persist: malformed WAL record")
)

const (
	recordVersion = 1
	// batchRecordVersion tags a group-commit frame: one sealed payload
	// carrying several consecutive records (DESIGN.md §16). The version
	// byte doubles as the frame discriminator at replay.
	batchRecordVersion = 2
	// maxRecordField bounds key/value lengths so a corrupted length
	// prefix cannot drive a huge allocation before the bound check.
	maxRecordField = 1 << 20
	// maxBatchRecords bounds the sub-record count of a batch frame so a
	// corrupted count cannot drive a huge allocation.
	maxBatchRecords = 1 << 16
)

// EncodeWALRecord serialises a record to its plaintext form (the bytes
// that are sealed into the log). Layout: version u8, op u8, lsn
// uvarint, then state, key, and value, each uvarint-length-prefixed.
func EncodeWALRecord(r Record) []byte {
	buf := make([]byte, 0, 2+binary.MaxVarintLen64*4+len(r.State)+len(r.Key)+len(r.Value))
	buf = append(buf, recordVersion, byte(r.Op))
	buf = binary.AppendUvarint(buf, r.LSN)
	buf = binary.AppendUvarint(buf, uint64(len(r.State)))
	buf = append(buf, r.State...)
	buf = binary.AppendUvarint(buf, uint64(len(r.Key)))
	buf = append(buf, r.Key...)
	buf = binary.AppendUvarint(buf, uint64(len(r.Value)))
	buf = append(buf, r.Value...)
	return buf
}

// DecodeWALRecord parses record plaintext produced by EncodeWALRecord.
// Trailing garbage after the value is rejected.
func DecodeWALRecord(buf []byte) (Record, error) {
	var r Record
	if len(buf) < 2 {
		return r, fmt.Errorf("%w: %d bytes", ErrRecordTruncated, len(buf))
	}
	if buf[0] != recordVersion {
		return r, fmt.Errorf("%w: version %d", ErrRecordMalformed, buf[0])
	}
	r.Op = Op(buf[1])
	if r.Op == 0 {
		return r, fmt.Errorf("%w: zero op", ErrRecordMalformed)
	}
	rest := buf[2:]
	lsn, n := binary.Uvarint(rest)
	if n <= 0 {
		return r, fmt.Errorf("%w: lsn", ErrRecordTruncated)
	}
	r.LSN = lsn
	rest = rest[n:]

	state, rest, err := decodeField(rest, "state")
	if err != nil {
		return r, err
	}
	r.State = string(state)
	key, rest, err := decodeField(rest, "key")
	if err != nil {
		return r, err
	}
	r.Key = string(key)
	val, rest, err := decodeField(rest, "value")
	if err != nil {
		return r, err
	}
	if len(val) > 0 {
		r.Value = append([]byte(nil), val...)
	}
	if len(rest) != 0 {
		return r, fmt.Errorf("%w: %d trailing bytes", ErrRecordMalformed, len(rest))
	}
	return r, nil
}

// EncodeWALBatch serialises a group of records into one batch payload
// (the bytes sealed as a single WAL frame by the group-commit path).
// Layout: version u8 (batchRecordVersion), count uvarint, then each
// record's EncodeWALRecord bytes, uvarint-length-prefixed. The records
// must carry consecutive LSNs; replay enforces that.
func EncodeWALBatch(recs []Record) []byte {
	size := 1 + binary.MaxVarintLen64
	subs := make([][]byte, len(recs))
	for i, r := range recs {
		subs[i] = EncodeWALRecord(r)
		size += binary.MaxVarintLen64 + len(subs[i])
	}
	buf := make([]byte, 0, size)
	buf = append(buf, batchRecordVersion)
	buf = binary.AppendUvarint(buf, uint64(len(recs)))
	for _, sub := range subs {
		buf = binary.AppendUvarint(buf, uint64(len(sub)))
		buf = append(buf, sub...)
	}
	return buf
}

// DecodeWALBatch parses a batch payload produced by EncodeWALBatch.
// Like DecodeWALRecord it is an untrusted-input surface and must fail
// cleanly on arbitrary bytes; trailing garbage is rejected.
func DecodeWALBatch(buf []byte) ([]Record, error) {
	if len(buf) < 2 {
		return nil, fmt.Errorf("%w: %d bytes", ErrRecordTruncated, len(buf))
	}
	if buf[0] != batchRecordVersion {
		return nil, fmt.Errorf("%w: batch version %d", ErrRecordMalformed, buf[0])
	}
	rest := buf[1:]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("%w: batch count", ErrRecordTruncated)
	}
	if count == 0 || count > maxBatchRecords {
		return nil, fmt.Errorf("%w: batch count %d", ErrRecordMalformed, count)
	}
	rest = rest[n:]
	recs := make([]Record, 0, count)
	for i := uint64(0); i < count; i++ {
		subLen, w := binary.Uvarint(rest)
		if w <= 0 {
			return nil, fmt.Errorf("%w: batch record %d length", ErrRecordTruncated, i)
		}
		// A single record holds at most three maxRecordField fields
		// plus small fixed framing.
		if subLen > maxRecordField*4 {
			return nil, fmt.Errorf("%w: batch record %d length %d", ErrRecordMalformed, i, subLen)
		}
		rest = rest[w:]
		if uint64(len(rest)) < subLen {
			return nil, fmt.Errorf("%w: batch record %d needs %d bytes, have %d", ErrRecordTruncated, i, subLen, len(rest))
		}
		rec, err := DecodeWALRecord(rest[:subLen])
		if err != nil {
			return nil, fmt.Errorf("batch record %d: %w", i, err)
		}
		recs = append(recs, rec)
		rest = rest[subLen:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after batch", ErrRecordMalformed, len(rest))
	}
	return recs, nil
}

func decodeField(buf []byte, what string) (field, rest []byte, err error) {
	n, w := binary.Uvarint(buf)
	if w <= 0 {
		return nil, nil, fmt.Errorf("%w: %s length", ErrRecordTruncated, what)
	}
	if n > maxRecordField {
		return nil, nil, fmt.Errorf("%w: %s length %d", ErrRecordMalformed, what, n)
	}
	buf = buf[w:]
	if uint64(len(buf)) < n {
		return nil, nil, fmt.Errorf("%w: %s needs %d bytes, have %d", ErrRecordTruncated, what, n, len(buf))
	}
	return buf[:n], buf[n:], nil
}

// appendU64 / readU64: fixed-width big-endian fields for headers, where
// self-description matters more than size.
func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

func readU64(buf []byte) (uint64, []byte, error) {
	if len(buf) < 8 {
		return 0, nil, fmt.Errorf("%w: u64", ErrRecordTruncated)
	}
	return binary.BigEndian.Uint64(buf), buf[8:], nil
}

// sanity guard for 32-bit length prefixes on sealed envelopes.
func fitsLen(n int) bool { return n >= 0 && n <= math.MaxInt32 }
