package persist

import (
	"errors"
	"testing"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/core"
	"montsalvat/internal/demo"
	"montsalvat/internal/paldb"
	"montsalvat/internal/sgx"
	"montsalvat/internal/shim"
	"montsalvat/internal/wire"
	"montsalvat/internal/world"
)

// newKVStore creates (and pins) a fresh enclave-resident KVStore.
func newKVStore(t *testing.T, w *world.World) wire.Value {
	t.Helper()
	var ref wire.Value
	err := w.Exec(false, func(env classmodel.Env) error {
		v, err := env.New(demo.KVStoreCls)
		if err != nil {
			return err
		}
		ref = v
		return nil
	})
	if err != nil {
		t.Fatalf("new KVStore: %v", err)
	}
	if err := w.Untrusted().Pin(ref); err != nil {
		t.Fatalf("pin store: %v", err)
	}
	return ref
}

func kvGet(t *testing.T, w *world.World, ref wire.Value, key string) string {
	t.Helper()
	var out string
	err := w.Exec(false, func(env classmodel.Env) error {
		v, err := env.Call(ref, "get", wire.Str(key))
		if err != nil {
			return err
		}
		out, _ = v.AsStr()
		return nil
	})
	if err != nil {
		t.Fatalf("get %q: %v", key, err)
	}
	return out
}

// TestWorldKVRecovery is the end-to-end tentpole path: mutations on an
// enclave-resident KVStore are journaled, the enclave dies (World.Kill)
// and is re-created (World.Restart), and a fresh Manager over the same
// untrusted storage recovers the store — checkpoint restore plus WAL
// tail replay — into a brand-new KVStore object.
func TestWorldKVRecovery(t *testing.T) {
	w, _, err := core.NewPartitionedWorld(demo.MustKVProgram(), world.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	fs := shim.NewMemFS()
	secret, err := sgx.NewPlatformSecret()
	if err != nil {
		t.Fatal(err)
	}
	ctrStore := sgx.NewMemCounterStore()
	openManager := func() *Manager {
		t.Helper()
		ctr, err := sgx.NewMonotonicCounter(secret, ctrStore, "worldkv")
		if err != nil {
			t.Fatal(err)
		}
		m, err := Open(Options{
			FS:           fs,
			Enclave:      w.Enclave(),
			Secret:       secret,
			Counter:      ctr,
			Dir:          "p/",
			BeforeCommit: w.Flush, // batched mutations land before capture
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	ref := newKVStore(t, w)
	kv := NewWorldKV("kv", w)
	kv.SetRef(ref)
	m := openManager()
	if err := m.Register(kv); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Recover(); err != nil {
		t.Fatal(err)
	}

	put := func(k, v string) {
		t.Helper()
		err := w.Exec(false, func(env classmodel.Env) error {
			_, err := env.Call(ref, "put", wire.Str(k), wire.Str(v))
			return err
		})
		if err != nil {
			t.Fatalf("put %q: %v", k, err)
		}
		if _, err := m.Append("kv", OpPut, k, []byte(v)); err != nil {
			t.Fatalf("journal %q: %v", k, err)
		}
	}
	put("alice", "balance=75")
	put("bob", "balance=50")
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	put("carol", "balance=10") // in the WAL tail only
	put("alice", "balance=20") // overwrite, replayed over the snapshot

	// The enclave dies; its heap — and the KVStore in it — is gone.
	w.Kill()
	if err := w.Restart(); err != nil {
		t.Fatal(err)
	}

	// Process-restart simulation: fresh Manager, fresh (empty) store in
	// the new enclave, recover from the untrusted files.
	ref2 := newKVStore(t, w)
	kv2 := NewWorldKV("kv", w)
	kv2.SetRef(ref2)
	m2 := openManager() // picks up the new enclave; MRSIGNER unchanged
	if err := m2.Register(kv2); err != nil {
		t.Fatal(err)
	}
	rep, err := m2.Recover()
	if err != nil {
		t.Fatalf("recover after restart: %v", err)
	}
	if rep.ReplayedRecords != 2 {
		t.Errorf("replayed %d records, want 2 (the post-checkpoint tail)", rep.ReplayedRecords)
	}
	for key, want := range map[string]string{
		"alice": "balance=20",
		"bob":   "balance=50",
		"carol": "balance=10",
	} {
		if got := kvGet(t, w, ref2, key); got != want {
			t.Errorf("recovered %q = %q, want %q", key, got, want)
		}
	}

	// The recovered lineage stays live.
	err = w.Exec(false, func(env classmodel.Env) error {
		_, err := env.Call(ref2, "put", wire.Str("dave"), wire.Str("balance=5"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Append("kv", OpPut, "dave", []byte("balance=5")); err != nil {
		t.Fatal(err)
	}
	if err := m2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

// TestWorldKVRequiresRef pins the misuse error: the adapter refuses to
// run against a dead/unset store ref instead of crashing into the
// world.
func TestWorldKVRequiresRef(t *testing.T) {
	w, _, err := core.NewPartitionedWorld(demo.MustKVProgram(), world.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	kv := NewWorldKV("kv", w)
	if _, err := kv.Snapshot(); !errors.Is(err, ErrNoStoreRef) {
		t.Fatalf("Snapshot without ref: %v, want ErrNoStoreRef", err)
	}
	if err := kv.Apply(Record{Op: OpPut, Key: "k"}); !errors.Is(err, ErrNoStoreRef) {
		t.Fatalf("Apply without ref: %v, want ErrNoStoreRef", err)
	}
	kv.SetRef(newKVStore(t, w))
	if err := kv.Apply(Record{Op: OpDelete, Key: "k"}); !errors.Is(err, ErrRecordMalformed) {
		t.Fatalf("delete on world kv: %v, want ErrRecordMalformed", err)
	}
}

// TestPalDBStateDurability checkpoints a built paldb store file, wipes
// it (host-side data loss), and proves recovery rewrites a byte-exact,
// openable store. Journaled mutations are rejected: the store is
// write-once.
func TestPalDBStateDurability(t *testing.T) {
	e := newEnv(t)
	write, err := paldb.NewWriter(e.fs, "idx.paldb")
	if err != nil {
		t.Fatal(err)
	}
	for _, kv := range [][2]string{{"k1", "v1"}, {"k2", "v2"}, {"k3", "v3"}} {
		if err := write.Put([]byte(kv[0]), []byte(kv[1])); err != nil {
			t.Fatal(err)
		}
	}
	if err := write.Close(); err != nil {
		t.Fatal(err)
	}

	st := NewPalDBState("index", e.fs, "idx.paldb")
	m := e.open(Options{Dir: "p/"}, st)
	if _, err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Host loses the store file; recovery restores it from the sealed
	// checkpoint.
	if err := e.fs.Remove("idx.paldb"); err != nil {
		t.Fatal(err)
	}
	st2 := NewPalDBState("index", e.fs, "idx.paldb")
	m2 := e.open(Options{Dir: "p/"}, st2)
	if _, err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	r, err := paldb.Open(e.fs, "idx.paldb")
	if err != nil {
		t.Fatalf("recovered store does not open: %v", err)
	}
	for _, kv := range [][2]string{{"k1", "v1"}, {"k2", "v2"}, {"k3", "v3"}} {
		got, err := r.Get([]byte(kv[0]))
		if err != nil || string(got) != kv[1] {
			t.Fatalf("recovered %s = %q, %v; want %q", kv[0], got, err, kv[1])
		}
	}
	if err := st2.Apply(Record{Op: OpPut, Key: "x"}); !errors.Is(err, ErrImmutableState) {
		t.Fatalf("Apply on paldb state: %v, want ErrImmutableState", err)
	}
}
