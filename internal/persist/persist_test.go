package persist

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"montsalvat/internal/cycles"
	"montsalvat/internal/sgx"
	"montsalvat/internal/shim"
	"montsalvat/internal/simcfg"
	"montsalvat/internal/telemetry"
)

var (
	signerOnce sync.Once
	signer     *sgx.Signer
	signerErr  error
)

func testSigner(t *testing.T) *sgx.Signer {
	t.Helper()
	signerOnce.Do(func() { signer, signerErr = sgx.NewSigner() })
	if signerErr != nil {
		t.Fatalf("NewSigner: %v", signerErr)
	}
	return signer
}

// testEnclave builds an initialized enclave from image — a fresh one
// per call, all signed by the shared test signer, so "restarting the
// enclave" is just another call (optionally with an upgraded image).
func testEnclave(t *testing.T, image string) *sgx.Enclave {
	t.Helper()
	clk := cycles.New(simcfg.CPUHz, false)
	e, err := sgx.Create(simcfg.ForTest(), clk, 4)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := e.AddPages([]byte(image)); err != nil {
		t.Fatalf("AddPages: %v", err)
	}
	ss, err := testSigner(t).Sign(e.Measurement())
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if err := e.Init(ss); err != nil {
		t.Fatalf("Init: %v", err)
	}
	return e
}

// env is everything that survives a simulated machine restart: the
// untrusted filesystem, the platform secret, and the counter store.
type env struct {
	t      *testing.T
	fs     *shim.MemFS
	secret sgx.PlatformSecret
	store  *sgx.MemCounterStore
}

func newEnv(t *testing.T) *env {
	t.Helper()
	secret, err := sgx.NewPlatformSecret()
	if err != nil {
		t.Fatal(err)
	}
	return &env{t: t, fs: shim.NewMemFS(), secret: secret, store: sgx.NewMemCounterStore()}
}

// open builds a Manager over the env with a fresh enclave — one
// "boot". Register states before calling Recover.
func (e *env) open(opts Options, states ...State) *Manager {
	e.t.Helper()
	opts.FS = e.fs
	opts.Secret = e.secret
	if opts.Enclave == nil {
		opts.Enclave = testEnclave(e.t, "persist test image")
	}
	if opts.Counter == nil {
		ctr, err := sgx.NewMonotonicCounter(e.secret, e.store, "persist")
		if err != nil {
			e.t.Fatal(err)
		}
		opts.Counter = ctr
	}
	m, err := Open(opts)
	if err != nil {
		e.t.Fatal(err)
	}
	for _, s := range states {
		if err := m.Register(s); err != nil {
			e.t.Fatal(err)
		}
	}
	return m
}

// snapshotFiles copies the full untrusted storage — what a host-side
// attacker (or a backup) can capture and later restore.
func (e *env) snapshotFiles() map[string][]byte {
	e.t.Helper()
	names, err := e.fs.List()
	if err != nil {
		e.t.Fatal(err)
	}
	out := make(map[string][]byte, len(names))
	for _, name := range names {
		size, err := e.fs.Size(name)
		if err != nil {
			e.t.Fatal(err)
		}
		buf, err := e.fs.ReadAt(name, 0, int(size))
		if err != nil {
			e.t.Fatal(err)
		}
		out[name] = buf
	}
	return out
}

func (e *env) restoreFiles(files map[string][]byte) {
	e.t.Helper()
	names, err := e.fs.List()
	if err != nil {
		e.t.Fatal(err)
	}
	for _, name := range names {
		if err := e.fs.Remove(name); err != nil {
			e.t.Fatal(err)
		}
	}
	for name, buf := range files {
		if err := e.fs.WriteAt(name, 0, buf); err != nil {
			e.t.Fatal(err)
		}
	}
}

func mustAppend(t *testing.T, m *Manager, state, key, val string) uint64 {
	t.Helper()
	lsn, err := m.Append(state, OpPut, key, []byte(val))
	if err != nil {
		t.Fatalf("Append(%s=%s): %v", key, val, err)
	}
	return lsn
}

func assertKV(t *testing.T, s *MapState, want map[string]string) {
	t.Helper()
	if s.Len() != len(want) {
		t.Fatalf("state has %d keys %v, want %d", s.Len(), s.Keys(), len(want))
	}
	for k, v := range want {
		got, ok := s.Get(k)
		if !ok || string(got) != v {
			t.Fatalf("state[%q] = %q, %v; want %q", k, got, ok, v)
		}
	}
}

func TestPersistRoundTrip(t *testing.T) {
	e := newEnv(t)
	kv := NewMapState("kv")
	m := e.open(Options{Dir: "p/"}, kv)

	rep, err := m.Recover()
	if err != nil {
		t.Fatalf("fresh Recover: %v", err)
	}
	if rep.CheckpointStamp != 0 || rep.ReplayedRecords != 0 {
		t.Fatalf("fresh recovery report: %+v", rep)
	}

	want := map[string]string{}
	for _, kvp := range [][2]string{{"a", "1"}, {"b", "2"}, {"c", "3"}} {
		kv.Put(kvp[0], []byte(kvp[1]))
		mustAppend(t, m, "kv", kvp[0], kvp[1])
		want[kvp[0]] = kvp[1]
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint mutations live only in the WAL tail.
	kv.Put("d", []byte("4"))
	mustAppend(t, m, "kv", "d", "4")
	want["d"] = "4"
	// Overwrite a checkpointed key, and delete one.
	kv.Put("a", []byte("1'"))
	mustAppend(t, m, "kv", "a", "1'")
	want["a"] = "1'"
	kv.Delete("b")
	if _, err := m.Append("kv", OpDelete, "b", nil); err != nil {
		t.Fatal(err)
	}
	delete(want, "b")

	// "Restart": new enclave (same signer), new manager, empty state.
	kv2 := NewMapState("kv")
	m2 := e.open(Options{Dir: "p/"}, kv2)
	rep, err = m2.Recover()
	if err != nil {
		t.Fatalf("Recover after restart: %v", err)
	}
	assertKV(t, kv2, want)
	if rep.ReplayedRecords != 3 {
		t.Fatalf("replayed %d records, want 3", rep.ReplayedRecords)
	}
	if rep.CheckpointStamp == 0 {
		t.Fatal("recovery did not use a checkpoint")
	}
	// The recovered log is live: appends and checkpoints keep working.
	kv2.Put("e", []byte("5"))
	mustAppend(t, m2, "kv", "e", "5")
	want["e"] = "5"
	if err := m2.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	kv3 := NewMapState("kv")
	m3 := e.open(Options{Dir: "p/"}, kv3)
	if _, err := m3.Recover(); err != nil {
		t.Fatal(err)
	}
	assertKV(t, kv3, want)
}

func TestPersistRequiresRecover(t *testing.T) {
	e := newEnv(t)
	m := e.open(Options{}, NewMapState("kv"))
	if _, err := m.Append("kv", OpPut, "k", nil); !errors.Is(err, ErrNotRecovered) {
		t.Fatalf("Append: %v, want ErrNotRecovered", err)
	}
	if err := m.Checkpoint(); !errors.Is(err, ErrNotRecovered) {
		t.Fatalf("Checkpoint: %v, want ErrNotRecovered", err)
	}
}

func TestAppendUnregisteredState(t *testing.T) {
	e := newEnv(t)
	m := e.open(Options{}, NewMapState("kv"))
	if _, err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Append("nope", OpPut, "k", nil); err == nil {
		t.Fatal("append to unregistered state accepted")
	}
}

func TestSegmentRotationAndRecovery(t *testing.T) {
	e := newEnv(t)
	kv := NewMapState("kv")
	// Tiny segments: every append rotates within a few records.
	m := e.open(Options{SegmentBytes: 256}, kv)
	if _, err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for i := 0; i < 40; i++ {
		k := string(rune('a'+i%26)) + string(rune('0'+i/26))
		v := strings.Repeat("x", 10+i%7)
		kv.Put(k, []byte(v))
		mustAppend(t, m, "kv", k, v)
		want[k] = v
	}
	segs, err := m.listSegments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("only %d segments after 40 small appends", len(segs))
	}

	kv2 := NewMapState("kv")
	m2 := e.open(Options{SegmentBytes: 256}, kv2)
	rep, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReplayedRecords != 40 {
		t.Fatalf("replayed %d, want 40", rep.ReplayedRecords)
	}
	assertKV(t, kv2, want)
}

func TestAutoCheckpointTruncatesLog(t *testing.T) {
	e := newEnv(t)
	kv := NewMapState("kv")
	m := e.open(Options{CheckpointEvery: 5}, kv)
	if _, err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	base := m.Stats().Checkpoints // Recover takes one
	for i := 0; i < 23; i++ {
		k := string(rune('a' + i))
		kv.Put(k, []byte("v"))
		mustAppend(t, m, "kv", k, "v")
	}
	s := m.Stats()
	if got := s.Checkpoints - base; got != 4 {
		t.Fatalf("auto checkpoints = %d, want 4", got)
	}
	// Truncation keeps exactly the active segment and one checkpoint.
	segs, err := m.listSegments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("%d segments survive checkpointing, want 1", len(segs))
	}
	ckpts, err := m.listCheckpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(ckpts) != 1 {
		t.Fatalf("%d checkpoints survive, want 1", len(ckpts))
	}
}

func TestFlushBeforeCommitOrdering(t *testing.T) {
	e := newEnv(t)
	kv := NewMapState("kv")
	flushed := 0
	snapshotsAtFlush := -1
	probe := &probeState{inner: kv, onSnapshot: func() {
		if snapshotsAtFlush == -1 {
			snapshotsAtFlush = flushed
		}
	}}
	m := e.open(Options{BeforeCommit: func() error { flushed++; return nil }}, probe)
	if _, err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	if flushed == 0 {
		t.Fatal("BeforeCommit never ran")
	}
	if snapshotsAtFlush < 1 {
		t.Fatalf("snapshot taken before the flush barrier (flushed=%d at first snapshot)", snapshotsAtFlush)
	}
	flushErr := errors.New("flush failed")
	m.before = func() error { return flushErr }
	if err := m.Checkpoint(); !errors.Is(err, flushErr) {
		t.Fatalf("Checkpoint with failing flush: %v", err)
	}
}

// probeState wraps a State to observe snapshot ordering.
type probeState struct {
	inner      State
	onSnapshot func()
}

func (p *probeState) Name() string              { return p.inner.Name() }
func (p *probeState) Restore(data []byte) error { return p.inner.Restore(data) }
func (p *probeState) Apply(rec Record) error    { return p.inner.Apply(rec) }
func (p *probeState) Snapshot() ([]byte, error) {
	if p.onSnapshot != nil {
		p.onSnapshot()
	}
	return p.inner.Snapshot()
}

func TestRecoverRejectsTamperedCounter(t *testing.T) {
	e := newEnv(t)
	m := e.open(Options{}, NewMapState("kv"))
	if _, err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, m, "kv", "k", "v")
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The rebooted counter opens fine, then the host rewrites the stored
	// value (keeping the old MAC) underneath it.
	ctr, err := sgx.NewMonotonicCounter(e.secret, e.store, "persist")
	if err != nil {
		t.Fatal(err)
	}
	_, mac, _, _ := e.store.LoadCounter("persist")
	if err := e.store.StoreCounter("persist", 1, mac); err != nil {
		t.Fatal(err)
	}
	m2 := e.open(Options{Counter: ctr}, NewMapState("kv"))
	if _, err := m2.Recover(); !errors.Is(err, sgx.ErrCounterTampered) {
		t.Fatalf("Recover over tampered counter: %v", err)
	}
	// And a counter that fails verification at boot is caught even
	// earlier, in NewMonotonicCounter.
	if _, err := sgx.NewMonotonicCounter(e.secret, e.store, "persist"); !errors.Is(err, sgx.ErrCounterTampered) {
		t.Fatalf("reopen tampered counter: %v", err)
	}
}

func TestFSCounterStore(t *testing.T) {
	fs := shim.NewMemFS()
	secret, err := sgx.NewPlatformSecret()
	if err != nil {
		t.Fatal(err)
	}
	store := NewFSCounterStore(fs, "p/")
	c, err := sgx.NewMonotonicCounter(secret, store, "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Increment(); err != nil {
			t.Fatal(err)
		}
	}
	// Reopen over the same files.
	c2, err := sgx.NewMonotonicCounter(secret, store, "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if v, err := c2.Read(); err != nil || v != 3 {
		t.Fatalf("reopened = %d, %v", v, err)
	}
	// Flip a bit in the counter file: tampered.
	if err := fs.WriteAt("p/counter-ckpt", 3, []byte{0x5a}); err != nil {
		t.Fatal(err)
	}
	if _, err := sgx.NewMonotonicCounter(secret, store, "ckpt"); !errors.Is(err, sgx.ErrCounterTampered) {
		t.Fatalf("tampered file: %v", err)
	}
}

func TestManagerStatsAndMetrics(t *testing.T) {
	e := newEnv(t)
	kv := NewMapState("kv")
	reg := telemetry.NewRegistry()
	m := e.open(Options{Telemetry: reg}, kv)
	if _, err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, m, "kv", "k", "value")
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.Appends != 1 || s.AppendedBytes == 0 {
		t.Fatalf("append stats: %+v", s)
	}
	if s.Checkpoints != 2 || s.Recoveries != 1 {
		t.Fatalf("lifecycle stats: %+v", s)
	}
	if s.Epoch == 0 || s.Watermark == 0 {
		t.Fatalf("epoch/watermark: %+v", s)
	}
	// The registered collector exports the montsalvat_persist_* names.
	_ = reg.Snapshot()
	if got := reg.Counter("montsalvat_persist_wal_appends_total").Value(); got != 1 {
		t.Fatalf("wal_appends metric = %d, want 1", got)
	}
	if got := reg.Counter("montsalvat_persist_checkpoints_total").Value(); got != 2 {
		t.Fatalf("checkpoints metric = %d, want 2", got)
	}
	if got := reg.Counter("montsalvat_persist_recoveries_total").Value(); got != 1 {
		t.Fatalf("recoveries metric = %d, want 1", got)
	}
	if reg.Histogram("montsalvat_persist_recovery_duration_nanoseconds").Count() != 1 {
		t.Fatal("recovery duration histogram empty")
	}
}
