package persist

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestGroupCommitConcurrentAppends drives many writers through the
// commit queue and proves the contract: every Append returns a unique
// LSN, the LSN space is dense, batching actually happens (fewer sealed
// frames than records), and a fresh recovery replays every mutation
// out of the batch frames.
func TestGroupCommitConcurrentAppends(t *testing.T) {
	const writers, perWriter = 8, 40
	e := newEnv(t)
	kv := NewMapState("kv")
	m := e.open(Options{
		Dir:           "p/",
		GroupCommit:   true,
		GroupMaxDelay: 2 * time.Millisecond,
	}, kv)
	if _, err := m.Recover(); err != nil {
		t.Fatal(err)
	}

	var (
		mu   sync.Mutex
		lsns = map[uint64]string{}
		wg   sync.WaitGroup
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := fmt.Sprintf("w%02d-%03d", w, i)
				kv.Put(k, []byte(k))
				lsn, err := m.Append("kv", OpPut, k, []byte(k))
				if err != nil {
					t.Errorf("append %s: %v", k, err)
					return
				}
				mu.Lock()
				if prev, dup := lsns[lsn]; dup {
					t.Errorf("LSN %d returned for both %s and %s", lsn, prev, k)
				}
				lsns[lsn] = k
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	total := writers * perWriter
	if len(lsns) != total {
		t.Fatalf("got %d distinct LSNs, want %d", len(lsns), total)
	}
	// Dense: recovery assigned 1..N before the workload, so the
	// workload's LSNs are exactly a contiguous run.
	var lo, hi uint64
	for lsn := range lsns {
		if lo == 0 || lsn < lo {
			lo = lsn
		}
		if lsn > hi {
			hi = lsn
		}
	}
	if hi-lo+1 != uint64(total) {
		t.Fatalf("LSN range [%d,%d] not dense for %d appends", lo, hi, total)
	}

	st := m.Stats()
	if st.GroupedRecords != uint64(total) {
		t.Fatalf("GroupedRecords = %d, want %d", st.GroupedRecords, total)
	}
	if st.GroupCommits == 0 || st.GroupCommits >= uint64(total) {
		// With a held-open window and 8 concurrent writers, every
		// batch being a singleton would mean no two appends ever
		// overlapped a 2ms window — impossible, since each singleton
		// leader itself holds the window open while others block.
		t.Fatalf("GroupCommits = %d for %d appends: no batching", st.GroupCommits, total)
	}
	t.Logf("batching: %d records in %d commits (mean %.1f)",
		st.GroupedRecords, st.GroupCommits, float64(st.GroupedRecords)/float64(st.GroupCommits))

	// Recovery replays the batch frames (no checkpoint covered them).
	kv2 := NewMapState("kv")
	m2 := e.open(Options{Dir: "p/", GroupCommit: true}, kv2)
	if _, err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	for _, k := range lsns {
		got, ok := kv2.Get(k)
		if !ok || string(got) != k {
			t.Fatalf("record %q lost across recovery: %q, %v", k, got, ok)
		}
	}
}

// TestGroupCommitAutoCheckpoint proves the auto-checkpoint cadence
// still fires on the batch path (counted per record, not per frame).
func TestGroupCommitAutoCheckpoint(t *testing.T) {
	e := newEnv(t)
	kv := NewMapState("kv")
	m := e.open(Options{Dir: "p/", GroupCommit: true, CheckpointEvery: 4}, kv)
	if _, err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	ckpts := m.Stats().Checkpoints
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("k%d", i)
		kv.Put(k, []byte("v"))
		mustAppend(t, m, "kv", k, "v")
	}
	if got := m.Stats().Checkpoints - ckpts; got != 2 {
		t.Fatalf("auto-checkpoints after 8 grouped appends: %d, want 2", got)
	}
}

// TestGroupCommitUnregisteredState pins that a bad state name fails the
// append (the whole group fails together — acceptable, since an
// unregistered state is a programming error, and in practice every
// group member targets the same state).
func TestGroupCommitUnregisteredState(t *testing.T) {
	e := newEnv(t)
	m := e.open(Options{GroupCommit: true}, NewMapState("kv"))
	if _, err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Append("nope", OpPut, "k", []byte("v")); err == nil {
		t.Fatal("append to unregistered state accepted")
	}
	if _, err := m.Append("kv", OpPut, "k", []byte("v")); err != nil {
		t.Fatalf("append after failed group: %v", err)
	}
}

// TestWALBatchRoundTrip pins the batch codec.
func TestWALBatchRoundTrip(t *testing.T) {
	recs := []Record{
		{LSN: 7, Op: OpPut, State: "kv", Key: "a", Value: []byte("1")},
		{LSN: 8, Op: OpDelete, State: "kv", Key: "b"},
		{LSN: 9, Op: OpPut, State: "paldb", Key: "", Value: bytes.Repeat([]byte{0xcc}, 300)},
	}
	got, err := DecodeWALBatch(EncodeWALBatch(recs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].LSN != recs[i].LSN || got[i].Op != recs[i].Op || got[i].State != recs[i].State ||
			got[i].Key != recs[i].Key || !bytes.Equal(got[i].Value, recs[i].Value) {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}

	corrupt := []struct {
		name string
		buf  []byte
	}{
		{"empty", nil},
		{"single-record version", EncodeWALRecord(recs[0])},
		{"zero count", []byte{batchRecordVersion, 0}},
		{"huge count", []byte{batchRecordVersion, 0xff, 0xff, 0xff, 0x7f}},
		{"truncated member", EncodeWALBatch(recs)[:10]},
		{"trailing bytes", append(EncodeWALBatch(recs), 0xAA)},
	}
	for _, tc := range corrupt {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeWALBatch(tc.buf); err == nil {
				t.Fatalf("corrupt batch %x accepted", tc.buf)
			}
		})
	}
}

// FuzzDecodeWALBatch hardens the batch decoder like FuzzDecodeWALRecord
// hardens the single-record one: arbitrary bytes must never panic or
// over-allocate, and a decoded batch must survive a semantic round trip.
func FuzzDecodeWALBatch(f *testing.F) {
	seeds := [][]byte{
		nil,
		{batchRecordVersion},
		{batchRecordVersion, 1},
		EncodeWALBatch([]Record{{LSN: 1, Op: OpPut, State: "kv", Key: "k", Value: []byte("v")}}),
		EncodeWALBatch([]Record{
			{LSN: 5, Op: OpPut, State: "kv", Key: "a", Value: []byte("1")},
			{LSN: 6, Op: OpDelete, State: "kv", Key: "a"},
		}),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeWALBatch(data)
		if err != nil {
			return
		}
		re := EncodeWALBatch(recs)
		recs2, err := DecodeWALBatch(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("round trip count: %d != %d", len(recs2), len(recs))
		}
		for i := range recs {
			if recs2[i].LSN != recs[i].LSN || recs2[i].Op != recs[i].Op ||
				recs2[i].State != recs[i].State || recs2[i].Key != recs[i].Key ||
				!bytes.Equal(recs2[i].Value, recs[i].Value) {
				t.Fatalf("round trip record %d: %+v != %+v", i, recs2[i], recs[i])
			}
		}
	})
}
