package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// FuzzDecodeWALRecord hardens the record decoder the way
// wire.FuzzDecodeFrame hardens the frame decoder: record plaintext
// comes out of unseal, but defense in depth says arbitrary bytes must
// never panic or over-allocate, and a decoded record must survive a
// semantic round trip.
func FuzzDecodeWALRecord(f *testing.F) {
	seeds := [][]byte{
		nil,
		{0},
		{recordVersion},
		{recordVersion, byte(OpPut)},
		{recordVersion, byte(OpPut), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		EncodeWALRecord(Record{LSN: 1, Op: OpPut, State: "kv", Key: "k", Value: []byte("v")}),
		EncodeWALRecord(Record{LSN: 1 << 40, Op: OpDelete, State: "kv", Key: "gone"}),
		EncodeWALRecord(Record{LSN: 7, Op: OpPut, State: "", Key: "", Value: bytes.Repeat([]byte{0xaa}, 300)}),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeWALRecord(data)
		if err != nil {
			return
		}
		// Varint encodings are not unique, so the invariant is semantic:
		// re-encoding decodes to the same record, and the re-encoded form
		// is a fixed point.
		re := EncodeWALRecord(rec)
		rec2, err := DecodeWALRecord(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if rec2.LSN != rec.LSN || rec2.Op != rec.Op || rec2.State != rec.State ||
			rec2.Key != rec.Key || !bytes.Equal(rec2.Value, rec.Value) {
			t.Fatalf("round trip: %+v != %+v", rec2, rec)
		}
		if re2 := EncodeWALRecord(rec2); !bytes.Equal(re2, re) {
			t.Fatalf("re-encode not stable: %x != %x", re2, re)
		}
	})
}

// TestDecodeWALRecordCorruptInputs pins the error behaviour on named
// malformed shapes.
func TestDecodeWALRecordCorruptInputs(t *testing.T) {
	valid := EncodeWALRecord(Record{LSN: 3, Op: OpPut, State: "kv", Key: "k", Value: []byte("v")})
	cases := []struct {
		name string
		buf  []byte
	}{
		{"empty", nil},
		{"version only", []byte{recordVersion}},
		{"wrong version", append([]byte{9}, valid[1:]...)},
		{"zero op", []byte{recordVersion, 0, 1}},
		{"unterminated lsn varint", []byte{recordVersion, byte(OpPut), 0x80, 0x80}},
		{"state length overruns", []byte{recordVersion, byte(OpPut), 1, 0x20, 'k'}},
		{"huge key length", append([]byte{recordVersion, byte(OpPut), 1, 0}, 0xff, 0xff, 0xff, 0xff, 0x0f)},
		{"missing value", valid[:len(valid)-2]},
		{"trailing bytes", append(append([]byte{}, valid...), 0xAA)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeWALRecord(tc.buf); err == nil {
				t.Fatalf("corrupt record %x accepted", tc.buf)
			}
		})
	}
}

// segLog builds a small live log over an env and returns the pieces a
// corruption test needs: the manager (still open for in-package
// crafting helpers) and the segment carrying replayable records.
func segLog(t *testing.T) (*env, *Manager, *MapState, map[string]string) {
	t.Helper()
	e := newEnv(t)
	kv := NewMapState("kv")
	m := e.open(Options{Dir: "p/"}, kv)
	if _, err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for _, kvp := range [][2]string{{"a", "1"}, {"b", "2"}, {"c", "3"}} {
		kv.Put(kvp[0], []byte(kvp[1]))
		mustAppend(t, m, "kv", kvp[0], kvp[1])
		want[kvp[0]] = kvp[1]
	}
	return e, m, kv, want
}

func recoverFresh(t *testing.T, e *env) (*MapState, Report, error) {
	t.Helper()
	kv := NewMapState("kv")
	m := e.open(Options{Dir: "p/"}, kv)
	rep, err := m.Recover()
	return kv, rep, err
}

// TestCorruptSegmentTable covers the named damage classes of the
// segment reader: host-side truncation, bit flips, and stale/replayed
// blobs each land on their own typed error (or, for a torn tail, on
// clean prefix recovery).
func TestCorruptSegmentTable(t *testing.T) {
	t.Run("truncated final record recovers prefix", func(t *testing.T) {
		e, m, _, want := segLog(t)
		name := m.segmentName(m.curSeq)
		size, err := e.fs.Size(name)
		if err != nil {
			t.Fatal(err)
		}
		// Chop into the last record's sealed body: a torn append.
		buf, err := e.fs.ReadAt(name, 0, int(size))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.fs.Remove(name); err != nil {
			t.Fatal(err)
		}
		if err := e.fs.WriteAt(name, 0, buf[:size-7]); err != nil {
			t.Fatal(err)
		}
		kv2, rep, err := recoverFresh(t, e)
		if err != nil {
			t.Fatalf("torn tail recovery: %v", err)
		}
		if !rep.TornTail {
			t.Fatal("torn tail not reported")
		}
		delete(want, "c") // the torn record is the discarded suffix
		assertKV(t, kv2, want)
	})

	t.Run("flipped auth tag", func(t *testing.T) {
		e, m, _, _ := segLog(t)
		name := m.segmentName(m.curSeq)
		size, err := e.fs.Size(name)
		if err != nil {
			t.Fatal(err)
		}
		// Flip one byte inside the final record's sealed body (the tag
		// trails the ciphertext): present but unopenable.
		if err := e.fs.WriteAt(name, size-2, []byte{0xff}); err != nil {
			t.Fatal(err)
		}
		_, _, err = recoverFresh(t, e)
		if !errors.Is(err, ErrCorruptRecord) {
			t.Fatalf("flipped tag: %v, want ErrCorruptRecord", err)
		}
	})

	t.Run("stale counter epoch", func(t *testing.T) {
		e, m, _, _ := segLog(t)
		// Craft a validly-sealed segment stamped with an old epoch but
		// carrying an LSN past the live watermark — a stale fork's tail
		// spliced into the current lineage.
		staleSeq := m.curSeq + 1
		if err := m.openSegment(staleSeq, m.epoch-1, m.nextLSN); err != nil {
			t.Fatal(err)
		}
		if err := m.appendRecord(Record{LSN: m.nextLSN, Op: OpPut, State: "kv", Key: "evil", Value: []byte("x")}); err != nil {
			t.Fatal(err)
		}
		_, _, err := recoverFresh(t, e)
		if !errors.Is(err, ErrStaleCounter) {
			t.Fatalf("stale epoch: %v, want ErrStaleCounter", err)
		}
	})

	t.Run("duplicate LSN", func(t *testing.T) {
		e, m, _, _ := segLog(t)
		// Re-append the last record's LSN: framing-level duplicate.
		dup := m.nextLSN - 1
		if err := m.appendRecord(Record{LSN: dup, Op: OpPut, State: "kv", Key: "dup", Value: []byte("x")}); err != nil {
			t.Fatal(err)
		}
		_, _, err := recoverFresh(t, e)
		if !errors.Is(err, ErrDuplicateLSN) {
			t.Fatalf("duplicate LSN: %v, want ErrDuplicateLSN", err)
		}
	})

	t.Run("LSN gap", func(t *testing.T) {
		e, m, _, _ := segLog(t)
		if err := m.appendRecord(Record{LSN: m.nextLSN + 5, Op: OpPut, State: "kv", Key: "skip", Value: []byte("x")}); err != nil {
			t.Fatal(err)
		}
		_, _, err := recoverFresh(t, e)
		if !errors.Is(err, ErrCorruptSegment) {
			t.Fatalf("LSN gap: %v, want ErrCorruptSegment", err)
		}
	})

	t.Run("truncated non-final segment", func(t *testing.T) {
		e, m, _, _ := segLog(t)
		name := m.segmentName(m.curSeq)
		size, err := e.fs.Size(name)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := e.fs.ReadAt(name, 0, int(size))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.fs.Remove(name); err != nil {
			t.Fatal(err)
		}
		if err := e.fs.WriteAt(name, 0, buf[:size-7]); err != nil {
			t.Fatal(err)
		}
		// A later (empty) segment exists, so the damage is mid-log, not
		// a torn tail.
		if err := m.openSegment(m.curSeq+1, m.epoch, m.nextLSN); err != nil {
			t.Fatal(err)
		}
		_, _, err = recoverFresh(t, e)
		if !errors.Is(err, ErrCorruptSegment) {
			t.Fatalf("mid-log truncation: %v, want ErrCorruptSegment", err)
		}
	})

	t.Run("bad magic", func(t *testing.T) {
		e, m, _, _ := segLog(t)
		if err := e.fs.WriteAt(m.segmentName(m.curSeq), 0, []byte("XXXXXXXX")); err != nil {
			t.Fatal(err)
		}
		_, _, err := recoverFresh(t, e)
		if !errors.Is(err, ErrCorruptSegment) {
			t.Fatalf("bad magic: %v, want ErrCorruptSegment", err)
		}
	})

	t.Run("segment renamed into another slot", func(t *testing.T) {
		e, m, _, _ := segLog(t)
		// Copy the live segment under the next sequence number: the
		// header AAD binds the original seq, so the copy fails closed.
		name := m.segmentName(m.curSeq)
		size, err := e.fs.Size(name)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := e.fs.ReadAt(name, 0, int(size))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.fs.WriteAt(m.segmentName(m.curSeq+1), 0, buf); err != nil {
			t.Fatal(err)
		}
		_, _, err = recoverFresh(t, e)
		if !errors.Is(err, ErrCorruptSegment) {
			t.Fatalf("renamed segment: %v, want ErrCorruptSegment", err)
		}
	})
}

// TestCheckpointDecodeGuards exercises the checkpoint payload decoder's
// bound checks directly (the sealed path already rejects tampering, so
// these guard against in-enclave encoding bugs).
func TestCheckpointDecodeGuards(t *testing.T) {
	valid := encodeCheckpoint(checkpoint{
		stamp:     4,
		watermark: 9,
		states:    map[string][]byte{"kv": {1, 2, 3}},
	})
	if c, err := decodeCheckpoint(valid); err != nil || c.stamp != 4 || c.watermark != 9 {
		t.Fatalf("round trip: %+v, %v", c, err)
	}
	cases := []struct {
		name string
		buf  []byte
	}{
		{"empty", nil},
		{"bad version", append([]byte{9}, valid[1:]...)},
		{"truncated counts", valid[:10]},
		{"trailing bytes", append(append([]byte{}, valid...), 1)},
		{"state payload overruns", valid[:len(valid)-1]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := decodeCheckpoint(tc.buf); !errors.Is(err, ErrCorruptCheckpoint) {
				t.Fatalf("err = %v, want ErrCorruptCheckpoint", err)
			}
		})
	}
	// Length prefixes are bounded before allocation.
	huge := []byte{ckpVersion}
	huge = appendU64(huge, 1)
	huge = appendU64(huge, 1)
	huge = binary.AppendUvarint(huge, 1)     // one state
	huge = binary.AppendUvarint(huge, 1<<40) // absurd name length
	if _, err := decodeCheckpoint(huge); err == nil {
		t.Fatal("absurd state-name length accepted")
	}
}
