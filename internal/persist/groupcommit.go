package persist

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"montsalvat/internal/lockrank"
)

// Group commit (DESIGN.md §16). Every durable mutation pays three fixed
// costs on the old path: one AES-GCM seal, one segment append, and —
// amortised across checkpoints — one counter advance. Under concurrent
// writers those costs serialise on m.mu, so throughput flatlines at the
// single-record commit rate. The group committer takes them off the
// per-mutation path: concurrent Append callers park on a commit queue,
// one of them (the leader) drains the queue into a single batch WAL
// record — one seal, one append — and wakes every member with its LSN.
//
// Protocol:
//
//  1. A caller enqueues a commitReq. If no leader is active it becomes
//     the leader; otherwise it blocks on its done channel.
//  2. The leader holds the commit window open once per leadership term
//     — for maxDelay, returning early when the queue fills, or, with
//     maxDelay zero, for a single scheduler yield so runnable writers
//     reach the queue (a cooperative window: batching without timer
//     latency) — then drains up to maxRecords / maxBytes of the queue,
//     assigns consecutive LSNs under m.mu, seals the batch once,
//     appends the frame once, and distributes results.
//  3. The leader keeps draining until the queue is empty, then resigns.
//     Later drains of the same term never re-open the window: members
//     already parked must not pay it twice.
//
// Durability semantics are unchanged: a caller's Append returns only
// after its record is sealed and appended, and a crash anywhere in the
// batch protocol fails every member of the group (the crash matrix
// covers the batch-specific points).

// ErrNoGroupCommit reports a group-commit call on a Manager opened
// without Options.GroupCommit.
var ErrNoGroupCommit = errors.New("persist: group commit not enabled")

// commitResult is what a group member gets back from its leader.
type commitResult struct {
	lsn uint64
	err error
}

// commitReq is one parked mutation on the commit queue. done is nil
// for mutations enqueued through the non-blocking GroupEnqueue path:
// nobody is parked on them, they are acked by the GroupFlush that
// commits them.
type commitReq struct {
	op    Op
	state string
	key   string
	value []byte
	done  chan commitResult
}

// groupCommitter is the commit queue and leader-election state.
type groupCommitter struct {
	m          *Manager
	maxRecords int
	maxBytes   int
	maxDelay   time.Duration
	// yield overrides the zero-delay window's scheduler yield
	// (Options.Yield); nil means runtime.Gosched.
	yield func()

	mu      lockrank.Mutex // guards pending and leading
	pending []*commitReq
	leading bool
	full    chan struct{} // rung when pending reaches maxRecords
}

func newGroupCommitter(m *Manager, maxRecords, maxBytes int, maxDelay time.Duration) *groupCommitter {
	if maxRecords <= 0 {
		maxRecords = 64
	}
	if maxBytes <= 0 {
		maxBytes = 256 << 10
	}
	g := &groupCommitter{
		m:          m,
		maxRecords: maxRecords,
		maxBytes:   maxBytes,
		maxDelay:   maxDelay,
		full:       make(chan struct{}, 1),
	}
	g.mu.SetRank(lockrank.RankGroupQueue, "persist.groupCommitter.mu")
	return g
}

// append enqueues one mutation and blocks until a leader committed it
// (or the caller itself led the commit). Returns the record's LSN.
func (g *groupCommitter) append(state string, op Op, key string, value []byte) (uint64, error) {
	req := &commitReq{op: op, state: state, key: key, value: value, done: make(chan commitResult, 1)}
	g.mu.Lock()
	g.pending = append(g.pending, req)
	if len(g.pending) >= g.maxRecords {
		select {
		case g.full <- struct{}{}:
		default:
		}
	}
	if g.leading {
		g.mu.Unlock()
		res := <-req.done
		return res.lsn, res.err
	}
	g.leading = true
	g.mu.Unlock()
	g.lead()
	res := <-req.done
	return res.lsn, res.err
}

// lead drains the queue batch by batch until it is empty, then
// resigns. The leader's own request is delivered through its done
// channel like any other member's. The window is held at most once per
// term, and only when the queue is not already full.
func (g *groupCommitter) lead() {
	// A full ring left over from a previous term would close this
	// term's window spuriously; drain it. (A genuinely full queue is
	// caught by the pending check below, not the ring.)
	select {
	case <-g.full:
	default:
	}
	windowed := false
	for {
		g.mu.Lock()
		n := len(g.pending)
		g.mu.Unlock()
		if !windowed {
			windowed = true
			if n < g.maxRecords {
				g.window()
			}
		}
		g.mu.Lock()
		batch := g.takeLocked()
		if batch == nil {
			g.leading = false
			g.mu.Unlock()
			return
		}
		g.mu.Unlock()
		g.commit(batch)
	}
}

// window holds the commit open so followers can join. With a positive
// maxDelay it sleeps, returning early when the queue fills; with
// maxDelay zero it yields the processor once — on a saturated core the
// runnable writers enqueue during the yield, so batches form without
// any timer latency on the ack path.
func (g *groupCommitter) window() {
	if g.maxDelay <= 0 {
		if g.yield != nil {
			g.yield()
		} else {
			runtime.Gosched()
		}
		return
	}
	timer := time.NewTimer(g.maxDelay)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-g.full:
	}
}

// takeLocked slices one batch off the queue, bounded by maxRecords and
// maxBytes (always at least one request). Caller holds g.mu.
func (g *groupCommitter) takeLocked() []*commitReq {
	if len(g.pending) == 0 {
		return nil
	}
	n, bytes := 0, 0
	for n < len(g.pending) && n < g.maxRecords {
		bytes += len(g.pending[n].key) + len(g.pending[n].value)
		n++
		if bytes >= g.maxBytes {
			break
		}
	}
	batch := g.pending[:n:n]
	g.pending = append([]*commitReq(nil), g.pending[n:]...)
	return batch
}

// commit journals one batch under m.mu and wakes every parked member
// (GroupEnqueue'd requests have no waiter to wake).
func (g *groupCommitter) commit(batch []*commitReq) error {
	m := g.m
	m.mu.Lock()
	lsns, err := m.commitGroupLocked(batch)
	m.mu.Unlock()
	for i, req := range batch {
		if req.done == nil {
			continue
		}
		if err != nil {
			req.done <- commitResult{err: err}
			continue
		}
		req.done <- commitResult{lsn: lsns[i]}
	}
	return err
}

// GroupEnqueue parks one mutation on the commit queue without electing
// a leader or blocking: the caller holds no durability promise for it
// until a later GroupFlush (or a concurrent Append's leadership term)
// commits the batch it lands in. This is the explorable half of the
// group-commit protocol — a deterministic driver enqueues writes and
// closes the window as two separate, synchronous actions, so every
// interleaving of "mutation enqueued" and "window closed" is a distinct
// schedule rather than a race inside append.
func (m *Manager) GroupEnqueue(state string, op Op, key string, value []byte) error {
	if m.gc == nil {
		return ErrNoGroupCommit
	}
	g := m.gc
	req := &commitReq{op: op, state: state, key: key, value: value}
	g.mu.Lock()
	g.pending = append(g.pending, req)
	if len(g.pending) >= g.maxRecords {
		select {
		case g.full <- struct{}{}:
		default:
		}
	}
	g.mu.Unlock()
	return nil
}

// GroupFlush synchronously closes the commit window: it drains the
// whole pending queue batch by batch on the caller's goroutine, waking
// any parked members, and returns the number of records committed. If
// a concurrent Append caller is already leading, the queue belongs to
// that leader and GroupFlush returns without stealing it. A batch
// error stops the drain and fails the flush (the group's members saw
// the same error).
func (m *Manager) GroupFlush() (int, error) {
	if m.gc == nil {
		return 0, ErrNoGroupCommit
	}
	g := m.gc
	total := 0
	for {
		g.mu.Lock()
		if g.leading {
			g.mu.Unlock()
			return total, nil
		}
		batch := g.takeLocked()
		g.mu.Unlock()
		if batch == nil {
			return total, nil
		}
		if err := g.commit(batch); err != nil {
			return total, err
		}
		total += len(batch)
	}
}

// GroupPending reports the number of enqueued-but-uncommitted
// mutations on the commit queue (0 when group commit is off).
func (m *Manager) GroupPending() int {
	if m.gc == nil {
		return 0
	}
	m.gc.mu.Lock()
	defer m.gc.mu.Unlock()
	return len(m.gc.pending)
}

// commitGroupLocked validates, seals, and appends one batch as a single
// WAL record. Caller holds m.mu. On error nothing was acked: the whole
// group fails together (for CrashBeforeGroupWake the frame is durable —
// recovery may surface the group even though every member saw an
// error, exactly like CrashAfterAppend on the single-record path).
func (m *Manager) commitGroupLocked(batch []*commitReq) ([]uint64, error) {
	if !m.recovered {
		return nil, ErrNotRecovered
	}
	for _, req := range batch {
		if _, ok := m.byName[req.state]; !ok {
			return nil, fmt.Errorf("persist: append to unregistered state %q", req.state)
		}
	}
	if err := m.injector.hit(CrashBeforeAppend); err != nil {
		return nil, err
	}
	recs := make([]Record, len(batch))
	lsns := make([]uint64, len(batch))
	payload := 0
	for i, req := range batch {
		recs[i] = Record{LSN: m.nextLSN + uint64(i), Op: req.op, State: req.state, Key: req.key, Value: req.value}
		lsns[i] = recs[i].LSN
		payload += len(req.key) + len(req.value)
	}
	if err := m.appendBatchRecord(recs); err != nil {
		return nil, err
	}
	m.stats.Appends += uint64(len(recs))
	m.stats.AppendedBytes += uint64(payload)
	m.stats.LastLSN = recs[len(recs)-1].LSN
	m.stats.GroupCommits++
	m.stats.GroupedRecords += uint64(len(recs))
	if err := m.injector.hit(CrashBeforeGroupWake); err != nil {
		return nil, err
	}
	m.nextLSN += uint64(len(recs))
	m.sinceCkpt += len(recs)
	if m.ckptEvery > 0 && m.sinceCkpt >= m.ckptEvery {
		if err := m.checkpointLocked(); err != nil {
			return nil, err
		}
	} else if m.curSize >= m.segBytes {
		if err := m.openSegment(m.curSeq+1, m.epoch, m.nextLSN); err != nil {
			return nil, err
		}
	}
	return lsns, nil
}
