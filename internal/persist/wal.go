package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// WAL on-disk format. The log is a sequence of segment files in
// untrusted storage (shim.FS), named dir + "wal-%08d.seg" by segment
// sequence number:
//
//	[8-byte magic "MSVWAL1\n"]
//	[4-byte BE len][sealed segment header]
//	[4-byte BE len][8-byte BE lsn][sealed record] ...
//
// The segment header (version, seq, epoch, baseLSN) is sealed with AAD
// binding the sequence number, so the host cannot rename segments into
// different positions. Each record is sealed with AAD binding (seq,
// lsn); the LSN also rides in plaintext framing so replay can skip
// records below the checkpoint watermark without paying an unseal.
// A frame's sealed payload is either one record (recordVersion) or a
// group-commit batch of consecutive records (batchRecordVersion); for
// a batch, the framing LSN and AAD bind the first LSN, and the
// watermark skip stays sound because checkpoints and batch appends
// serialise on the manager mutex — the watermark always lands on a
// batch boundary.
// The epoch field is the monotonic-counter value when the segment was
// opened — the rollback stamp: a segment from before the latest
// checkpoint can only legitimately contain LSNs at or below the
// checkpoint watermark (see replayLog).
//
// Torn writes are detected by framing: a record whose length prefix or
// body extends past the end of the final segment is an interrupted
// append, and replay stops there (prefix consistency). The same damage
// anywhere else — or a present-but-unopenable record — is corruption
// and recovery fails with a typed error rather than silently dropping
// committed data.

// WAL and recovery errors.
var (
	// ErrCorruptSegment reports a segment with a damaged header or
	// structurally invalid framing (outside the torn final tail).
	ErrCorruptSegment = errors.New("persist: corrupt WAL segment")
	// ErrCorruptRecord reports a fully-present record that fails
	// authenticated decryption or plaintext decoding.
	ErrCorruptRecord = errors.New("persist: corrupt WAL record")
	// ErrStaleCounter reports a sealed blob stamped with an older
	// monotonic-counter epoch than live state requires — a rollback or
	// replay of old log segments.
	ErrStaleCounter = errors.New("persist: stale counter stamp")
	// ErrDuplicateLSN reports a record whose LSN was already replayed —
	// a duplicated or re-injected log entry.
	ErrDuplicateLSN = errors.New("persist: duplicate LSN")
	// ErrRollback reports recovery finding only checkpoints older than
	// the monotonic counter demands — the classic rollback attack.
	ErrRollback = errors.New("persist: rollback detected")
	// ErrCorruptCheckpoint reports the counter-matching checkpoint
	// failing to unseal.
	ErrCorruptCheckpoint = errors.New("persist: corrupt checkpoint")
)

const (
	walMagic    = "MSVWAL1\n"
	segVersion  = 1
	walHdrAAD   = "msv/wal-hdr/1"
	walRecAAD   = "msv/wal-rec/1"
	recFrameLen = 4 + 8 // length prefix + plaintext LSN
)

// segHeader is the sealed per-segment header.
type segHeader struct {
	seq     uint64 // segment sequence number (also in the file name)
	epoch   uint64 // monotonic-counter value when the segment was opened
	baseLSN uint64 // first LSN this segment may contain
}

func encodeSegHeader(h segHeader) []byte {
	buf := make([]byte, 0, 1+8*3)
	buf = append(buf, segVersion)
	buf = appendU64(buf, h.seq)
	buf = appendU64(buf, h.epoch)
	buf = appendU64(buf, h.baseLSN)
	return buf
}

func decodeSegHeader(buf []byte) (segHeader, error) {
	var h segHeader
	if len(buf) != 1+8*3 {
		return h, fmt.Errorf("%w: header length %d", ErrCorruptSegment, len(buf))
	}
	if buf[0] != segVersion {
		return h, fmt.Errorf("%w: header version %d", ErrCorruptSegment, buf[0])
	}
	h.seq = binary.BigEndian.Uint64(buf[1:])
	h.epoch = binary.BigEndian.Uint64(buf[9:])
	h.baseLSN = binary.BigEndian.Uint64(buf[17:])
	return h, nil
}

func segHeaderAAD(seq uint64) []byte {
	return appendU64([]byte(walHdrAAD), seq)
}

func recordAAD(seq, lsn uint64) []byte {
	return appendU64(appendU64([]byte(walRecAAD), seq), lsn)
}

func (m *Manager) segmentName(seq uint64) string {
	return fmt.Sprintf("%swal-%08d.seg", m.dir, seq)
}

// listSegments returns the sequence numbers of existing segments,
// sorted ascending.
func (m *Manager) listSegments() ([]uint64, error) {
	names, err := m.fs.List()
	if err != nil {
		return nil, fmt.Errorf("persist: list segments: %w", err)
	}
	var seqs []uint64
	for _, name := range names {
		if !strings.HasPrefix(name, m.dir+"wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		var seq uint64
		numPart := strings.TrimSuffix(strings.TrimPrefix(name, m.dir+"wal-"), ".seg")
		if _, err := fmt.Sscanf(numPart, "%d", &seq); err != nil {
			continue // foreign file in our namespace; not ours to judge
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// openSegment creates segment seq with the given epoch and base LSN,
// writing the magic and sealed header in one append.
func (m *Manager) openSegment(seq, epoch, baseLSN uint64) error {
	hdr, err := m.seal(encodeSegHeader(segHeader{seq: seq, epoch: epoch, baseLSN: baseLSN}), segHeaderAAD(seq))
	if err != nil {
		return err
	}
	buf := make([]byte, 0, len(walMagic)+4+len(hdr))
	buf = append(buf, walMagic...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(hdr)))
	buf = append(buf, hdr...)
	if _, err := m.fs.Append(m.segmentName(seq), buf); err != nil {
		return fmt.Errorf("persist: open segment %d: %w", seq, err)
	}
	m.curSeq = seq
	m.curSize = int64(len(buf))
	return nil
}

// appendRecord seals and appends one record to the current segment,
// honouring the mid-append crash point by writing a torn frame.
func (m *Manager) appendRecord(rec Record) error {
	sealed, err := m.seal(EncodeWALRecord(rec), recordAAD(m.curSeq, rec.LSN))
	if err != nil {
		return err
	}
	if !fitsLen(len(sealed)) {
		return fmt.Errorf("persist: record too large: %d bytes", len(sealed))
	}
	frame := make([]byte, 0, recFrameLen+len(sealed))
	frame = binary.BigEndian.AppendUint32(frame, uint32(8+len(sealed)))
	frame = appendU64(frame, rec.LSN)
	frame = append(frame, sealed...)
	if err := m.injector.hit(CrashMidAppend); err != nil {
		// Simulate the torn write the crash would leave behind: the
		// frame is cut mid-record before the "process" dies.
		_, _ = m.fs.Append(m.segmentName(m.curSeq), frame[:recFrameLen+len(sealed)/2])
		return err
	}
	if _, err := m.fs.Append(m.segmentName(m.curSeq), frame); err != nil {
		return fmt.Errorf("persist: append record: %w", err)
	}
	m.curSize += int64(len(frame))
	return nil
}

// appendBatchRecord seals a group of consecutive records into one
// frame and appends it (the group-commit fast path). The frame's
// plaintext LSN is the batch's first LSN; the AAD binds (seq, first
// LSN) so the host can neither move nor reorder the batch. Honours the
// batch crash points.
func (m *Manager) appendBatchRecord(recs []Record) error {
	sealed, err := m.seal(EncodeWALBatch(recs), recordAAD(m.curSeq, recs[0].LSN))
	if err != nil {
		return err
	}
	if !fitsLen(len(sealed)) {
		return fmt.Errorf("persist: batch record too large: %d bytes", len(sealed))
	}
	if err := m.injector.hit(CrashAfterBatchSeal); err != nil {
		// Sealed but never written: the whole group is lost, which is
		// fine — no member was acked.
		return err
	}
	frame := make([]byte, 0, recFrameLen+len(sealed))
	frame = binary.BigEndian.AppendUint32(frame, uint32(8+len(sealed)))
	frame = appendU64(frame, recs[0].LSN)
	frame = append(frame, sealed...)
	if err := m.injector.hit(CrashMidBatchAppend); err != nil {
		// Simulate the torn write: half the batch frame reaches the
		// tail before the "process" dies. Replay drops the whole torn
		// frame — the group vanishes at per-mutation granularity.
		_, _ = m.fs.Append(m.segmentName(m.curSeq), frame[:recFrameLen+len(sealed)/2])
		return err
	}
	if _, err := m.fs.Append(m.segmentName(m.curSeq), frame); err != nil {
		return fmt.Errorf("persist: append batch record: %w", err)
	}
	m.curSize += int64(len(frame))
	return nil
}

// decodeFrameRecords parses a frame's unsealed payload into its
// records: a batch frame (group commit) yields several, a plain frame
// yields one. The version byte discriminates.
func decodeFrameRecords(plain []byte) ([]Record, error) {
	if len(plain) > 0 && plain[0] == batchRecordVersion {
		return DecodeWALBatch(plain)
	}
	rec, err := DecodeWALRecord(plain)
	if err != nil {
		return nil, err
	}
	return []Record{rec}, nil
}

// segRecord is one framed record as read back from a segment.
type segRecord struct {
	lsn    uint64
	sealed []byte
}

// readSegment parses one segment file. final marks the last segment of
// the log: only there is a torn tail legal (reported via torn, with the
// records before it intact). Sealed record payloads are returned
// unopened so replay can skip below-watermark records cheaply.
func (m *Manager) readSegment(seq uint64, final bool) (hdr segHeader, recs []segRecord, torn bool, err error) {
	name := m.segmentName(seq)
	size, err := m.fs.Size(name)
	if err != nil {
		return hdr, nil, false, fmt.Errorf("%w: segment %d unreadable: %v", ErrCorruptSegment, seq, err)
	}
	buf, err := m.fs.ReadAt(name, 0, int(size))
	if err != nil {
		return hdr, nil, false, fmt.Errorf("%w: segment %d unreadable: %v", ErrCorruptSegment, seq, err)
	}
	if len(buf) < len(walMagic)+4 || string(buf[:len(walMagic)]) != walMagic {
		return hdr, nil, false, fmt.Errorf("%w: segment %d bad magic", ErrCorruptSegment, seq)
	}
	rest := buf[len(walMagic):]
	hdrLen := int(binary.BigEndian.Uint32(rest))
	rest = rest[4:]
	if hdrLen <= 0 || hdrLen > len(rest) {
		return hdr, nil, false, fmt.Errorf("%w: segment %d header framing", ErrCorruptSegment, seq)
	}
	plain, err := m.unseal(rest[:hdrLen], segHeaderAAD(seq))
	if err != nil {
		return hdr, nil, false, fmt.Errorf("%w: segment %d header: %v", ErrCorruptSegment, seq, err)
	}
	hdr, err = decodeSegHeader(plain)
	if err != nil {
		return hdr, nil, false, err
	}
	if hdr.seq != seq {
		return hdr, nil, false, fmt.Errorf("%w: segment %d header claims seq %d", ErrCorruptSegment, seq, hdr.seq)
	}
	rest = rest[hdrLen:]

	for len(rest) > 0 {
		if len(rest) < 4 {
			if final {
				return hdr, recs, true, nil // torn length prefix
			}
			return hdr, nil, false, fmt.Errorf("%w: segment %d truncated mid-frame", ErrCorruptSegment, seq)
		}
		frameLen := int(binary.BigEndian.Uint32(rest))
		if frameLen < 8 {
			return hdr, nil, false, fmt.Errorf("%w: segment %d frame length %d", ErrCorruptSegment, seq, frameLen)
		}
		if frameLen > len(rest)-4 {
			if final {
				return hdr, recs, true, nil // torn record body
			}
			return hdr, nil, false, fmt.Errorf("%w: segment %d truncated record", ErrCorruptSegment, seq)
		}
		frame := rest[4 : 4+frameLen]
		recs = append(recs, segRecord{
			lsn:    binary.BigEndian.Uint64(frame[:8]),
			sealed: frame[8:],
		})
		rest = rest[4+frameLen:]
	}
	return hdr, recs, false, nil
}

// replayLog walks every segment, validates stamps and LSN discipline,
// and applies records above the checkpoint watermark. It returns the
// number of records replayed, the highest LSN seen, and whether the
// final segment ended in a torn record.
func (m *Manager) replayLog(counter, watermark uint64, apply func(Record) error) (replayed int, lastLSN uint64, torn bool, err error) {
	seqs, err := m.listSegments()
	if err != nil {
		return 0, 0, false, err
	}
	lastLSN = watermark
	for i, seq := range seqs {
		final := i == len(seqs)-1
		hdr, recs, segTorn, err := m.readSegment(seq, final)
		if err != nil {
			return replayed, lastLSN, false, err
		}
		if hdr.epoch > counter {
			return replayed, lastLSN, false, fmt.Errorf(
				"%w: segment %d epoch %d ahead of counter %d", ErrStaleCounter, seq, hdr.epoch, counter)
		}
		stale := hdr.epoch < counter
		for _, sr := range recs {
			if sr.lsn <= watermark {
				continue // captured by the checkpoint; normal overlap
			}
			if stale {
				// A pre-checkpoint segment can only hold LSNs the
				// checkpoint covers; anything above the watermark is a
				// replayed old segment posing as fresh log.
				return replayed, lastLSN, false, fmt.Errorf(
					"%w: segment %d epoch %d carries LSN %d past watermark %d",
					ErrStaleCounter, seq, hdr.epoch, sr.lsn, watermark)
			}
			if sr.lsn <= lastLSN {
				return replayed, lastLSN, false, fmt.Errorf(
					"%w: LSN %d after %d", ErrDuplicateLSN, sr.lsn, lastLSN)
			}
			if sr.lsn != lastLSN+1 {
				return replayed, lastLSN, false, fmt.Errorf(
					"%w: segment %d LSN gap %d -> %d", ErrCorruptSegment, seq, lastLSN, sr.lsn)
			}
			plain, err := m.unseal(sr.sealed, recordAAD(seq, sr.lsn))
			if err != nil {
				return replayed, lastLSN, false, fmt.Errorf(
					"%w: segment %d LSN %d: %v", ErrCorruptRecord, seq, sr.lsn, err)
			}
			subs, err := decodeFrameRecords(plain)
			if err != nil {
				return replayed, lastLSN, false, fmt.Errorf(
					"%w: segment %d LSN %d: %v", ErrCorruptRecord, seq, sr.lsn, err)
			}
			if subs[0].LSN != sr.lsn {
				return replayed, lastLSN, false, fmt.Errorf(
					"%w: frame LSN %d, record LSN %d", ErrCorruptRecord, sr.lsn, subs[0].LSN)
			}
			for _, rec := range subs {
				// Batch members must be consecutive from the frame LSN;
				// a batch straddling the watermark is impossible
				// (checkpoints and batch appends serialise on m.mu, so
				// the watermark always lands on a batch boundary).
				if rec.LSN != lastLSN+1 {
					return replayed, lastLSN, false, fmt.Errorf(
						"%w: segment %d batch LSN %d after %d", ErrCorruptRecord, seq, rec.LSN, lastLSN)
				}
				if apply != nil {
					if err := apply(rec); err != nil {
						return replayed, lastLSN, false, err
					}
				}
				replayed++
				lastLSN = rec.LSN
			}
		}
		torn = torn || segTorn
	}
	return replayed, lastLSN, torn, nil
}

// truncateSegments removes segments that a checkpoint has made
// redundant: every segment whose sequence number is below keepSeq.
// Honours the mid-truncate crash point after the first removal.
func (m *Manager) truncateSegments(keepSeq uint64) error {
	seqs, err := m.listSegments()
	if err != nil {
		return err
	}
	for _, seq := range seqs {
		if seq >= keepSeq {
			continue
		}
		if err := m.fs.Remove(m.segmentName(seq)); err != nil {
			return fmt.Errorf("persist: truncate segment %d: %w", seq, err)
		}
		// Crash with part of the cleanup done: recovery must tolerate
		// (and finish) a half-truncated log.
		if err := m.injector.hit(CrashMidTruncate); err != nil {
			return err
		}
	}
	return nil
}
