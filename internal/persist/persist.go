package persist

import (
	"errors"
	"fmt"
	"time"

	"montsalvat/internal/lockrank"
	"montsalvat/internal/sgx"
	"montsalvat/internal/shim"
	"montsalvat/internal/telemetry"
)

// Lifecycle errors.
var (
	// ErrNotRecovered reports use of a Manager before Recover: the log
	// position is unknown until recovery establishes it.
	ErrNotRecovered = errors.New("persist: manager not recovered")
)

// Options configures a Manager.
type Options struct {
	// FS is the untrusted storage the log and checkpoints live on.
	FS shim.FS
	// Enclave is the sealing identity. With the default MRSIGNER
	// policy, a re-created (or upgraded) enclave signed by the same
	// author can recover state sealed by its predecessor.
	Enclave *sgx.Enclave
	// Secret is the platform secret (EGETKEY input).
	Secret sgx.PlatformSecret
	// Counter is the rollback-protection monotonic counter.
	Counter *sgx.MonotonicCounter
	// Policy is the seal policy; default SealToMRSIGNER.
	Policy sgx.SealPolicy
	// Dir prefixes every file name (e.g. "persist/").
	Dir string
	// SegmentBytes rotates the active segment when it grows past this
	// size. Default 256 KiB.
	SegmentBytes int64
	// CheckpointEvery takes an automatic checkpoint after this many
	// appends. 0 means checkpoints are caller-driven only.
	CheckpointEvery int
	// BeforeCommit runs before every checkpoint snapshot — the
	// flush-before-commit barrier. The World wires its boundary flush
	// here so batched (result-independent) relay calls land before
	// state is captured; without it a checkpoint could seal state that
	// still has mutations parked in the transition batch queue.
	BeforeCommit func() error
	// Telemetry receives montsalvat_persist_* metrics. Optional.
	Telemetry *telemetry.Registry
	// Events, when set, journals durability transitions (checkpoint
	// commits, counter advances, recovery replays) as structured events.
	Events *telemetry.EventLog
	// Node labels this manager's events in a fleet ("shard-2").
	Node string
	// Injector arms crash points. Nil in production.
	Injector *Injector
	// Logf receives recovery and cleanup notes. Defaults to discard.
	Logf func(format string, args ...any)
	// GroupCommit enables the batched append path (DESIGN.md §16):
	// concurrent Append callers park on a commit queue and a leader
	// seals one batch WAL record — one AES-GCM seal, one segment
	// append — for the whole group. Each caller still returns only
	// after its record is durable; only the per-record fixed costs
	// amortise. Off by default: the single-record path is unchanged.
	GroupCommit bool
	// GroupMaxRecords bounds one commit batch (default 64).
	GroupMaxRecords int
	// GroupMaxBytes bounds one batch's key+value payload (default
	// 256 KiB).
	GroupMaxBytes int
	// GroupMaxDelay is how long a commit leader holds the window open
	// for followers to join before sealing. Default 0: seal
	// immediately — batches then form only from natural queueing while
	// a commit is in flight.
	GroupMaxDelay time.Duration
	// Yield overrides the scheduler yield a zero-delay commit leader
	// uses to hold the batch window open (default runtime.Gosched).
	// Deterministic drivers (the orderly explorer) inject a no-op so a
	// leadership term never depends on scheduler timing.
	Yield func()
}

// Manager is the durability engine: one sealed WAL plus checkpoint
// lineage over a set of registered States. Safe for concurrent use;
// appends and checkpoints serialise on one mutex (the WAL is a total
// order anyway).
type Manager struct {
	mu        lockrank.Mutex
	fs        shim.FS
	enclave   *sgx.Enclave
	secret    sgx.PlatformSecret
	counter   *sgx.MonotonicCounter
	policy    sgx.SealPolicy
	dir       string
	segBytes  int64
	ckptEvery int
	before    func() error
	injector  *Injector
	logf      func(string, ...any)

	states []State
	byName map[string]State

	recovered bool
	epoch     uint64 // live counter value; stamped into new segments
	watermark uint64 // highest LSN covered by the live checkpoint
	nextLSN   uint64
	sinceCkpt int
	curSeq    uint64
	curSize   int64

	tel      *telemetry.Registry
	events   *telemetry.EventLog
	node     string
	stats    Stats
	recovery *telemetry.Histogram

	// gc is the group-commit queue; nil when Options.GroupCommit is
	// off (Append then takes the single-record path).
	gc *groupCommitter
}

// Stats are the manager's lifetime counters (returned by Stats,
// exported as montsalvat_persist_* via the telemetry collector).
type Stats struct {
	Appends         uint64
	AppendedBytes   uint64
	Checkpoints     uint64
	Recoveries      uint64
	ReplayedRecords uint64
	Epoch           uint64
	Watermark       uint64
	LastLSN         uint64
	// GroupCommits counts batch WAL records written by the
	// group-commit path; GroupedRecords counts the mutations inside
	// them. GroupedRecords / GroupCommits is the achieved batch size.
	GroupCommits   uint64
	GroupedRecords uint64
}

// Report describes one completed recovery.
type Report struct {
	// CheckpointStamp is the counter stamp of the checkpoint restored
	// (0 when the log was fresh).
	CheckpointStamp uint64
	// Watermark is the LSN the restored checkpoint covered.
	Watermark uint64
	// ReplayedRecords counts WAL records applied after the checkpoint.
	ReplayedRecords int
	// LastLSN is the highest LSN in the recovered state.
	LastLSN uint64
	// TornTail reports that the final segment ended mid-record (an
	// interrupted append was discarded).
	TornTail bool
	// Duration is wall-clock recovery time.
	Duration time.Duration
}

func (r Report) String() string {
	return fmt.Sprintf("checkpoint=%d watermark=%d replayed=%d last_lsn=%d torn_tail=%v duration=%s",
		r.CheckpointStamp, r.Watermark, r.ReplayedRecords, r.LastLSN, r.TornTail, r.Duration.Round(time.Microsecond))
}

// Open validates options and builds a Manager. No storage is touched:
// call Register for each durable state, then Recover to establish the
// log position (mandatory even on first boot).
func Open(opts Options) (*Manager, error) {
	if opts.FS == nil {
		return nil, errors.New("persist: Options.FS is required")
	}
	if opts.Enclave == nil {
		return nil, errors.New("persist: Options.Enclave is required")
	}
	if opts.Counter == nil {
		return nil, errors.New("persist: Options.Counter is required")
	}
	if opts.Policy == 0 {
		opts.Policy = sgx.SealToMRSIGNER
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 256 << 10
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.Injector == nil {
		// Always carry a (disarmed) injector so callers can arm crash
		// points deterministically through CrashInjector without having
		// to plumb one at Open time — the model checker's hook.
		opts.Injector = &Injector{}
	}
	m := &Manager{
		fs:        opts.FS,
		enclave:   opts.Enclave,
		secret:    opts.Secret,
		counter:   opts.Counter,
		policy:    opts.Policy,
		dir:       opts.Dir,
		segBytes:  opts.SegmentBytes,
		ckptEvery: opts.CheckpointEvery,
		before:    opts.BeforeCommit,
		injector:  opts.Injector,
		logf:      opts.Logf,
		byName:    make(map[string]State),
		tel:       opts.Telemetry,
		events:    opts.Events,
		node:      opts.Node,
	}
	m.mu.SetRank(lockrank.RankManager, "persist.Manager.mu")
	if opts.GroupCommit {
		m.gc = newGroupCommitter(m, opts.GroupMaxRecords, opts.GroupMaxBytes, opts.GroupMaxDelay)
		m.gc.yield = opts.Yield
	}
	if m.tel != nil {
		m.recovery = m.tel.Histogram("montsalvat_persist_recovery_duration_nanoseconds")
		m.tel.RegisterCollector(m.collectMetrics)
	}
	return m, nil
}

// CrashInjector returns the manager's crash-point injector (never nil).
// Arming a point makes the corresponding protocol step return a typed
// *Crash — the public deterministic hook the orderly explorer (and any
// crash-matrix harness) uses to schedule failures without plumbing an
// Injector through Open.
func (m *Manager) CrashInjector() *Injector { return m.injector }

// Register adds a durable state. All states must be registered before
// Recover; registration after recovery is rejected so checkpoints and
// snapshots always cover the same set.
func (m *Manager) Register(s State) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.recovered {
		return errors.New("persist: Register after Recover")
	}
	if _, dup := m.byName[s.Name()]; dup {
		return fmt.Errorf("persist: duplicate state %q", s.Name())
	}
	m.byName[s.Name()] = s
	m.states = append(m.states, s)
	return nil
}

// seal / unseal run the enclave's sealing primitive under the
// manager's policy. Callers hold m.mu (Rebind swaps the enclave).
func (m *Manager) seal(plain, aad []byte) ([]byte, error) {
	return m.enclave.Seal(m.secret, m.policy, plain, aad)
}

func (m *Manager) unseal(blob, aad []byte) ([]byte, error) {
	return m.enclave.Unseal(m.secret, m.policy, blob, aad)
}

// Rebind points the manager at a re-created enclave after a restart.
// Under the MRSIGNER policy the new instance derives the same sealing
// key, so existing blobs stay readable.
func (m *Manager) Rebind(e *sgx.Enclave) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.enclave = e
}

// Append journals one mutation against the named state and returns
// its LSN. The record is durable (sealed and written to the active
// segment) when Append returns; the caller acks its client only after
// that. Mutations must be applied to the in-enclave state by the
// caller — the journal does not echo them back outside recovery.
//
// With Options.GroupCommit the call routes through the commit queue:
// it may park while a leader drains the queue, and several callers'
// records land in one sealed batch frame. The durability contract is
// identical either way.
func (m *Manager) Append(state string, op Op, key string, value []byte) (uint64, error) {
	if m.gc != nil {
		return m.gc.append(state, op, key, value)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.recovered {
		return 0, ErrNotRecovered
	}
	if _, ok := m.byName[state]; !ok {
		return 0, fmt.Errorf("persist: append to unregistered state %q", state)
	}
	if err := m.injector.hit(CrashBeforeAppend); err != nil {
		return 0, err
	}
	rec := Record{LSN: m.nextLSN, Op: op, State: state, Key: key, Value: value}
	if err := m.appendRecord(rec); err != nil {
		return 0, err
	}
	m.stats.Appends++
	m.stats.AppendedBytes += uint64(len(key) + len(value))
	m.stats.LastLSN = rec.LSN
	if err := m.injector.hit(CrashAfterAppend); err != nil {
		// The record is durable but the caller will never ack it:
		// recovery may legitimately surface this one extra mutation.
		return 0, err
	}
	m.nextLSN++
	m.sinceCkpt++
	if m.ckptEvery > 0 && m.sinceCkpt >= m.ckptEvery {
		if err := m.checkpointLocked(); err != nil {
			return 0, err
		}
	} else if m.curSize >= m.segBytes {
		if err := m.openSegment(m.curSeq+1, m.epoch, m.nextLSN); err != nil {
			return 0, err
		}
	}
	return rec.LSN, nil
}

// Checkpoint captures all registered state into a sealed,
// counter-stamped blob and truncates the log behind it.
func (m *Manager) Checkpoint() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.recovered {
		return ErrNotRecovered
	}
	return m.checkpointLocked()
}

// checkpointLocked runs the commit protocol described in
// checkpoint.go. The monotonic-counter increment is the commit point.
func (m *Manager) checkpointLocked() error {
	if m.before != nil {
		// Flush-before-commit: batched boundary work must land before
		// state is captured.
		if err := m.before(); err != nil {
			return fmt.Errorf("persist: pre-checkpoint flush: %w", err)
		}
	}
	if err := m.injector.hit(CrashBeforeCheckpointSeal); err != nil {
		return err
	}
	live, err := m.counter.Read() // re-verifies the untrusted store
	if err != nil {
		return err
	}
	c := checkpoint{
		stamp:     live + 1,
		watermark: m.nextLSN - 1,
		states:    make(map[string][]byte, len(m.states)),
	}
	for _, s := range m.states {
		snap, err := s.Snapshot()
		if err != nil {
			return fmt.Errorf("persist: snapshot %q: %w", s.Name(), err)
		}
		c.states[s.Name()] = snap
	}
	if err := m.writeCheckpoint(c); err != nil {
		return err
	}
	if err := m.injector.hit(CrashAfterCheckpointWrite); err != nil {
		return err
	}
	bumped, err := m.counter.Increment() // ← commit point
	if err != nil {
		return err
	}
	if bumped != c.stamp {
		return fmt.Errorf("%w: counter moved to %d under a checkpoint stamped %d", ErrStaleCounter, bumped, c.stamp)
	}
	m.epoch = c.stamp
	m.watermark = c.watermark
	m.sinceCkpt = 0
	m.stats.Checkpoints++
	m.stats.Epoch = m.epoch
	m.stats.Watermark = m.watermark
	m.events.Emit(telemetry.EventCounterAdvance, m.node, 0, "stamp %d", c.stamp)
	m.events.Emit(telemetry.EventCheckpoint, m.node, 0, "stamp %d watermark %d", c.stamp, c.watermark)
	if err := m.injector.hit(CrashAfterCounterBump); err != nil {
		return err
	}
	// Cleanup is non-critical for correctness (recovery skips covered
	// blobs) but keeps storage bounded.
	if err := m.dropCheckpoints(c.stamp); err != nil {
		return err
	}
	if err := m.truncateSegments(m.curSeq + 1); err != nil {
		return err
	}
	return m.openSegment(m.curSeq+1, m.epoch, m.nextLSN)
}

// Recover establishes the durable state: verify the monotonic counter,
// restore the counter-valid checkpoint, replay the WAL tail into the
// registered states, then take a recovery checkpoint so the log starts
// the new epoch clean. Mandatory after Open, including on first boot.
func (m *Manager) Recover() (Report, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	start := time.Now()
	var rep Report

	live, err := m.counter.Read()
	if err != nil {
		return rep, err
	}

	stamps, err := m.listCheckpoints()
	if err != nil {
		return rep, err
	}
	best := uint64(0)
	for _, stamp := range stamps {
		switch {
		case stamp > live:
			// Commit that never reached its counter bump (or a fork from
			// the future): discard.
			m.logf("persist: dropping incomplete checkpoint stamp=%d counter=%d", stamp, live)
			if err := m.fs.Remove(m.checkpointName(stamp)); err != nil {
				return rep, fmt.Errorf("persist: drop incomplete checkpoint: %w", err)
			}
		case stamp > best:
			best = stamp
		}
	}
	if live > 0 {
		if best < live {
			return rep, fmt.Errorf("%w: counter demands checkpoint %d, best available is %d", ErrRollback, live, best)
		}
		ckpt, err := m.readCheckpoint(live)
		if err != nil {
			return rep, err
		}
		for _, s := range m.states {
			snap, ok := ckpt.states[s.Name()]
			if !ok {
				continue // state added since the checkpoint; starts empty
			}
			if err := s.Restore(snap); err != nil {
				return rep, fmt.Errorf("persist: restore %q: %w", s.Name(), err)
			}
		}
		m.watermark = ckpt.watermark
		rep.CheckpointStamp = live
		rep.Watermark = ckpt.watermark
	}
	m.epoch = live

	replayed, lastLSN, torn, err := m.replayLog(live, m.watermark, func(rec Record) error {
		s, ok := m.byName[rec.State]
		if !ok {
			// A state this build no longer registers (e.g. removed in an
			// upgrade): its journal entries are inert, not fatal.
			m.logf("persist: skipping record LSN %d for unknown state %q", rec.LSN, rec.State)
			return nil
		}
		return s.Apply(rec)
	})
	if err != nil {
		return rep, err
	}
	rep.ReplayedRecords = replayed
	rep.LastLSN = lastLSN
	rep.TornTail = torn
	m.nextLSN = lastLSN + 1

	seqs, err := m.listSegments()
	if err != nil {
		return rep, err
	}
	m.curSeq = 0
	if n := len(seqs); n > 0 {
		m.curSeq = seqs[n-1]
	}
	m.recovered = true

	// Recovery checkpoint: re-seal the converged state at a fresh
	// counter epoch so old segments (including any torn tail) are
	// retired and two forks recovering from the same blobs diverge
	// counters immediately.
	if err := m.checkpointLocked(); err != nil {
		m.recovered = false
		return rep, err
	}

	rep.Duration = time.Since(start)
	m.stats.Recoveries++
	m.stats.ReplayedRecords += uint64(replayed)
	m.stats.LastLSN = lastLSN
	if m.recovery != nil {
		m.recovery.ObserveDuration(rep.Duration)
	}
	m.events.Emit(telemetry.EventRecoveryReplay, m.node, 0, "%s", rep)
	m.logf("persist: recovered %s", rep)
	return rep, nil
}

// Stats returns lifetime counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

func (m *Manager) collectMetrics(reg *telemetry.Registry) {
	s := m.Stats()
	reg.Counter("montsalvat_persist_wal_appends_total").Set(s.Appends)
	reg.Counter("montsalvat_persist_wal_bytes_total").Set(s.AppendedBytes)
	reg.Counter("montsalvat_persist_checkpoints_total").Set(s.Checkpoints)
	reg.Counter("montsalvat_persist_recoveries_total").Set(s.Recoveries)
	reg.Counter("montsalvat_persist_recovery_replayed_records_total").Set(s.ReplayedRecords)
	reg.Counter("montsalvat_persist_group_commits_total").Set(s.GroupCommits)
	reg.Counter("montsalvat_persist_group_records_total").Set(s.GroupedRecords)
	reg.Gauge("montsalvat_persist_epoch").Set(int64(s.Epoch))
	reg.Gauge("montsalvat_persist_watermark_lsn").Set(int64(s.Watermark))
	reg.Gauge("montsalvat_persist_last_lsn").Set(int64(s.LastLSN))
}
