package smoke

import (
	"fmt"

	"montsalvat/internal/telemetry"
)

// failoverOrder is the event chain every completed failover must leave
// in the fleet journal, in strictly increasing Seq order.
var failoverOrder = []telemetry.EventType{
	telemetry.EventKill,
	telemetry.EventPromoteBegin,
	telemetry.EventPromoteCommit,
	telemetry.EventEpochBump,
}

// FailoverTimeline asserts the failover ordering invariant over the
// fleet event journal: for each of the cycles completed failovers there
// is a kill → promote-begin → promote-commit → epoch-bump chain, with
// chains matched greedily in sequence order (chain n+1 starts strictly
// after chain n's last event). It returns the matched Seq numbers,
// 4 per cycle, or an error naming the first missing link.
func FailoverTimeline(events []telemetry.Event, cycles int) ([]uint64, error) {
	seqs := make([]uint64, 0, len(failoverOrder)*cycles)
	last := uint64(0)
	for cycle := 0; cycle < cycles; cycle++ {
		for _, want := range failoverOrder {
			found := false
			for _, ev := range events {
				if ev.Type == want && ev.Seq > last {
					last = ev.Seq
					seqs = append(seqs, ev.Seq)
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("failover %d: no %s event after seq %d", cycle+1, want, last)
			}
		}
	}
	return seqs, nil
}
