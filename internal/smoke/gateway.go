package smoke

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/demo"
	"montsalvat/internal/persist"
	"montsalvat/internal/serve"
	"montsalvat/internal/sgx"
	"montsalvat/internal/shim"
	"montsalvat/internal/telemetry"
	"montsalvat/internal/wire"
	"montsalvat/internal/world"
)

// GatewayOptions configures an in-process gateway bring-up.
type GatewayOptions struct {
	// World is the caller-owned World the gateway serves. StartGateway
	// never closes it.
	World *world.World
	// Platform is the attestation platform sessions handshake against.
	Platform *sgx.Platform
	// MaxInFlight / MaxSessions are the gateway admission bounds
	// (0 = serve defaults).
	MaxInFlight int
	MaxSessions int
	// Telemetry, when set, is handed to the server and the persist
	// manager.
	Telemetry *telemetry.Telemetry
	// Logf, when set, receives gateway log lines and recovery reports.
	Logf func(format string, args ...any)
	// Durable journals acked KVStore puts through a persist.Manager
	// over FS and exports the recovered store as "kv". Without it the
	// gateway serves the world as-is (no export, no journal).
	Durable bool
	// FS is the untrusted durable storage (default: fresh MemFS).
	FS shim.FS
	// Addr is the listen address (default: loopback, ephemeral port).
	Addr string
}

// Gateway is a served enclave world on a loopback listener, optionally
// wired to a durable store: the in-process fixture the smoke runs, the
// crash-recovery checks, and the orderly gateway driver all share.
type Gateway struct {
	W   *serve.Server
	ln  net.Listener
	fs  shim.FS
	wld *world.World

	opts   GatewayOptions
	addr   string
	done   chan error
	secret sgx.PlatformSecret
	ctrs   *sgx.MemCounterStore
	kv     *persist.WorldKV

	mu  sync.Mutex
	mgr *persist.Manager
}

// StartGateway builds the serving stack: optional durable store and
// manager, server with the put-journaling hook, listener, and the
// serve goroutine. On success the gateway is accepting sessions.
func StartGateway(opts GatewayOptions) (*Gateway, error) {
	if opts.World == nil {
		return nil, errors.New("smoke: GatewayOptions.World is required")
	}
	if opts.Platform == nil {
		return nil, errors.New("smoke: GatewayOptions.Platform is required")
	}
	g := &Gateway{wld: opts.World, opts: opts, fs: opts.FS}
	if g.fs == nil {
		g.fs = shim.NewMemFS()
	}
	sopts := serve.Options{
		World:       opts.World,
		Platform:    opts.Platform,
		MaxInFlight: opts.MaxInFlight,
		MaxSessions: opts.MaxSessions,
		Telemetry:   opts.Telemetry,
		Logf:        opts.Logf,
	}
	if opts.Durable {
		secret, err := sgx.NewPlatformSecret()
		if err != nil {
			return nil, err
		}
		g.secret = secret
		g.ctrs = sgx.NewMemCounterStore()
		g.kv = persist.NewWorldKV("kv", opts.World)
		if err := g.bootStore(); err != nil {
			return nil, err
		}
		sopts.Journal = func(m serve.Mutation) error {
			if m.Op != serve.MutationCall || m.Class != demo.KVStoreCls || m.Method != "put" {
				return nil
			}
			key, _ := m.Args[0].AsStr()
			val, _ := m.Args[1].AsStr()
			_, err := g.Manager().Append("kv", persist.OpPut, key, []byte(val))
			return err
		}
	}
	srv, err := serve.New(sopts)
	if err != nil {
		return nil, err
	}
	if opts.Durable {
		srv.Export("kv", func(env classmodel.Env) (wire.Value, error) {
			ref := g.kv.Ref()
			if ref.IsNull() {
				return wire.Value{}, errors.New("store not initialised")
			}
			return ref, nil
		})
	}
	addr := opts.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	g.W = srv
	g.ln = ln
	g.addr = ln.Addr().String()
	g.done = make(chan error, 1)
	go func() { g.done <- srv.Serve(ln) }()
	return g, nil
}

// Addr is the gateway's bound address.
func (g *Gateway) Addr() string { return g.addr }

// ClientConfig is the attested session configuration pinned to this
// gateway's measurement.
func (g *Gateway) ClientConfig() serve.ClientConfig {
	return serve.ClientConfig{Platform: g.opts.Platform, Measurement: g.W.Measurement()}
}

// Manager returns the current persist manager (nil when not durable).
// The manager is swapped on every recovery, so callers must not cache
// it across a crash.
func (g *Gateway) Manager() *persist.Manager {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.mgr
}

// bootStore wires the durable side to the world's current enclave
// incarnation: fresh pinned store object, fresh manager over the same
// untrusted files and counter store, recovery replay.
func (g *Gateway) bootStore() error {
	var ref wire.Value
	err := g.wld.Exec(false, func(env classmodel.Env) error {
		v, err := env.New(demo.KVStoreCls)
		if err != nil {
			return err
		}
		ref = v
		return nil
	})
	if err != nil {
		return err
	}
	if err := g.wld.Untrusted().Pin(ref); err != nil {
		return err
	}
	g.kv.SetRef(ref)
	ctr, err := sgx.NewMonotonicCounter(g.secret, g.ctrs, "gateway-kv")
	if err != nil {
		return err
	}
	popts := persist.Options{
		FS:           g.fs,
		Enclave:      g.wld.Enclave(),
		Secret:       g.secret,
		Counter:      ctr,
		Dir:          "p/",
		BeforeCommit: g.wld.Flush,
	}
	if g.opts.Telemetry != nil {
		popts.Telemetry = g.opts.Telemetry.Registry()
	}
	m, err := persist.Open(popts)
	if err != nil {
		return err
	}
	if err := m.Register(g.kv); err != nil {
		return err
	}
	rep, err := m.Recover()
	if err != nil {
		return err
	}
	if g.opts.Logf != nil {
		g.opts.Logf("recovered: %s", rep)
	}
	g.mu.Lock()
	g.mgr = m
	g.mu.Unlock()
	return nil
}

// Restore is the simulated machine restart: enclave teardown, rebuild,
// durable state recovery. It is the standard Server.Recover callback
// body.
func (g *Gateway) Restore() error {
	g.wld.Kill()
	if err := g.wld.Restart(); err != nil {
		return err
	}
	return g.bootStore()
}

// AssertRecoveringRejected dials the draining gateway and fails unless
// the session is rejected with the typed retry signal — the "no
// crossing proceeds while draining" check every recovery shares.
func (g *Gateway) AssertRecoveringRejected() error {
	if _, err := serve.Dial(g.addr, g.ClientConfig()); !errors.Is(err, serve.ErrRecovering) {
		return fmt.Errorf("dial during recovery drain returned %v, want ErrRecovering", err)
	}
	return nil
}

// CrashRecover runs the full crash cycle under Server.Recover: drain,
// run during (nil = AssertRecoveringRejected) while the gateway is
// down, then Restore.
func (g *Gateway) CrashRecover(ctx context.Context, during func() error) error {
	if during == nil {
		during = g.AssertRecoveringRejected
	}
	return g.W.Recover(ctx, func() error {
		if err := during(); err != nil {
			return err
		}
		return g.Restore()
	})
}

// Settle waits for the server's active-session gauge to reach n:
// session teardown runs on the connection goroutine after the client
// closes, so deterministic drivers barrier on it before their next
// step.
func (g *Gateway) Settle(n int) error {
	deadline := time.Now().Add(5 * time.Second)
	for g.W.Stats().Sessions != n {
		if time.Now().After(deadline) {
			return fmt.Errorf("smoke: %d sessions still active, want %d", g.W.Stats().Sessions, n)
		}
		time.Sleep(100 * time.Microsecond)
	}
	return nil
}

// Shutdown drains the server and joins the serve goroutine.
func (g *Gateway) Shutdown(ctx context.Context) error {
	if err := g.W.Shutdown(ctx); err != nil {
		return err
	}
	return <-g.done
}

// Close is the unconditional teardown for error paths: best-effort
// drain with a short deadline. The world stays open — the caller owns
// it.
func (g *Gateway) Close() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = g.W.Shutdown(ctx)
	<-g.done
}
