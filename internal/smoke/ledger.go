package smoke

import (
	"fmt"
	"sort"
	"sync"
)

// Ledger records writes the system acknowledged to a client. An ack is
// a durability promise, so every smoke run finishes by reading the
// ledger back through the system and failing on any divergence.
type Ledger struct {
	mu sync.Mutex
	m  map[string]string
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{m: make(map[string]string)}
}

// Ack records an acknowledged write. Later acks for the same key
// overwrite earlier ones: the ledger tracks the last value promised.
func (l *Ledger) Ack(key, val string) {
	l.mu.Lock()
	l.m[key] = val
	l.mu.Unlock()
}

// Len reports the number of distinct acked keys.
func (l *Ledger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.m)
}

// Keys returns the acked keys in sorted order.
func (l *Ledger) Keys() []string {
	l.mu.Lock()
	keys := make([]string, 0, len(l.m))
	for k := range l.m {
		keys = append(keys, k)
	}
	l.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// Verify reads every acked key back through get and fails on the first
// lost or diverged write. Keys are visited in sorted order so failures
// are deterministic.
func (l *Ledger) Verify(get func(key string) (val string, ok bool, err error)) error {
	for _, key := range l.Keys() {
		l.mu.Lock()
		want := l.m[key]
		l.mu.Unlock()
		got, ok, err := get(key)
		if err != nil {
			return fmt.Errorf("smoke: read-back of acked key %s: %w", key, err)
		}
		if !ok {
			return fmt.Errorf("smoke: acked write %s=%q lost (not found on read-back)", key, want)
		}
		if got != want {
			return fmt.Errorf("smoke: acked write %s=%q served as %q", key, want, got)
		}
	}
	return nil
}
