// Package smoke holds the end-to-end check plumbing shared by the
// command-line smoke runs (montsalvat-serve, montsalvat-fabric) and
// the orderly model checker's real-system drivers: in-process durable
// gateway bring-up and crash/recovery, the acked-write ledger with its
// read-back verification, and the failover-timeline matcher over the
// fleet event journal.
//
// Before this package each of those lived in two or three slightly
// diverged copies (cmd/montsalvat-serve/crash.go, cmd/montsalvat-fabric
// obs-check, and the orderly drivers would have been the fourth); a
// check that exists once is a check whose strictness cannot drift.
package smoke
