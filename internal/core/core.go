// Package core is Montsalvat's primary contribution: the end-to-end
// pipeline that turns an annotated application into a running SGX
// application (paper Fig. 1).
//
// The pipeline has four phases:
//
//  1. Code annotation — the input classmodel.Program carries @Trusted /
//     @Untrusted / @Neutral annotations (§5.1).
//  2. Bytecode transformation — transform.Partition splits the program
//     into the T and U class sets, generating proxies, relay methods and
//     the enclave interface (§5.2).
//  3. Native image partitioning — image.Build runs the closed-world
//     points-to analysis on each set and produces the trusted and
//     untrusted images, pruning unreachable proxies (§5.3).
//  4. SGX application creation — world.NewPartitioned creates the
//     enclave, measures and verifies the trusted image, wires the shim
//     library and spawns the runtimes (§5.4).
//
// Unpartitioned deployment (§5.6) — the whole application in one image,
// in or out of the enclave — is supported by BuildUnpartitioned.
package core

import (
	"fmt"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/image"
	"montsalvat/internal/transform"
	"montsalvat/internal/world"
)

// BuildResult carries the artefacts of the build pipeline.
type BuildResult struct {
	// Transform is the bytecode-transformation output (class sets, EDL,
	// report).
	Transform *transform.Result
	// TrustedImage and UntrustedImage are the two native images.
	TrustedImage   *image.Image
	UntrustedImage *image.Image
}

// EDL renders the generated enclave definition language file.
func (r *BuildResult) EDL() string { return r.Transform.Interface.Render() }

// EdgeC renders the generated C edge routines (Listing 6).
func (r *BuildResult) EdgeC() string { return r.Transform.Interface.RenderEdgeC() }

// TCB summarises the trusted computing base of a build — the ablation
// evidence for the paper's shim-vs-LibOS argument (§5.4) and for proxy
// pruning (§5.2).
type TCB struct {
	// TrustedClasses and TrustedMethods count program elements compiled
	// into the enclave image.
	TrustedClasses int
	TrustedMethods int
	// TotalClasses and TotalMethods count the whole application.
	TotalClasses int
	TotalMethods int
	// ProxiesPruned counts proxy classes the points-to analysis removed
	// from the trusted image.
	ProxiesPruned int
}

// TCB computes the trusted-computing-base summary of a build.
func (r *BuildResult) TCB() TCB {
	tRep := r.TrustedImage.Report()
	uRep := r.UntrustedImage.Report()
	return TCB{
		TrustedClasses: tRep.ReachableClasses,
		TrustedMethods: tRep.CompiledMethods,
		TotalClasses:   tRep.TotalClasses + uRep.TotalClasses,
		TotalMethods:   tRep.TotalMethods + uRep.TotalMethods,
		ProxiesPruned:  tRep.ProxiesPruned,
	}
}

// prepare clones the program and registers the builtin neutral classes.
func prepare(prog *classmodel.Program) (*classmodel.Program, error) {
	p := prog.Clone()
	if err := classmodel.AddBuiltins(p); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return p, nil
}

// BuildConfig tunes the image-partitioning phase.
type BuildConfig struct {
	// TrustedReflection and UntrustedReflection are reflection roots
	// forced into the respective image (the reflect-config.json analog
	// of §2.2): methods with no static call edge that must stay
	// dynamically invokable.
	TrustedReflection   []classmodel.MethodRef
	UntrustedReflection []classmodel.MethodRef
}

// BuildPartitioned runs phases 2 and 3 of the pipeline.
func BuildPartitioned(prog *classmodel.Program) (*BuildResult, error) {
	return BuildPartitionedConfig(prog, BuildConfig{})
}

// BuildPartitionedConfig is BuildPartitioned with reflection roots.
func BuildPartitionedConfig(prog *classmodel.Program, cfg BuildConfig) (*BuildResult, error) {
	p, err := prepare(prog)
	if err != nil {
		return nil, err
	}
	tr, err := transform.Partition(p)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	tImg, err := image.BuildWithConfig(image.TrustedImage, tr.Trusted, image.Config{ExtraRoots: cfg.TrustedReflection})
	if err != nil {
		return nil, fmt.Errorf("core: trusted image: %w", err)
	}
	uImg, err := image.BuildWithConfig(image.UntrustedImage, tr.Untrusted, image.Config{ExtraRoots: cfg.UntrustedReflection})
	if err != nil {
		return nil, fmt.Errorf("core: untrusted image: %w", err)
	}
	return &BuildResult{Transform: tr, TrustedImage: tImg, UntrustedImage: uImg}, nil
}

// NewPartitionedWorld runs the full pipeline and returns the running
// world (phase 4) together with the build artefacts.
func NewPartitionedWorld(prog *classmodel.Program, opts world.Options) (*world.World, *BuildResult, error) {
	build, err := BuildPartitioned(prog)
	if err != nil {
		return nil, nil, err
	}
	w, err := world.NewPartitioned(opts, build.TrustedImage, build.UntrustedImage, build.Transform.Interface)
	if err != nil {
		return nil, nil, fmt.Errorf("core: %w", err)
	}
	return w, build, nil
}

// BuildUnpartitioned builds the whole (unannotated or annotated — the
// annotations are ignored) application into a single native image
// (§5.6: "Unpartitioned applications do not require annotations, hence no
// bytecode modifications are performed").
func BuildUnpartitioned(prog *classmodel.Program) (*image.Image, error) {
	p, err := prepare(prog)
	if err != nil {
		return nil, err
	}
	img, err := image.Build(image.UntrustedImage, p)
	if err != nil {
		return nil, fmt.Errorf("core: unpartitioned image: %w", err)
	}
	return img, nil
}

// NewUnpartitionedWorld builds a single-image world, inside the enclave
// (§5.6) or without SGX (the NoSGX baseline).
func NewUnpartitionedWorld(prog *classmodel.Program, opts world.Options, inEnclave bool) (*world.World, *image.Image, error) {
	img, err := BuildUnpartitioned(prog)
	if err != nil {
		return nil, nil, err
	}
	w, err := world.NewUnpartitioned(opts, img, inEnclave)
	if err != nil {
		return nil, nil, fmt.Errorf("core: %w", err)
	}
	return w, img, nil
}
