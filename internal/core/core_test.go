package core

import (
	"strings"
	"testing"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/demo"
	"montsalvat/internal/wire"
	"montsalvat/internal/world"
)

func TestBuildPartitionedArtefacts(t *testing.T) {
	build, err := BuildPartitioned(demo.MustBankProgram())
	if err != nil {
		t.Fatalf("BuildPartitioned: %v", err)
	}
	if build.TrustedImage == nil || build.UntrustedImage == nil {
		t.Fatal("missing images")
	}
	edl := build.EDL()
	for _, want := range []string{"enclave {", "trusted {", "untrusted {", "ecall_relay_Account", "ocall_relay_Person"} {
		if !strings.Contains(edl, want) {
			t.Fatalf("EDL missing %q:\n%s", want, edl)
		}
	}
	edgec := build.EdgeC()
	for _, want := range []string{"Isolate ctx", "getEnclaveIsolate()", "getHostIsolate()"} {
		if !strings.Contains(edgec, want) {
			t.Fatalf("EdgeC missing %q", want)
		}
	}
}

func TestBuildDoesNotMutateInput(t *testing.T) {
	prog := demo.MustBankProgram()
	before := len(prog.Classes())
	if _, err := BuildPartitioned(prog); err != nil {
		t.Fatal(err)
	}
	if got := len(prog.Classes()); got != before {
		t.Fatalf("input program grew from %d to %d classes (builtins leaked in)", before, got)
	}
	// The program is reusable: build again.
	if _, err := BuildPartitioned(prog); err != nil {
		t.Fatalf("second build: %v", err)
	}
}

func TestTCBAccounting(t *testing.T) {
	build, err := BuildPartitioned(demo.MustBankProgram())
	if err != nil {
		t.Fatal(err)
	}
	tcb := build.TCB()
	if tcb.TrustedClasses == 0 || tcb.TrustedMethods == 0 {
		t.Fatalf("empty TCB: %+v", tcb)
	}
	if tcb.TrustedClasses >= tcb.TotalClasses {
		t.Fatalf("TCB not smaller than total: %+v", tcb)
	}
	if tcb.ProxiesPruned == 0 {
		t.Fatalf("no proxies pruned: %+v", tcb)
	}
}

func TestBuildUnpartitioned(t *testing.T) {
	img, err := BuildUnpartitioned(demo.MustBankProgram())
	if err != nil {
		t.Fatal(err)
	}
	// No relays, no proxies in an unpartitioned image.
	for _, c := range img.Classes() {
		if c.Proxy {
			t.Fatalf("unpartitioned image contains proxy %s", c.Name)
		}
		for _, m := range c.Methods {
			if m.Relay {
				t.Fatalf("unpartitioned image contains relay %s.%s", c.Name, m.Name)
			}
		}
	}
}

func TestBuildRejectsInvalidPrograms(t *testing.T) {
	p := classmodel.NewProgram()
	c := classmodel.NewClass("C", classmodel.Trusted)
	if err := c.AddField(classmodel.Field{Name: "x", Kind: classmodel.FieldInt, Public: true}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddClass(c); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildPartitioned(p); err == nil {
		t.Fatal("accepted program violating encapsulation")
	}
	if _, err := BuildUnpartitioned(p); err == nil {
		t.Fatal("unpartitioned build accepted invalid program")
	}
}

func TestNewWorldsRunnable(t *testing.T) {
	w, build, err := NewPartitionedWorld(demo.MustBankProgram(), world.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if build == nil {
		t.Fatal("nil build result")
	}
	r, err := w.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(wire.List(wire.Int(75), wire.Int(50), wire.Int(1))) {
		t.Fatalf("result = %v", r)
	}
}

func TestProgramsWithNeutralHelperClasses(t *testing.T) {
	// A neutral application class (not builtin) used from both sides.
	p := demo.MustBankProgram()
	util := classmodel.NewClass("MathUtil", classmodel.Neutral)
	if err := util.AddMethod(&classmodel.Method{
		Name: "double", Static: true, Public: true,
		Params:  []classmodel.Param{{Name: "v", Kind: wire.KindInt}},
		Returns: wire.KindInt,
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			v, _ := args[0].AsInt()
			return wire.Int(v * 2), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddClass(util); err != nil {
		t.Fatal(err)
	}
	// Wire it into both a trusted and an untrusted method. The call edge
	// from main keeps MathUtil reachable in the untrusted image.
	mainC, _ := p.Class(demo.Main)
	mm, _ := mainC.Method(classmodel.MainMethodName)
	mm.Calls = append(mm.Calls, classmodel.MethodRef{Class: "MathUtil", Method: "double"})
	acct, _ := p.Class(demo.Account)
	if err := acct.AddMethod(&classmodel.Method{
		Name: "doubleBalance", Public: true, Returns: wire.KindInt,
		Calls: []classmodel.MethodRef{{Class: "MathUtil", Method: "double"}},
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			bal, err := env.GetField(self, "balance")
			if err != nil {
				return wire.Value{}, err
			}
			return env.CallStatic("MathUtil", "double", bal)
		},
	}); err != nil {
		t.Fatal(err)
	}

	w, _, err := NewPartitionedWorld(p, world.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.Exec(false, func(env classmodel.Env) error {
		// Neutral code runs locally in the untrusted runtime...
		v, err := env.CallStatic("MathUtil", "double", wire.Int(21))
		if err != nil {
			return err
		}
		if !v.Equal(wire.Int(42)) {
			t.Errorf("untrusted MathUtil.double = %v", v)
		}
		// ...and the same class runs inside the enclave when called from
		// a trusted method (no proxies for neutral classes).
		acct, err := env.New(demo.Account, wire.Str("N"), wire.Int(10))
		if err != nil {
			return err
		}
		d, err := env.Call(acct, "doubleBalance")
		if err != nil {
			return err
		}
		if !d.Equal(wire.Int(20)) {
			t.Errorf("trusted doubleBalance = %v", d)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReflectionRootsEndToEnd(t *testing.T) {
	// A method invoked only dynamically (no declared call edge) works
	// when listed as a reflection root and fails closed-world otherwise
	// (§2.2).
	// The hook lives on a NEUTRAL class: annotated classes keep all
	// public methods reachable through their relay entry points, but a
	// neutral method with no static call edge is pruned unless listed.
	build := func(withRoot bool) (*world.World, error) {
		p := demo.MustBankProgram()
		util := classmodel.NewClass("DynUtil", classmodel.Neutral)
		if err := util.AddMethod(&classmodel.Method{
			Name: "dynamicHook", Static: true, Public: true, Returns: wire.KindInt,
			Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
				return wire.Int(77), nil
			},
		}); err != nil {
			return nil, err
		}
		if err := p.AddClass(util); err != nil {
			return nil, err
		}
		cfg := BuildConfig{}
		if withRoot {
			cfg.UntrustedReflection = []classmodel.MethodRef{{Class: "DynUtil", Method: "dynamicHook"}}
		}
		res, err := BuildPartitionedConfig(p, cfg)
		if err != nil {
			return nil, err
		}
		return world.NewPartitioned(world.DefaultOptions(), res.TrustedImage, res.UntrustedImage, res.Transform.Interface)
	}

	// Without the root: pruned, closed-world violation at call time.
	w1, err := build(false)
	if err != nil {
		t.Fatal(err)
	}
	defer w1.Close()
	err = w1.Exec(false, func(env classmodel.Env) error {
		_, cerr := env.CallStatic("DynUtil", "dynamicHook")
		if cerr == nil {
			t.Error("pruned dynamic method was callable")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// With the root: always included, callable.
	w2, err := build(true)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	err = w2.Exec(false, func(env classmodel.Env) error {
		v, cerr := env.CallStatic("DynUtil", "dynamicHook")
		if cerr != nil {
			return cerr
		}
		if !v.Equal(wire.Int(77)) {
			t.Errorf("dynamicHook = %v", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
