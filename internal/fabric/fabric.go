package fabric

// fabric.go is the controller: it boots N primary shards and R warm
// standbys per shard inside one process, wires the replication channels
// (mutually attested, synchronous in the ack path), publishes the
// routing table, and drives the failure-handling verbs — KillShard
// captures the acked position of a dying primary, Promote recovers a
// standby against it. One signer and one platform secret span the
// fabric: every enclave carries the same MRSIGNER, so sealed state
// ships between them, while each World keeps its own measurement-bound
// attested endpoints.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"montsalvat/internal/core"
	"montsalvat/internal/sgx"
	"montsalvat/internal/telemetry"
)

// Options configures a Fabric.
type Options struct {
	// Shards is the number of primaries the keyspace is partitioned
	// over (>= 1).
	Shards int
	// Replicas is the number of warm standbys per shard (>= 0).
	Replicas int
	// Platform issues and verifies quotes for every enclave of the
	// fabric and for its clients. Defaults to a seeded platform.
	Platform *sgx.Platform
	// Telemetry, when set, receives montsalvat_fabric_* metrics.
	Telemetry *telemetry.Telemetry
	// Fleet, when set, is the fabric-wide observability plane: every
	// node gets a private shard-labeled metrics registry from it, while
	// all nodes share the fleet's tracer and event journal — one trace
	// ID follows a request across Worlds, and one totally-ordered
	// timeline records session, replication, and failover events. The
	// fleet registry also receives the montsalvat_fabric_* counters.
	Fleet *telemetry.Fleet
	// MaxSessions / MaxInFlight are passed through to each gateway
	// (zero means the serve defaults).
	MaxSessions int
	MaxInFlight int
	// PeerTimeout bounds peer handshakes (default 10s).
	PeerTimeout time.Duration
	// GroupCommit turns on the pipelined durable-write path: each
	// shard's manager batches concurrent appends into one sealed WAL
	// frame (persist group commit), the gateway journals through the
	// async hook, and replication moves off the ack path onto a
	// per-shard pump. A put acks only once its LSN is durable AND every
	// replica's acked watermark covers it — same guarantee as the
	// synchronous path, without a seal, a counter advance, and a ship
	// round per mutation.
	GroupCommit bool
	// CommitMaxRecords / CommitMaxDelay tune the persist commit window
	// (zero means the persist defaults: 64 records, no timed window).
	CommitMaxRecords int
	CommitMaxDelay   time.Duration
	// SyncFallbackAfter bounds how long an ack may wait on the
	// pipelined watermark before the shard ships synchronously on the
	// waiter's behalf (default 25ms). A stalled or paused replica
	// degrades that waiter to the fabric-v1 synchronous path instead of
	// losing or indefinitely delaying its ack.
	SyncFallbackAfter time.Duration
	// Logf receives diagnostics from every layer of the fabric.
	Logf func(format string, args ...any)
	// Signer, when set, replaces the freshly generated fabric signing
	// key. Signers memoize SIGSTRUCTs per measurement, so a shared
	// signer makes repeated fabric construction — the orderly
	// explorer rebuilds the fabric on every backtrack — pay RSA key
	// generation and signing once instead of per boot.
	Signer *sgx.Signer
	// Build, when set, is a prebuilt partitioned KV build whose images
	// every node's World loads instead of re-running the partitioning
	// transform and image build per node. Builds are deterministic and
	// images are immutable at run time (worlds already share them
	// across Kill/Restart), so sharing one build across nodes — and
	// across fabric incarnations — is safe.
	Build *core.BuildResult
}

// syncFallbackAfter resolves the watermark-wait bound.
func (f *Fabric) syncFallbackAfter() time.Duration {
	if f.opts.SyncFallbackAfter > 0 {
		return f.opts.SyncFallbackAfter
	}
	return 25 * time.Millisecond
}

// Stats are fabric-lifetime counters.
type Stats struct {
	Shards                  int
	Epoch                   uint64
	ShipRounds              uint64
	ShipBytes               uint64
	Promotions              uint64
	StalePromotionsRejected uint64
	PeerHandshakes          uint64
	// SyncFallbacks counts acks that timed out on the pipelined
	// watermark and were delivered by a synchronous ship instead.
	SyncFallbacks uint64
}

// Fabric is a running sharded deployment.
type Fabric struct {
	opts     Options
	platform *sgx.Platform
	signer   *sgx.Signer
	secret   sgx.PlatformSecret

	mu    sync.Mutex
	nodes map[int]*shardNode
	reps  map[int][]*replicaNode
	dead  []*shardNode // killed primaries, closed with the fabric

	table atomic.Value // Table

	shipRounds     atomic.Uint64
	shipBytes      atomic.Uint64
	promotions     atomic.Uint64
	staleRejected  atomic.Uint64
	peerHandshakes atomic.Uint64
	syncFallbacks  atomic.Uint64
}

// New boots the fabric: worlds, gateways, peer mesh, replication
// channels, routing table (epoch 1). On return every shard is serving
// and every replica holds a full copy of its primary's (empty) durable
// root.
func New(opts Options) (*Fabric, error) {
	if opts.Shards < 1 {
		return nil, errors.New("fabric: need at least one shard")
	}
	if opts.Replicas < 0 {
		return nil, errors.New("fabric: negative replica count")
	}
	platform := opts.Platform
	if platform == nil {
		platform = sgx.NewPlatformFromSeed([]byte("montsalvat-fabric"))
	}
	signer := opts.Signer
	if signer == nil {
		var err error
		signer, err = sgx.NewSigner()
		if err != nil {
			return nil, err
		}
	}
	secret, err := sgx.NewPlatformSecret()
	if err != nil {
		return nil, err
	}
	f := &Fabric{
		opts:     opts,
		platform: platform,
		signer:   signer,
		secret:   secret,
		nodes:    make(map[int]*shardNode),
		reps:     make(map[int][]*replicaNode),
	}
	f.table.Store(NewTable(0, nil))

	fail := func(err error) (*Fabric, error) {
		f.Close()
		return nil, err
	}

	for id := 0; id < opts.Shards; id++ {
		n, err := newShardNode(f, id)
		if err != nil {
			return fail(fmt.Errorf("fabric: shard %d: %w", id, err))
		}
		f.nodes[id] = n
	}
	f.publishTable()
	f.refreshPeerMesh()

	for id := 0; id < opts.Shards; id++ {
		n := f.nodes[id]
		for j := 0; j < opts.Replicas; j++ {
			r, err := newReplicaNode(f, id, j, n.w.Enclave().Measurement())
			if err != nil {
				return fail(fmt.Errorf("fabric: shard %d replica %d: %w", id, j, err))
			}
			f.reps[id] = append(f.reps[id], r)
			conn, err := DialPeer(
				r.ln.Addr().String(),
				PeerIdentity{Platform: platform, Enclave: n.w.Enclave(), Origin: ShardOrigin(id)},
				replicaOrigin(id, j),
				r.measurement(),
				opts.PeerTimeout,
			)
			if err != nil {
				return fail(fmt.Errorf("fabric: shard %d replica %d channel: %w", id, j, err))
			}
			sh, err := newShipper(n, conn)
			if err != nil {
				conn.Close()
				return fail(fmt.Errorf("fabric: shard %d replica %d inventory: %w", id, j, err))
			}
			if err := n.attachShipper(sh); err != nil {
				return fail(fmt.Errorf("fabric: shard %d replica %d initial ship: %w", id, j, err))
			}
		}
	}

	if opts.Telemetry != nil {
		opts.Telemetry.Registry().RegisterCollector(f.collectMetrics)
	}
	if ft := opts.Fleet.Telemetry(); ft != nil {
		ft.Registry().RegisterCollector(f.collectMetrics)
	}
	return f, nil
}

// nodeTel returns the per-node telemetry slice for a fabric node (nil
// without a Fleet): a private registry plus the fleet-shared tracer and
// event journal.
func (f *Fabric) nodeTel(origin string) *telemetry.Telemetry {
	return f.opts.Fleet.Node(origin)
}

// fleetEvents returns the fleet-wide event journal (nil without a
// Fleet).
func (f *Fabric) fleetEvents() *telemetry.EventLog {
	return f.opts.Fleet.Telemetry().Events()
}

// publishTable rebuilds the routing table from the live node set at the
// next epoch. Caller must not hold f.mu... it takes it.
func (f *Fabric) publishTable() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.publishTableLocked()
}

func (f *Fabric) publishTableLocked() {
	cur := f.Table()
	infos := make([]ShardInfo, 0, len(f.nodes))
	for id, n := range f.nodes {
		infos = append(infos, ShardInfo{ID: id, Addr: n.ln.Addr().String(), Measurement: n.srv.Measurement()})
	}
	f.table.Store(NewTable(cur.Epoch+1, infos))
	f.fleetEvents().Emit(telemetry.EventEpochBump, "fabric", 0,
		"epoch %d -> %d (%d shards)", cur.Epoch, cur.Epoch+1, len(infos))
}

// refreshPeerMesh re-installs, on every live shard's peer host, the set
// of sibling origins allowed to open cross-shard channels.
func (f *Fabric) refreshPeerMesh() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.refreshPeerMeshLocked()
}

func (f *Fabric) refreshPeerMeshLocked() {
	peers := make(map[string][32]byte, len(f.nodes))
	for id, n := range f.nodes {
		peers[ShardOrigin(id)] = n.w.Enclave().Measurement()
	}
	for _, n := range f.nodes {
		n.peerHost.SetPeers(peers)
	}
}

// Table returns the current routing table. Fabric implements the
// Router's TableSource.
func (f *Fabric) Table() Table {
	return f.table.Load().(Table)
}

// Client builds a routing client over this fabric's topology. With a
// Fleet configured and no explicit RouterConfig.Telemetry, the router
// joins the fleet plane: its route spans and redirect events land in
// the shared tracer and journal.
func (f *Fabric) Client(cfg RouterConfig) *Router {
	if cfg.Telemetry == nil {
		cfg.Telemetry = f.opts.Fleet.Telemetry()
	}
	return NewRouter(f, f.platform, cfg)
}

// Platform returns the attestation platform shared by the fabric.
func (f *Fabric) Platform() *sgx.Platform { return f.platform }

// node returns the live primary for a shard.
func (f *Fabric) node(id int) (*shardNode, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, ok := f.nodes[id]
	if !ok {
		return nil, fmt.Errorf("fabric: no live primary for shard %d", id)
	}
	return n, nil
}

// Checkpoint forces a checkpoint on one shard (rotating its WAL
// lineage and bumping its counter) and ships the result.
func (f *Fabric) Checkpoint(id int) error {
	n, err := f.node(id)
	if err != nil {
		return err
	}
	if err := n.manager().Checkpoint(); err != nil {
		return err
	}
	return n.shipAll(telemetry.SpanContext{})
}

// PauseReplication stops (or resumes) shipping from a shard to its
// replicas — the operational failure mode that produces a stale
// replica, exposed so tests and drills can exercise the rollback
// rejection.
func (f *Fabric) PauseReplication(id int, paused bool) error {
	n, err := f.node(id)
	if err != nil {
		return err
	}
	n.mu.Lock()
	shippers := append([]*shipper(nil), n.shippers...)
	n.mu.Unlock()
	for _, sh := range shippers {
		sh.pause(paused)
	}
	return nil
}

// KillShard fails a primary: its enclave dies mid-service and its
// endpoints close. Returns the Expectation a promoted successor must
// meet. The shard stays dark (clients get connection errors, siblings
// keep redirecting to it) until Promote installs a successor.
func (f *Fabric) KillShard(id int) (Expectation, error) {
	f.mu.Lock()
	n, ok := f.nodes[id]
	if !ok {
		f.mu.Unlock()
		return Expectation{}, fmt.Errorf("fabric: no live primary for shard %d", id)
	}
	delete(f.nodes, id)
	f.dead = append(f.dead, n)
	f.mu.Unlock()
	exp := n.kill()
	f.fleetEvents().Emit(telemetry.EventKill, ShardOrigin(id), 0,
		"primary killed at stamp %d lsn %d", exp.Stamp, exp.LSN)
	return exp, nil
}

// Promote installs the next standby of a shard as its primary, provided
// it recovers to at least the expectation captured at KillShard. On a
// stale standby the promotion is refused (ErrStaleReplica), the standby
// is discarded, and the shard stays dark — the next standby (if any)
// can be tried.
func (f *Fabric) Promote(id int, expect Expectation) error {
	f.mu.Lock()
	if _, live := f.nodes[id]; live {
		f.mu.Unlock()
		return fmt.Errorf("fabric: shard %d still has a live primary", id)
	}
	list := f.reps[id]
	if len(list) == 0 {
		f.mu.Unlock()
		return fmt.Errorf("fabric: shard %d has no standby to promote", id)
	}
	r := list[0]
	f.reps[id] = list[1:]
	f.mu.Unlock()

	start := time.Now()
	f.fleetEvents().Emit(telemetry.EventPromoteBegin, ShardOrigin(id), 0,
		"promoting replica %d, need stamp %d lsn %d", r.idx, expect.Stamp, expect.LSN)
	n, err := r.promote(expect)
	if err != nil {
		if errors.Is(err, ErrStaleReplica) {
			f.staleRejected.Add(1)
		}
		r.w.Close()
		return err
	}
	dur := time.Since(start)
	f.mu.Lock()
	f.nodes[id] = n
	// promote-commit strictly precedes the epoch-bump publishTableLocked
	// emits: the failover timeline reads kill -> promote-begin ->
	// promote-commit -> epoch-bump.
	f.fleetEvents().Emit(telemetry.EventPromoteCommit, ShardOrigin(id), 0,
		"replica %d promoted in %v", r.idx, dur.Round(time.Millisecond))
	f.publishTableLocked()
	f.refreshPeerMeshLocked()
	f.mu.Unlock()
	f.promotions.Add(1)
	f.opts.Fleet.Telemetry().Registry().
		Histogram("montsalvat_fabric_promotion_duration_ns").ObserveDuration(dur)
	return nil
}

// PeerDial opens an attested cross-shard channel from one live shard to
// another — the enclave-to-enclave path cross-shard handles travel.
func (f *Fabric) PeerDial(from, to int) (*PeerConn, error) {
	src, err := f.node(from)
	if err != nil {
		return nil, err
	}
	dst, err := f.node(to)
	if err != nil {
		return nil, err
	}
	return DialPeer(
		dst.peerLn.Addr().String(),
		PeerIdentity{Platform: f.platform, Enclave: src.w.Enclave(), Origin: ShardOrigin(from)},
		ShardOrigin(to),
		dst.w.Enclave().Measurement(),
		f.opts.PeerTimeout,
	)
}

// ShardBusyCycles snapshots each live primary's charged virtual-cycle
// total — the simulation's cost currency. The scaling benchmark models
// fabric capacity from the busiest shard's cycle delta, so the numbers
// reflect the partitioning itself rather than how many host cores the
// single-process harness happens to get.
func (f *Fabric) ShardBusyCycles() map[int]int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[int]int64, len(f.nodes))
	for id, n := range f.nodes {
		out[id] = n.w.Clock().Total()
	}
	return out
}

// Stats snapshots the fabric counters.
func (f *Fabric) Stats() Stats {
	t := f.Table()
	return Stats{
		Shards:                  len(t.Shards),
		Epoch:                   t.Epoch,
		ShipRounds:              f.shipRounds.Load(),
		ShipBytes:               f.shipBytes.Load(),
		Promotions:              f.promotions.Load(),
		StalePromotionsRejected: f.staleRejected.Load(),
		PeerHandshakes:          f.peerHandshakes.Load(),
		SyncFallbacks:           f.syncFallbacks.Load(),
	}
}

func (f *Fabric) collectMetrics(reg *telemetry.Registry) {
	t := f.Table()
	reg.Gauge("montsalvat_fabric_shards").Set(int64(len(t.Shards)))
	reg.Gauge("montsalvat_fabric_epoch").Set(int64(t.Epoch))
	reg.Counter("montsalvat_fabric_ship_rounds_total").Set(f.shipRounds.Load())
	reg.Counter("montsalvat_fabric_ship_bytes_total").Set(f.shipBytes.Load())
	reg.Counter("montsalvat_fabric_promotions_total").Set(f.promotions.Load())
	reg.Counter("montsalvat_fabric_stale_promotions_rejected_total").Set(f.staleRejected.Load())
	reg.Counter("montsalvat_fabric_peer_handshakes_total").Set(f.peerHandshakes.Load())
	reg.Counter("montsalvat_fabric_sync_fallbacks_total").Set(f.syncFallbacks.Load())
}

// Close drains every gateway and tears the whole fabric down.
func (f *Fabric) Close() error {
	f.mu.Lock()
	nodes := f.nodes
	reps := f.reps
	dead := f.dead
	f.nodes = make(map[int]*shardNode)
	f.reps = make(map[int][]*replicaNode)
	f.dead = nil
	f.mu.Unlock()

	var first error
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, n := range nodes {
		if err := n.shutdown(ctx); err != nil && first == nil {
			first = err
		}
	}
	for _, list := range reps {
		for _, r := range list {
			r.close()
		}
	}
	for _, n := range dead {
		n.w.Close()
	}
	return first
}
