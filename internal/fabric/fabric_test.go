package fabric

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"montsalvat/internal/serve"
	"montsalvat/internal/telemetry"
	"montsalvat/internal/wire"
)

// TestTableDeterministicAndBalanced: the ring is a pure function of the
// shard IDs, and vnodes keep the key distribution from collapsing onto
// one shard.
func TestTableDeterministicAndBalanced(t *testing.T) {
	shards := []ShardInfo{{ID: 0}, {ID: 1}, {ID: 2}, {ID: 3}}
	a := NewTable(1, shards)
	b := NewTable(9, []ShardInfo{{ID: 3, Addr: "elsewhere"}, {ID: 1}, {ID: 0}, {ID: 2}})
	counts := make(map[int]int)
	for i := 0; i < 4096; i++ {
		key := fmt.Sprintf("user:%05d", i)
		oa, ob := a.Owner(key), b.Owner(key)
		if oa != ob {
			t.Fatalf("ring not deterministic: key %q -> %d vs %d", key, oa, ob)
		}
		counts[oa]++
	}
	for id := 0; id < 4; id++ {
		if counts[id] < 4096/4/4 {
			t.Fatalf("shard %d owns only %d of 4096 keys: %v", id, counts[id], counts)
		}
	}
	if (Table{}).Owner("k") != -1 {
		t.Fatal("empty table should own nothing")
	}
}

// TestFabricRoutingAndRedirect boots a 4-shard fabric, round-trips a
// keyspace through the Router, and verifies that a deliberately
// misrouted direct session gets the typed WrongShardError redirect
// carrying the true owner.
func TestFabricRoutingAndRedirect(t *testing.T) {
	f, err := New(Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	client := f.Client(RouterConfig{})
	defer client.Close()
	const n = 96
	for i := 0; i < n; i++ {
		if err := client.Put(fmt.Sprintf("user:%04d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		v, ok, err := client.Get(fmt.Sprintf("user:%04d", i))
		if err != nil || !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("get %d = (%q, %v, %v)", i, v, ok, err)
		}
	}
	if _, ok, err := client.Get("user:missing"); err != nil || ok {
		t.Fatalf("missing key = (%v, %v), want absent", ok, err)
	}
	if st := client.Stats(); st.Redirects != 0 {
		t.Fatalf("well-routed client took %d redirects", st.Redirects)
	}

	// A client that ignores the ring and sends everything to shard 0
	// must be redirected to the true owner of a foreign key.
	tbl := f.Table()
	var foreign string
	for i := 0; ; i++ {
		foreign = fmt.Sprintf("foreign:%04d", i)
		if tbl.Owner(foreign) != 0 {
			break
		}
	}
	info, _ := tbl.Shard(0)
	c, err := serve.Dial(info.Addr, serve.ClientConfig{Platform: f.Platform(), Measurement: info.Measurement})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h, err := c.Bind("kv")
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Call(h, "put", wire.Str(foreign), wire.Str("x"))
	var ws *serve.WrongShardError
	if !errors.As(err, &ws) {
		t.Fatalf("misrouted put: %v, want WrongShardError", err)
	}
	if ws.Owner != tbl.Owner(foreign) || ws.Epoch != tbl.Epoch {
		t.Fatalf("redirect = owner %d epoch %d, want owner %d epoch %d", ws.Owner, ws.Epoch, tbl.Owner(foreign), tbl.Epoch)
	}
	// The rejected write must not have landed anywhere.
	if _, ok, err := client.Get(foreign); err != nil || ok {
		t.Fatalf("rejected write visible: (%v, %v)", ok, err)
	}
}

// TestPeerChannelNamespaces exercises the attested enclave-to-enclave
// channel: cross-shard calls work through origin-tagged handles, and a
// handle presented under the wrong shard origin is refused instead of
// resolving.
func TestPeerChannelNamespaces(t *testing.T) {
	f, err := New(Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	conn, err := f.PeerDial(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	h, err := conn.BindPeer("kv")
	if err != nil {
		t.Fatal(err)
	}
	if h.Origin != ShardOrigin(1) {
		t.Fatalf("peer handle origin %q, want %q", h.Origin, ShardOrigin(1))
	}
	if _, err := conn.CallPeer(h, "put", wire.Str("peer-key"), wire.Str("peer-val")); err != nil {
		t.Fatalf("cross-shard put: %v", err)
	}
	v, err := conn.CallPeer(h, "get", wire.Str("peer-key"))
	if err != nil {
		t.Fatalf("cross-shard get: %v", err)
	}
	if s, _ := v.AsStr(); s != "peer-val" {
		t.Fatalf("cross-shard get = %q", s)
	}

	// The same numeric handle under a different shard origin must not
	// resolve: handles are pinned to the namespace that issued them.
	smuggled := PeerHandle{Origin: ShardOrigin(0), Class: h.Class, ID: h.ID}
	if _, err := conn.CallPeer(smuggled, "get", wire.Str("peer-key")); !errors.Is(err, ErrPeerForeignHandle) {
		t.Fatalf("smuggled handle: %v, want ErrPeerForeignHandle", err)
	}

	// A dialer claiming an origin the host does not know is refused
	// during the handshake, before any operation.
	dst, err := f.node(1)
	if err != nil {
		t.Fatal(err)
	}
	src, err := f.node(0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = DialPeer(
		dst.peerLn.Addr().String(),
		PeerIdentity{Platform: f.Platform(), Enclave: src.w.Enclave(), Origin: "shard-99"},
		ShardOrigin(1),
		dst.w.Enclave().Measurement(),
		0,
	)
	if err == nil {
		t.Fatal("bogus origin accepted")
	}

	// A dialer expecting the wrong measurement must refuse the channel.
	var wrong [32]byte
	wrong[0] = 0xff
	_, err = DialPeer(
		dst.peerLn.Addr().String(),
		PeerIdentity{Platform: f.Platform(), Enclave: src.w.Enclave(), Origin: ShardOrigin(0)},
		ShardOrigin(1),
		wrong,
		0,
	)
	if !errors.Is(err, ErrPeerHandshake) {
		t.Fatalf("wrong measurement: %v, want ErrPeerHandshake", err)
	}
}

// TestFabricFailover is the failover drill: concurrent load, primary
// killed mid-stream, standby promoted — every acknowledged write must
// be readable afterwards, and the routing table must have moved on.
func TestFabricFailover(t *testing.T) {
	f, err := New(Options{Shards: 2, Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const (
		writers  = 4
		perPhase = 24
	)
	var ackedMu sync.Mutex
	acked := map[string]string{}
	load := func(phase int) {
		var wg sync.WaitGroup
		for wr := 0; wr < writers; wr++ {
			wg.Add(1)
			go func(wr int) {
				defer wg.Done()
				client := f.Client(RouterConfig{})
				defer client.Close()
				for i := 0; i < perPhase; i++ {
					k := fmt.Sprintf("p%d:w%d:k%04d", phase, wr, i)
					v := fmt.Sprintf("v%d-%d-%d", phase, wr, i)
					if err := client.Put(k, v); err != nil {
						continue // unacked writes may fail around the kill; they carry no promise
					}
					ackedMu.Lock()
					acked[k] = v
					ackedMu.Unlock()
				}
			}(wr)
		}
		wg.Wait()
	}

	load(1)
	if err := f.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	load(2) // these writes live in the WAL tail past the checkpoint

	epochBefore := f.Table().Epoch
	exp, err := f.KillShard(1)
	if err != nil {
		t.Fatal(err)
	}
	load(3) // shard 1's keys fail while it is dark; shard 0 keeps serving
	if err := f.Promote(1, exp); err != nil {
		t.Fatalf("promote: %v", err)
	}
	if got := f.Table().Epoch; got <= epochBefore {
		t.Fatalf("epoch did not advance on promotion: %d -> %d", epochBefore, got)
	}
	load(4) // the promoted replica takes writes

	verify := f.Client(RouterConfig{})
	defer verify.Close()
	ackedMu.Lock()
	defer ackedMu.Unlock()
	if len(acked) == 0 {
		t.Fatal("no writes were acked")
	}
	for k, want := range acked {
		v, ok, err := verify.Get(k)
		if err != nil || !ok || v != want {
			t.Fatalf("acked write lost: %q = (%q, %v, %v), want %q", k, v, ok, err, want)
		}
	}
	st := f.Stats()
	if st.Promotions != 1 {
		t.Fatalf("promotions = %d, want 1", st.Promotions)
	}
	if st.ShipRounds == 0 || st.ShipBytes == 0 {
		t.Fatalf("no shipping recorded: %+v", st)
	}
}

// TestStalePromotionRejected manufactures the rollback scenario: the
// replica stops receiving shipments, the primary acknowledges more
// writes and checkpoints (bumping its counter), then dies. Promoting
// the stale replica must be refused.
func TestStalePromotionRejected(t *testing.T) {
	f, err := New(Options{Shards: 1, Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	client := f.Client(RouterConfig{})
	defer client.Close()
	for i := 0; i < 8; i++ {
		if err := client.Put(fmt.Sprintf("pre:%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}

	// Replication silently stops; the primary keeps acking and seals a
	// fresh checkpoint lineage the replica never sees.
	if err := f.PauseReplication(0, true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := client.Put(fmt.Sprintf("post:%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Checkpoint(0); err != nil {
		t.Fatal(err)
	}

	exp, err := f.KillShard(0)
	if err != nil {
		t.Fatal(err)
	}
	err = f.Promote(0, exp)
	if !errors.Is(err, ErrStaleReplica) {
		t.Fatalf("stale promotion: %v, want ErrStaleReplica", err)
	}
	var stale *StaleReplicaError
	if !errors.As(err, &stale) {
		t.Fatalf("stale promotion error is not typed: %v", err)
	}
	if stale.HaveLSN >= stale.WantLSN && stale.HaveStamp >= stale.WantStamp {
		t.Fatalf("rejection carries non-stale positions: %+v", stale)
	}
	if st := f.Stats(); st.StalePromotionsRejected != 1 || st.Promotions != 0 {
		t.Fatalf("stats = %+v, want 1 stale rejection, 0 promotions", st)
	}
}

// TestFabricTracePropagation follows one trace ID across Worlds: a
// routed put starts a root span on the router, the owning shard's
// gateway continues it, and the synchronous checkpoint ship carries it
// to the replica — so the fleet dump must hold spans from at least
// three distinct nodes under one TraceID. A direct peer call with an
// injected context must likewise surface on the callee shard.
func TestFabricTracePropagation(t *testing.T) {
	fleet := telemetry.NewFleet(telemetry.Options{TraceSampleRate: 1, TraceBuffer: 4096, EventBuffer: 1024})
	f, err := New(Options{Shards: 2, Replicas: 1, Fleet: fleet})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	client := f.Client(RouterConfig{})
	defer client.Close()
	for i := 0; i < 16; i++ {
		if err := client.Put(fmt.Sprintf("trace:%04d", i), "v"); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}

	// Group spans by trace and find one that crossed Worlds end to end:
	// router root, shard dispatch, replica ship-apply.
	byTrace := map[uint64]map[string]bool{}
	names := map[uint64]map[string]bool{}
	for _, sp := range fleet.Telemetry().Tracer().Dump() {
		if byTrace[sp.TraceID] == nil {
			byTrace[sp.TraceID] = map[string]bool{}
			names[sp.TraceID] = map[string]bool{}
		}
		byTrace[sp.TraceID][sp.Node] = true
		names[sp.TraceID][sp.Name] = true
	}
	var full uint64
	for id, nodes := range byTrace {
		hasRouter, hasShard, hasReplica := false, false, false
		for n := range nodes {
			switch {
			case n == "router":
				hasRouter = true
			case strings.Contains(n, "/replica-"):
				hasReplica = true
			case strings.HasPrefix(n, "shard-"):
				hasShard = true
			}
		}
		if hasRouter && hasShard && hasReplica {
			full = id
			break
		}
	}
	if full == 0 {
		t.Fatalf("no trace spans router+shard+replica; traces seen: %v", byTrace)
	}
	if !names[full]["ship-apply"] {
		t.Fatalf("cross-World trace %d has no replica ship-apply span: %v", full, names[full])
	}

	// Peer-channel leg: a context injected into CallPeer surfaces as a
	// peer-call span on the callee shard under the same trace.
	conn, err := f.PeerDial(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	h, err := conn.BindPeer("kv")
	if err != nil {
		t.Fatal(err)
	}
	root := fleet.Telemetry().Tracer().StartRoot("peer-test")
	sc := root.Context()
	if _, err := conn.CallPeerCtx(sc, h, "put", wire.Str("peer-trace"), wire.Str("v")); err != nil {
		t.Fatalf("traced peer call: %v", err)
	}
	root.Finish(nil)
	foundPeer := false
	for _, sp := range fleet.Telemetry().Tracer().Dump() {
		if sp.TraceID == sc.TraceID && sp.Node == ShardOrigin(1) && strings.HasPrefix(sp.Name, "peer-call") {
			foundPeer = true
			if sp.ParentID != sc.SpanID {
				t.Fatalf("peer-call span parent %d, want injected span %d", sp.ParentID, sc.SpanID)
			}
		}
	}
	if !foundPeer {
		t.Fatalf("no peer-call span on %s under trace %d", ShardOrigin(1), sc.TraceID)
	}
}

// TestFabricEventTimeline kills a primary and promotes its replica,
// then checks the shared journal reconstructs the failover in the
// contract order: kill, promote-begin, promote-commit, epoch-bump,
// each with a strictly larger Seq than the previous step.
func TestFabricEventTimeline(t *testing.T) {
	fleet := telemetry.NewFleet(telemetry.Options{EventBuffer: 4096})
	f, err := New(Options{Shards: 2, Replicas: 1, Fleet: fleet})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	client := f.Client(RouterConfig{})
	defer client.Close()
	for i := 0; i < 16; i++ {
		if err := client.Put(fmt.Sprintf("tl:%04d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}

	exp, err := f.KillShard(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Promote(1, exp); err != nil {
		t.Fatal(err)
	}

	events := fleet.Telemetry().Events().Dump()
	seq := func(typ telemetry.EventType, after uint64) uint64 {
		for _, ev := range events {
			if ev.Type == typ && ev.Seq > after && ev.Node == ShardOrigin(1) {
				return ev.Seq
			}
		}
		// Epoch bumps are fabric-scoped, not shard-scoped.
		for _, ev := range events {
			if ev.Type == typ && ev.Seq > after {
				return ev.Seq
			}
		}
		t.Fatalf("journal has no %s event after seq %d: %+v", typ, after, events)
		return 0
	}
	kill := seq(telemetry.EventKill, 0)
	begin := seq(telemetry.EventPromoteBegin, kill)
	commit := seq(telemetry.EventPromoteCommit, begin)
	bump := seq(telemetry.EventEpochBump, commit)
	if !(kill < begin && begin < commit && commit < bump) {
		t.Fatalf("failover timeline out of order: kill %d, begin %d, commit %d, bump %d", kill, begin, commit, bump)
	}

	// The journal also carried replication traffic for the load phase.
	ships := 0
	for _, ev := range events {
		if ev.Type == telemetry.EventShip {
			ships++
		}
	}
	if ships == 0 {
		t.Fatal("journal recorded no ship events despite replicated writes")
	}
}
