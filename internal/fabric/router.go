package fabric

// router.go is the client side of the partition scheme: a Router holds
// one attested session per shard (dialed lazily, verified against that
// shard's measurement from the routing table) and maps each key through
// the consistent-hash ring. Topology is discovered, not configured: on
// a WrongShardError redirect or a dead connection the router refreshes
// its table from the source and retries toward the owner, under a
// bounded redirect budget so a stale or disagreeing topology degrades
// into a typed error instead of a loop.

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"montsalvat/internal/serve"
	"montsalvat/internal/sgx"
	"montsalvat/internal/telemetry"
	"montsalvat/internal/wire"
)

// ErrRedirectBudget reports a request that could not land after the
// configured number of redirects/refreshes.
var ErrRedirectBudget = errors.New("fabric: redirect budget exhausted")

// TableSource supplies the current routing table; *Fabric implements
// it in-process, and a remote deployment would implement it over a
// control channel.
type TableSource interface {
	Table() Table
}

// RouterConfig tunes a Router.
type RouterConfig struct {
	// MaxRedirects bounds how many redirect-or-refresh hops one request
	// may take (default 3).
	MaxRedirects int
	// DialTimeout / RequestTimeout are passed to each shard session.
	DialTimeout    time.Duration
	RequestTimeout time.Duration
	// Telemetry, when set, starts a root span per routed operation and
	// propagates its context to the owning shard — the client end of
	// every cross-shard trace. Redirect hops are annotated as child
	// spans carrying the old and new owner and the table epoch, and the
	// retry call continues the originating trace rather than starting a
	// new one.
	Telemetry *telemetry.Telemetry
}

// RouterStats counts routing events.
type RouterStats struct {
	// Requests is the number of operations attempted.
	Requests uint64
	// Redirects counts wrong-shard rejections received.
	Redirects uint64
	// Refreshes counts routing-table refreshes taken.
	Refreshes uint64
}

// Router is a sharded KV client.
type Router struct {
	src      TableSource
	platform *sgx.Platform
	cfg      RouterConfig
	tracer   *telemetry.Tracer
	events   *telemetry.EventLog

	mu    sync.Mutex
	table Table
	conns map[int]*routerConn

	requests  atomic.Uint64
	redirects atomic.Uint64
	refreshes atomic.Uint64
}

type routerConn struct {
	c    *serve.Client
	kv   serve.Handle
	addr string
}

// NewRouter builds a router over src. Shard sessions are dialed on
// first use.
func NewRouter(src TableSource, platform *sgx.Platform, cfg RouterConfig) *Router {
	if cfg.MaxRedirects <= 0 {
		cfg.MaxRedirects = 3
	}
	return &Router{
		src:      src,
		platform: platform,
		cfg:      cfg,
		tracer:   cfg.Telemetry.Tracer(),
		events:   cfg.Telemetry.Events(),
		table:    src.Table(),
		conns:    make(map[int]*routerConn),
	}
}

// Put routes a write to the owner of key.
func (r *Router) Put(key, val string) error {
	_, err := r.do("put", key, wire.Str(key), wire.Str(val))
	return err
}

// Get routes a read to the owner of key. ok is false when the key is
// absent.
func (r *Router) Get(key string) (val string, ok bool, err error) {
	v, err := r.do("get", key, wire.Str(key))
	if err != nil {
		return "", false, err
	}
	if v.IsNull() {
		return "", false, nil
	}
	s, _ := v.AsStr()
	return s, true, nil
}

// Stats snapshots routing counters.
func (r *Router) Stats() RouterStats {
	return RouterStats{
		Requests:  r.requests.Load(),
		Redirects: r.redirects.Load(),
		Refreshes: r.refreshes.Load(),
	}
}

// Close tears down every shard session.
func (r *Router) Close() {
	r.mu.Lock()
	conns := r.conns
	r.conns = make(map[int]*routerConn)
	r.mu.Unlock()
	for _, rc := range conns {
		rc.c.Close()
	}
}

func (r *Router) currentTable() Table {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.table
}

// refresh re-reads the table from the source and drops sessions whose
// shard moved (new address or measurement).
func (r *Router) refresh() Table {
	t := r.src.Table()
	r.refreshes.Add(1)
	var stale []*routerConn
	r.mu.Lock()
	if t.Epoch >= r.table.Epoch {
		r.table = t
		for id, rc := range r.conns {
			if s, ok := t.Shard(id); !ok || s.Addr != rc.addr {
				stale = append(stale, rc)
				delete(r.conns, id)
			}
		}
	} else {
		t = r.table
	}
	r.mu.Unlock()
	for _, rc := range stale {
		rc.c.Close()
	}
	return t
}

// conn returns (dialing if needed) the session for a shard under the
// given table view.
func (r *Router) conn(t Table, id int) (*routerConn, error) {
	r.mu.Lock()
	if rc, ok := r.conns[id]; ok {
		r.mu.Unlock()
		return rc, nil
	}
	r.mu.Unlock()

	info, ok := t.Shard(id)
	if !ok {
		return nil, fmt.Errorf("fabric: shard %d not in routing table (epoch %d)", id, t.Epoch)
	}
	c, err := serve.Dial(info.Addr, serve.ClientConfig{
		Platform:       r.platform,
		Measurement:    info.Measurement,
		DialTimeout:    r.cfg.DialTimeout,
		RequestTimeout: r.cfg.RequestTimeout,
	})
	if err != nil {
		return nil, err
	}
	h, err := c.Bind("kv")
	if err != nil {
		c.Close()
		return nil, err
	}
	rc := &routerConn{c: c, kv: h, addr: info.Addr}
	r.mu.Lock()
	if cur, ok := r.conns[id]; ok {
		// Lost a dial race; keep the established session.
		r.mu.Unlock()
		c.Close()
		return cur, nil
	}
	r.conns[id] = rc
	r.mu.Unlock()
	return rc, nil
}

// drop discards a session after a transport failure.
func (r *Router) drop(id int, rc *routerConn) {
	r.mu.Lock()
	if cur, ok := r.conns[id]; ok && cur == rc {
		delete(r.conns, id)
	}
	r.mu.Unlock()
	rc.c.Close()
}

// isTransportErr reports whether err is a session transport failure (a
// killed gateway poisons its clients with the raw read error) rather
// than a typed response: those sessions are dead, not wrong.
func isTransportErr(err error) bool {
	var ne net.Error
	return errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) ||
		errors.As(err, &ne)
}

// do routes one operation: hash the key, call the owner, and on a
// redirect or dead session refresh the table and retry — at most
// MaxRedirects hops. A sampled operation is one root span whose context
// rides every hop, so the retry after a WrongShardError joins the
// originating trace instead of starting a fresh one; each redirect is a
// child span annotated with the old and new owner and the table epoch.
func (r *Router) do(method, key string, args ...wire.Value) (v wire.Value, err error) {
	r.requests.Add(1)
	sp := r.tracer.StartRoot("route " + method)
	sp.SetNode("router")
	defer func() { sp.Finish(err) }()
	t := r.currentTable()
	forced := -1 // owner hint from the last redirect, when the refreshed table still disagrees
	var lastErr error
	for attempt := 0; attempt <= r.cfg.MaxRedirects; attempt++ {
		owner := t.Owner(key)
		if forced >= 0 {
			owner = forced
			forced = -1
		}
		if owner < 0 {
			return wire.Value{}, fmt.Errorf("fabric: empty routing table (epoch %d)", t.Epoch)
		}
		rc, err := r.conn(t, owner)
		if err != nil {
			lastErr = err
			t = r.refresh()
			continue
		}
		v, err := rc.c.CallCtx(sp.Context(), 0, rc.kv, method, args...)
		if err == nil {
			return v, nil
		}
		lastErr = err
		var ws *serve.WrongShardError
		switch {
		case errors.As(err, &ws):
			// The gateway knows better than our table: refresh, and if
			// the refreshed table still routes to the rejecting shard,
			// follow the redirect hint directly.
			r.redirects.Add(1)
			hop := r.tracer.StartChild(sp, "redirect")
			hop.SetNode("router")
			hop.SetRedirect(owner, ws.Owner, ws.Epoch)
			hop.Finish(nil)
			r.events.Emit(telemetry.EventRedirect, "router", sp.Context().TraceID,
				"%s %q: owner %d -> %d epoch %d", method, key, owner, ws.Owner, ws.Epoch)
			t = r.refresh()
			if t.Owner(key) == owner && ws.Owner != owner {
				forced = ws.Owner
			}
		case errors.Is(err, serve.ErrClosed), errors.Is(err, serve.ErrRecovering), isTransportErr(err):
			// Dead or recovering session: drop it and rediscover.
			r.drop(owner, rc)
			t = r.refresh()
		default:
			return wire.Value{}, err
		}
	}
	return wire.Value{}, fmt.Errorf("%w (%d hops): %v", ErrRedirectBudget, r.cfg.MaxRedirects, lastErr)
}
