package fabric

// peer.go implements attested enclave-to-enclave channels: the serve
// handshake (X25519 key exchange quoted by an SGX enclave) applied
// symmetrically. Where a serve session authenticates only the server —
// the client is an untrusted remote party — a peer channel requires
// quotes from BOTH ends, each bound to the same key-exchange transcript,
// so two enclaves of the fabric mutually attest before any replication
// payload or cross-shard handle crosses the wire.
//
// Handshake (I = initiator, R = responder):
//
//	I→R  hello   (I's X25519 public key, nonce, I's origin)   plaintext
//	R→I  attest  (R's X25519 public key, quote over the
//	              transcript hash of both keys, the nonce and
//	              both origins)                                plaintext
//	I→R  prove   (I's quote over a domain-separated digest
//	              of the same transcript)                      sealed
//	R→I  ready                                                 sealed
//
// Both origins are folded into the transcript, so each quote attests
// not just the channel keys but the shard identities the two ends
// claim — a channel cannot be spliced between shards after the fact.
// The initiator's report data is domain-separated from the responder's
// (peerProveLabel) so neither quote can be replayed as the other.
//
// After the handshake the channel carries length-prefixed AES-256-GCM
// frames with direction-tagged counter nonces (replay and reordering
// protection), exactly like a serve session, but with a larger frame
// budget: replication deltas ship whole checkpoints.

import (
	"bytes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"montsalvat/internal/persist"
	"montsalvat/internal/sgx"
	"montsalvat/internal/telemetry"
	"montsalvat/internal/wire"
)

// Peer protocol identifiers.
const (
	peerMsgHello  = "msv/peer-hello/1"
	peerMsgAttest = "msv/peer-attest/1"
	peerMsgProve  = "msv/peer-prove/1"
	peerMsgReady  = "msv/peer-ready/1"

	// peerKxLabel salts the shared transcript hash (the responder's
	// report data); peerProveLabel domain-separates the initiator's
	// report data from it; peerKeyLabel salts channel-key derivation.
	peerKxLabel    = "msv/peer-kx/1"
	peerProveLabel = "msv/peer-prove/1-rd"
	peerKeyLabel   = "msv/peer-key/1"
)

// Peer operations and statuses.
const (
	peerOpHave = "have"
	peerOpShip = "ship"
	peerOpBind = "bind"
	peerOpCall = "call"

	peerStatusOK      = "ok"
	peerStatusError   = "error"
	peerStatusForeign = "foreign-handle"
)

// maxPeerFrame bounds one peer frame. Peer channels carry whole
// checkpoint files, so the budget is far larger than a serve request
// frame — but still bounded, because the pre-handshake bytes are
// adversarial.
const maxPeerFrame = 16 << 20

// Typed peer-channel errors.
var (
	// ErrPeerHandshake covers mutual-attestation failures: a quote that
	// does not verify, is not bound to this channel's transcript, or a
	// peer claiming an origin the channel was not configured for.
	ErrPeerHandshake = errors.New("fabric: peer handshake failed")
	// ErrPeerClosed reports use of a closed peer channel.
	ErrPeerClosed = errors.New("fabric: peer channel closed")
	// ErrPeerForeignHandle rejects a handle presented with the wrong
	// origin shard: the cross-shard namespace check refused to resolve
	// it.
	ErrPeerForeignHandle = errors.New("fabric: handle from foreign shard namespace")
	// ErrPeerRejected carries a peer-side execution failure.
	ErrPeerRejected = errors.New("fabric: peer rejected request")
)

// PeerIdentity is one end of a peer channel: the platform that issues
// and verifies quotes, the local enclave being attested, and the shard
// origin this end speaks for.
type PeerIdentity struct {
	Platform *sgx.Platform
	Enclave  *sgx.Enclave
	Origin   string
}

// PeerHandle names an object another shard exported over a peer
// channel. Origin pins the handle to the shard namespace that issued
// it: presenting the handle anywhere else fails the LookupFrom check.
type PeerHandle struct {
	Origin string
	Class  string
	ID     int64
}

// ---- frame I/O and channel crypto ------------------------------------

func writePeerFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxPeerFrame {
		return fmt.Errorf("fabric: peer frame of %d bytes exceeds limit", len(payload))
	}
	// Header and payload go out in one Write: one syscall per frame.
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(payload)))
	copy(buf[4:], payload)
	_, err := w.Write(buf)
	return err
}

func readPeerFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxPeerFrame {
		return nil, fmt.Errorf("fabric: peer frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// peerCipher seals post-handshake peer frames; the same
// direction-tagged counter-nonce scheme as a serve session (initiator
// frames dir 1, responder frames dir 2).
type peerCipher struct {
	aead    cipher.AEAD
	sendDir byte
	recvDir byte
	sendCtr uint64
	recvCtr uint64
}

const (
	dirInitiator byte = 1
	dirResponder byte = 2
)

func newPeerCipher(key [32]byte, initiator bool) (*peerCipher, error) {
	aead, err := sgx.NewChannelAEAD(key)
	if err != nil {
		return nil, err
	}
	c := &peerCipher{aead: aead, sendDir: dirResponder, recvDir: dirInitiator}
	if initiator {
		c.sendDir, c.recvDir = dirInitiator, dirResponder
	}
	return c, nil
}

func peerNonce(dir byte, ctr uint64) []byte {
	nonce := make([]byte, 12)
	nonce[0] = dir
	binary.BigEndian.PutUint64(nonce[4:], ctr)
	return nonce
}

func (c *peerCipher) seal(plain []byte) []byte {
	nonce := peerNonce(c.sendDir, c.sendCtr)
	c.sendCtr++
	return c.aead.Seal(nil, nonce, plain, nil)
}

func (c *peerCipher) open(sealed []byte) ([]byte, error) {
	nonce := peerNonce(c.recvDir, c.recvCtr)
	plain, err := c.aead.Open(nil, nonce, sealed, nil)
	if err != nil {
		return nil, fmt.Errorf("%w: frame auth: %v", ErrPeerHandshake, err)
	}
	c.recvCtr++
	return plain, nil
}

// peerTranscript binds both key-exchange keys, the nonce, and both
// claimed origins. Used verbatim as the responder's quote report data.
func peerTranscript(initPub, respPub, nonce []byte, initOrigin, respOrigin string) []byte {
	h := sha256.New()
	h.Write([]byte(peerKxLabel))
	h.Write(initPub)
	h.Write(respPub)
	h.Write(nonce)
	h.Write([]byte(initOrigin))
	h.Write([]byte{0})
	h.Write([]byte(respOrigin))
	return h.Sum(nil)
}

// peerProofData is the initiator's report data: the transcript under a
// distinct label, so the two quotes of one handshake are never
// interchangeable.
func peerProofData(transcript []byte) []byte {
	h := sha256.New()
	h.Write([]byte(peerProveLabel))
	h.Write(transcript)
	return h.Sum(nil)
}

func peerKey(shared, transcript []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte(peerKeyLabel))
	h.Write(shared)
	h.Write(transcript)
	var key [32]byte
	copy(key[:], h.Sum(nil))
	return key
}

// ---- handshake messages ----------------------------------------------

func encodeQuoteFields(q sgx.Quote) []wire.Value {
	return []wire.Value{
		wire.Bytes(q.Measurement[:]),
		wire.Bytes(q.MRSigner[:]),
		wire.Bytes(q.ReportData),
		wire.Bytes(q.MAC[:]),
	}
}

func decodeQuoteFields(vs []wire.Value) (sgx.Quote, error) {
	var q sgx.Quote
	if len(vs) != 4 {
		return q, fmt.Errorf("%w: malformed quote", ErrPeerHandshake)
	}
	meas, _ := vs[0].AsBytes()
	signer, _ := vs[1].AsBytes()
	report, _ := vs[2].AsBytes()
	mac, _ := vs[3].AsBytes()
	if len(meas) != 32 || len(signer) != 32 || len(mac) != 32 {
		return q, fmt.Errorf("%w: malformed quote", ErrPeerHandshake)
	}
	copy(q.Measurement[:], meas)
	copy(q.MRSigner[:], signer)
	copy(q.MAC[:], mac)
	q.ReportData = report
	return q, nil
}

// ---- PeerConn --------------------------------------------------------

// PeerConn is one attested channel between two enclaves. The initiator
// side drives request/response exchanges (Have/Ship/BindPeer/CallPeer);
// the responder side is driven by a PeerHost's serve loop. Exchanges
// are serialised — one request in flight per channel — which is all the
// replication shipper needs and keeps the cipher counters trivially
// ordered.
type PeerConn struct {
	conn         net.Conn
	localOrigin  string
	remoteOrigin string
	closed       atomic.Bool

	mu   sync.Mutex
	ciph *peerCipher
}

// LocalOrigin returns the shard identity this end presented.
func (p *PeerConn) LocalOrigin() string { return p.localOrigin }

// RemoteOrigin returns the shard identity the attested peer presented.
func (p *PeerConn) RemoteOrigin() string { return p.remoteOrigin }

// Close tears the channel down. Safe to call concurrently with a
// blocked send/recv (the underlying conn close unblocks it).
func (p *PeerConn) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	return p.conn.Close()
}

// send seals and writes one frame. The caller must be the channel's
// single sender (roundTrip's lock, or the host serve loop).
func (p *PeerConn) send(plain []byte) error {
	if p.closed.Load() {
		return ErrPeerClosed
	}
	return writePeerFrame(p.conn, p.ciph.seal(plain))
}

// recv reads and opens one frame. The caller must be the channel's
// single reader.
func (p *PeerConn) recv() ([]byte, error) {
	if p.closed.Load() {
		return nil, ErrPeerClosed
	}
	sealed, err := readPeerFrame(p.conn)
	if err != nil {
		return nil, err
	}
	return p.ciph.open(sealed)
}

// roundTrip performs one serialised request/response exchange.
func (p *PeerConn) roundTrip(req []byte) ([]wire.Value, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.send(req); err != nil {
		return nil, err
	}
	resp, err := p.recv()
	if err != nil {
		return nil, err
	}
	vs, err := wire.UnmarshalList(resp)
	if err != nil || len(vs) < 1 {
		return nil, fmt.Errorf("%w: malformed peer response", ErrPeerRejected)
	}
	status, _ := vs[0].AsStr()
	switch status {
	case peerStatusOK:
		return vs[1:], nil
	case peerStatusForeign:
		msg := ""
		if len(vs) > 1 {
			msg, _ = vs[1].AsStr()
		}
		return nil, fmt.Errorf("%w: %s", ErrPeerForeignHandle, msg)
	default:
		msg := ""
		if len(vs) > 1 {
			msg, _ = vs[1].AsStr()
		}
		return nil, fmt.Errorf("%w: %s", ErrPeerRejected, msg)
	}
}

// DialPeer opens and mutually attests a channel to the peer at addr.
// expect is the measurement the remote enclave must prove;
// remoteOrigin is the shard identity it must claim (and quote).
func DialPeer(addr string, local PeerIdentity, remoteOrigin string, expect [32]byte, timeout time.Duration) (*PeerConn, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(timeout)
	_ = conn.SetDeadline(deadline)

	fail := func(format string, args ...any) (*PeerConn, error) {
		conn.Close()
		return nil, fmt.Errorf(format, args...)
	}

	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return fail("%w: keygen: %v", ErrPeerHandshake, err)
	}
	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		return fail("%w: nonce: %v", ErrPeerHandshake, err)
	}
	initPub := priv.PublicKey().Bytes()
	hello := wire.MarshalList([]wire.Value{
		wire.Str(peerMsgHello), wire.Bytes(initPub), wire.Bytes(nonce), wire.Str(local.Origin),
	})
	if err := writePeerFrame(conn, hello); err != nil {
		return fail("%w: hello: %v", ErrPeerHandshake, err)
	}

	buf, err := readPeerFrame(conn)
	if err != nil {
		return fail("%w: attest: %v", ErrPeerHandshake, err)
	}
	vs, err := wire.UnmarshalList(buf)
	if err != nil || len(vs) != 6 {
		return fail("%w: malformed attest", ErrPeerHandshake)
	}
	if magic, _ := vs[0].AsStr(); magic != peerMsgAttest {
		return fail("%w: unexpected message %q", ErrPeerHandshake, magic)
	}
	respPub, _ := vs[1].AsBytes()
	quote, err := decodeQuoteFields(vs[2:])
	if err != nil {
		return fail("%v", err)
	}
	transcript := peerTranscript(initPub, respPub, nonce, local.Origin, remoteOrigin)
	if err := local.Platform.Verify(quote, expect); err != nil {
		return fail("%w: responder quote: %v", ErrPeerHandshake, err)
	}
	if !bytes.Equal(quote.ReportData, transcript) {
		return fail("%w: responder quote not bound to this channel", ErrPeerHandshake)
	}

	peerPub, err := ecdh.X25519().NewPublicKey(respPub)
	if err != nil {
		return fail("%w: responder key: %v", ErrPeerHandshake, err)
	}
	shared, err := priv.ECDH(peerPub)
	if err != nil {
		return fail("%w: ecdh: %v", ErrPeerHandshake, err)
	}
	ciph, err := newPeerCipher(peerKey(shared, transcript), true)
	if err != nil {
		return fail("%w: cipher: %v", ErrPeerHandshake, err)
	}

	proof, err := local.Platform.Quote(local.Enclave, peerProofData(transcript))
	if err != nil {
		return fail("%w: local quote: %v", ErrPeerHandshake, err)
	}
	prove := wire.MarshalList(append([]wire.Value{wire.Str(peerMsgProve)}, encodeQuoteFields(proof)...))
	if err := writePeerFrame(conn, ciph.seal(prove)); err != nil {
		return fail("%w: prove: %v", ErrPeerHandshake, err)
	}

	sealed, err := readPeerFrame(conn)
	if err != nil {
		return fail("%w: ready: %v", ErrPeerHandshake, err)
	}
	plain, err := ciph.open(sealed)
	if err != nil {
		return fail("%v", err)
	}
	rv, err := wire.UnmarshalList(plain)
	if err != nil || len(rv) != 1 {
		return fail("%w: malformed ready", ErrPeerHandshake)
	}
	if magic, _ := rv[0].AsStr(); magic != peerMsgReady {
		return fail("%w: unexpected message %q", ErrPeerHandshake, magic)
	}

	_ = conn.SetDeadline(time.Time{})
	return &PeerConn{conn: conn, ciph: ciph, localOrigin: local.Origin, remoteOrigin: remoteOrigin}, nil
}

// AcceptPeer runs the responder side of the handshake over an accepted
// connection. peers maps each shard origin this host accepts channels
// from to the measurement that origin's enclave must prove; an
// initiator claiming any other origin is refused before the responder
// quotes anything. The claimed origin is folded into the attested
// transcript, so the initiator's own quote certifies the claim.
func AcceptPeer(conn net.Conn, local PeerIdentity, peers map[string][32]byte, timeout time.Duration) (*PeerConn, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	_ = conn.SetDeadline(time.Now().Add(timeout))

	buf, err := readPeerFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("%w: hello: %v", ErrPeerHandshake, err)
	}
	vs, err := wire.UnmarshalList(buf)
	if err != nil || len(vs) != 4 {
		return nil, fmt.Errorf("%w: malformed hello", ErrPeerHandshake)
	}
	if magic, _ := vs[0].AsStr(); magic != peerMsgHello {
		return nil, fmt.Errorf("%w: unexpected message %q", ErrPeerHandshake, magic)
	}
	initPub, _ := vs[1].AsBytes()
	nonce, _ := vs[2].AsBytes()
	claimed, _ := vs[3].AsStr()
	if len(initPub) == 0 || len(nonce) == 0 {
		return nil, fmt.Errorf("%w: malformed hello", ErrPeerHandshake)
	}
	expect, ok := peers[claimed]
	if !ok {
		return nil, fmt.Errorf("%w: peer claims unknown origin %q", ErrPeerHandshake, claimed)
	}

	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("%w: keygen: %v", ErrPeerHandshake, err)
	}
	respPub := priv.PublicKey().Bytes()
	transcript := peerTranscript(initPub, respPub, nonce, claimed, local.Origin)
	quote, err := local.Platform.Quote(local.Enclave, transcript)
	if err != nil {
		return nil, fmt.Errorf("%w: local quote: %v", ErrPeerHandshake, err)
	}
	attest := wire.MarshalList(append([]wire.Value{wire.Str(peerMsgAttest), wire.Bytes(respPub)}, encodeQuoteFields(quote)...))
	if err := writePeerFrame(conn, attest); err != nil {
		return nil, fmt.Errorf("%w: attest: %v", ErrPeerHandshake, err)
	}

	peerPub, err := ecdh.X25519().NewPublicKey(initPub)
	if err != nil {
		return nil, fmt.Errorf("%w: initiator key: %v", ErrPeerHandshake, err)
	}
	shared, err := priv.ECDH(peerPub)
	if err != nil {
		return nil, fmt.Errorf("%w: ecdh: %v", ErrPeerHandshake, err)
	}
	ciph, err := newPeerCipher(peerKey(shared, transcript), false)
	if err != nil {
		return nil, fmt.Errorf("%w: cipher: %v", ErrPeerHandshake, err)
	}

	sealed, err := readPeerFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("%w: prove: %v", ErrPeerHandshake, err)
	}
	plain, err := ciph.open(sealed)
	if err != nil {
		return nil, err
	}
	pv, err := wire.UnmarshalList(plain)
	if err != nil || len(pv) != 5 {
		return nil, fmt.Errorf("%w: malformed prove", ErrPeerHandshake)
	}
	if magic, _ := pv[0].AsStr(); magic != peerMsgProve {
		return nil, fmt.Errorf("%w: unexpected message %q", ErrPeerHandshake, magic)
	}
	proof, err := decodeQuoteFields(pv[1:])
	if err != nil {
		return nil, err
	}
	if err := local.Platform.Verify(proof, expect); err != nil {
		return nil, fmt.Errorf("%w: initiator quote: %v", ErrPeerHandshake, err)
	}
	if !bytes.Equal(proof.ReportData, peerProofData(transcript)) {
		return nil, fmt.Errorf("%w: initiator quote not bound to this channel", ErrPeerHandshake)
	}

	ready := wire.MarshalList([]wire.Value{wire.Str(peerMsgReady)})
	if err := writePeerFrame(conn, ciph.seal(ready)); err != nil {
		return nil, fmt.Errorf("%w: ready: %v", ErrPeerHandshake, err)
	}

	_ = conn.SetDeadline(time.Time{})
	return &PeerConn{conn: conn, ciph: ciph, localOrigin: local.Origin, remoteOrigin: claimed}, nil
}

// ---- trace-context wire helpers --------------------------------------

// traceVals renders a span context as the two trailing request fields
// every traced peer operation carries. A zero context encodes as two
// zeros — "no trace" — so untraced channels pay two varint zeros, not a
// separate wire format.
func traceVals(sc telemetry.SpanContext) []wire.Value {
	return []wire.Value{wire.Int(int64(sc.TraceID)), wire.Int(int64(sc.SpanID))}
}

// traceFromVals decodes the two trailing trace fields (missing or
// malformed fields decode as the zero context, keeping the host
// tolerant of older encoders).
func traceFromVals(vs []wire.Value) telemetry.SpanContext {
	if len(vs) < 2 {
		return telemetry.SpanContext{}
	}
	tid, _ := vs[0].AsInt()
	sid, _ := vs[1].AsInt()
	return telemetry.SpanContext{TraceID: uint64(tid), SpanID: uint64(sid)}
}

// ---- initiator-side operations ---------------------------------------

// Have asks the peer for its durable-root inventory (file → size), the
// basis for an incremental ReplicaDelta.
func (p *PeerConn) Have() (map[string]int64, error) {
	res, err := p.roundTrip(wire.MarshalList([]wire.Value{wire.Str(peerOpHave)}))
	if err != nil {
		return nil, err
	}
	if len(res) != 1 {
		return nil, fmt.Errorf("%w: have arity", ErrPeerRejected)
	}
	entries, ok := res[0].AsList()
	if !ok {
		return nil, fmt.Errorf("%w: have payload", ErrPeerRejected)
	}
	have := make(map[string]int64, len(entries))
	for _, e := range entries {
		pair, ok := e.AsList()
		if !ok || len(pair) != 2 {
			return nil, fmt.Errorf("%w: have entry", ErrPeerRejected)
		}
		name, _ := pair[0].AsStr()
		size, _ := pair[1].AsInt()
		have[name] = size
	}
	return have, nil
}

// Ship delivers one replication delta; the peer applies it to its
// durable root and acknowledges with the stamp and LSN it now holds.
func (p *PeerConn) Ship(d persist.Delta) (stamp, lastLSN uint64, err error) {
	return p.ShipCtx(telemetry.SpanContext{}, d)
}

// ShipCtx is Ship carrying the shipping request's trace context, so the
// replica's apply span joins the trace that triggered the ship (the
// client put whose ack is waiting on this delta).
func (p *PeerConn) ShipCtx(sc telemetry.SpanContext, d persist.Delta) (stamp, lastLSN uint64, err error) {
	req := wire.MarshalList(append([]wire.Value{
		wire.Str(peerOpShip), wire.Bytes(persist.EncodeDelta(d)),
	}, traceVals(sc)...))
	res, err := p.roundTrip(req)
	if err != nil {
		return 0, 0, err
	}
	if len(res) != 2 {
		return 0, 0, fmt.Errorf("%w: ship arity", ErrPeerRejected)
	}
	s, _ := res[0].AsInt()
	l, _ := res[1].AsInt()
	return uint64(s), uint64(l), nil
}

// BindPeer resolves a named export of the peer shard into a handle in
// the peer's origin-tagged namespace.
func (p *PeerConn) BindPeer(name string) (PeerHandle, error) {
	res, err := p.roundTrip(wire.MarshalList([]wire.Value{wire.Str(peerOpBind), wire.Str(name)}))
	if err != nil {
		return PeerHandle{}, err
	}
	if len(res) != 1 {
		return PeerHandle{}, fmt.Errorf("%w: bind arity", ErrPeerRejected)
	}
	class, id, ok := res[0].AsRef()
	if !ok {
		return PeerHandle{}, fmt.Errorf("%w: bind payload", ErrPeerRejected)
	}
	return PeerHandle{Origin: p.remoteOrigin, Class: class, ID: id}, nil
}

// CallPeer invokes a method on a peer handle. The handle's origin
// travels with the request: the peer resolves it with LookupFrom, so a
// handle issued by a different shard's namespace is refused with
// ErrPeerForeignHandle rather than resolving to an unrelated object.
// Ref results come back as handles in the peer's namespace.
func (p *PeerConn) CallPeer(h PeerHandle, method string, args ...wire.Value) (wire.Value, error) {
	return p.CallPeerCtx(telemetry.SpanContext{}, h, method, args...)
}

// CallPeerCtx is CallPeer carrying the caller's trace context: the host
// shard continues sc's trace across the peer channel, so a cross-shard
// call chain shares one trace ID end to end.
func (p *PeerConn) CallPeerCtx(sc telemetry.SpanContext, h PeerHandle, method string, args ...wire.Value) (wire.Value, error) {
	req := wire.MarshalList(append([]wire.Value{
		wire.Str(peerOpCall), wire.Str(h.Origin), wire.Int(h.ID), wire.Str(method), wire.List(args...),
	}, traceVals(sc)...))
	res, err := p.roundTrip(req)
	if err != nil {
		return wire.Value{}, err
	}
	if len(res) != 1 {
		return wire.Value{}, fmt.Errorf("%w: call arity", ErrPeerRejected)
	}
	return res[0], nil
}
