package fabric

// shipper.go drives checkpoint shipping for one primary→replica pair:
// it owns the attested peer channel and the locally tracked inventory
// of what the replica holds, and pushes incremental ReplicaDeltas —
// called synchronously from the gateway's Journal hook, so replication
// sits inside the ack path. A paused shipper (test and operations hook)
// silently skips rounds: that is exactly how a replica goes stale, and
// what the promotion-time rollback check exists to catch.
//
// Each ship round is instrumented on the primary's registry under the
// montsalvat_persist_ship_* family (bytes shipped, wall-clock latency,
// per-replica failures) and, when the triggering request was traced,
// recorded as a child span of that request — the ack path's replication
// cost is visible per-trace, not just in aggregate.

import (
	"sync"
	"time"

	"montsalvat/internal/persist"
	"montsalvat/internal/telemetry"
)

type shipper struct {
	node *shardNode
	conn *PeerConn

	// Shipping instruments, cached off the node's registry (nil-safe:
	// a node without telemetry ships with zero overhead past a branch).
	bytesShipped *telemetry.Counter
	latency      *telemetry.Histogram
	failures     *telemetry.Counter

	mu     sync.Mutex
	have   map[string]int64
	paused bool
}

// newShipper wraps a freshly attested channel, seeding the inventory
// from the replica's own answer so re-attachment after a partial ship
// stays incremental.
func newShipper(node *shardNode, conn *PeerConn) (*shipper, error) {
	have, err := conn.Have()
	if err != nil {
		return nil, err
	}
	reg := node.tel.Registry()
	return &shipper{
		node:         node,
		conn:         conn,
		have:         have,
		bytesShipped: reg.Counter("montsalvat_persist_ship_bytes_total"),
		latency:      reg.Histogram("montsalvat_persist_ship_latency_ns"),
		failures:     reg.Counter("montsalvat_persist_ship_failures_total", "replica", conn.RemoteOrigin()),
	}, nil
}

// ship pushes one delta round, continuing sc's trace (the journaled
// request waiting on this ack) into a per-replica ship span. Lock
// order: the manager's mutex is taken inside ReplicaDelta while sh.mu
// is held; journal holds neither when calling (Append has already
// released it), so there is no inversion.
func (sh *shipper) ship(sc telemetry.SpanContext) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.paused {
		return nil
	}
	d, err := sh.node.manager().ReplicaDelta(sh.have)
	if err != nil {
		sh.failures.Inc()
		return err
	}
	if d.Empty() {
		return nil
	}
	sp := sh.node.tel.Tracer().StartRemote(sc, "ship "+sh.conn.RemoteOrigin())
	sp.SetNode(ShardOrigin(sh.node.id))
	sp.SetSealedBytes(d.Bytes())
	start := time.Now()
	if _, _, err := sh.conn.ShipCtx(sp.Context(), d); err != nil {
		sh.failures.Inc()
		sp.Finish(err)
		return err
	}
	sh.latency.ObserveDuration(time.Since(start))
	sh.bytesShipped.Add(uint64(d.Bytes()))
	sp.Finish(nil)
	persist.UpdateHave(sh.have, d)
	sh.node.fab.shipRounds.Add(1)
	sh.node.fab.shipBytes.Add(uint64(d.Bytes()))
	sh.node.tel.Events().Emit(telemetry.EventShip, ShardOrigin(sh.node.id), sc.TraceID,
		"%d bytes to %s", d.Bytes(), sh.conn.RemoteOrigin())
	return nil
}

// pause stops (or resumes) shipping without tearing the channel down.
func (sh *shipper) pause(v bool) {
	sh.mu.Lock()
	sh.paused = v
	sh.mu.Unlock()
}

func (sh *shipper) close() {
	sh.conn.Close()
}
