package fabric

// shipper.go drives checkpoint shipping for one primary→replica pair:
// it owns the attested peer channel and the locally tracked inventory
// of what the replica holds, and pushes incremental ReplicaDeltas —
// called synchronously from the gateway's Journal hook, so replication
// sits inside the ack path. A paused shipper (test and operations hook)
// silently skips rounds: that is exactly how a replica goes stale, and
// what the promotion-time rollback check exists to catch.

import (
	"sync"

	"montsalvat/internal/persist"
)

type shipper struct {
	node *shardNode
	conn *PeerConn

	mu     sync.Mutex
	have   map[string]int64
	paused bool
}

// newShipper wraps a freshly attested channel, seeding the inventory
// from the replica's own answer so re-attachment after a partial ship
// stays incremental.
func newShipper(node *shardNode, conn *PeerConn) (*shipper, error) {
	have, err := conn.Have()
	if err != nil {
		return nil, err
	}
	return &shipper{node: node, conn: conn, have: have}, nil
}

// ship pushes one delta round. Lock order: the manager's mutex is taken
// inside ReplicaDelta while sh.mu is held; journal holds neither when
// calling (Append has already released it), so there is no inversion.
func (sh *shipper) ship() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.paused {
		return nil
	}
	d, err := sh.node.manager().ReplicaDelta(sh.have)
	if err != nil {
		return err
	}
	if d.Empty() {
		return nil
	}
	if _, _, err := sh.conn.Ship(d); err != nil {
		return err
	}
	persist.UpdateHave(sh.have, d)
	sh.node.fab.shipRounds.Add(1)
	sh.node.fab.shipBytes.Add(uint64(d.Bytes()))
	return nil
}

// pause stops (or resumes) shipping without tearing the channel down.
func (sh *shipper) pause(v bool) {
	sh.mu.Lock()
	sh.paused = v
	sh.mu.Unlock()
}

func (sh *shipper) close() {
	sh.conn.Close()
}
