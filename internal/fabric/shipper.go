package fabric

// shipper.go drives checkpoint shipping for one primary→replica pair:
// it owns the attested peer channel and the locally tracked inventory
// of what the replica holds, and pushes incremental ReplicaDeltas. With
// group commit off the gateway's Journal hook calls it synchronously,
// so replication sits inside the ack path; with group commit on the
// shard's replication pump drives it off the ack path and acks gate on
// the acked-LSN watermark instead. A paused shipper (test and
// operations hook) silently skips rounds: that is exactly how a
// replica goes stale, and what the promotion-time rollback check
// exists to catch.
//
// Locking: ioMu serialises whole ship rounds (delta capture, the
// network round-trip, the inventory update) so concurrent callers —
// the pump and a fallback ship — never interleave deltas out of order.
// The tiny mu guards only the paused flag, so pause/resume (and the
// pausedNow check at the top of a round) never wait behind a network
// round-trip. ackedLSN is the replica's replication watermark: the
// highest primary LSN this replica has durably applied, advanced
// monotonically after every successful (or provably empty) round.
//
// Each ship round is instrumented on the primary's registry under the
// montsalvat_persist_ship_* family (bytes shipped, wall-clock latency,
// per-replica failures) and, when the triggering request was traced,
// recorded as a child span of that request — the ack path's replication
// cost is visible per-trace, not just in aggregate.

import (
	"sync/atomic"
	"time"

	"montsalvat/internal/lockrank"
	"montsalvat/internal/persist"
	"montsalvat/internal/telemetry"
)

type shipper struct {
	node *shardNode
	conn *PeerConn

	// Shipping instruments, cached off the node's registry (nil-safe:
	// a node without telemetry ships with zero overhead past a branch).
	bytesShipped *telemetry.Counter
	latency      *telemetry.Histogram
	failures     *telemetry.Counter

	// ioMu serialises ship rounds and guards have. Never held while
	// taking mu; held across the network round-trip by design (rounds
	// must not interleave), which is why paused lives under its own
	// lock.
	ioMu lockrank.Mutex
	have map[string]int64

	// mu guards only paused.
	mu     lockrank.Mutex
	paused bool

	// ackedLSN is the highest primary LSN known durably applied at the
	// replica — the input to the shard's replication watermark. CAS
	// keeps it monotonic even if a slow round finishes after a newer
	// one.
	ackedLSN atomic.Uint64
}

// newShipper wraps a freshly attested channel, seeding the inventory
// from the replica's own answer so re-attachment after a partial ship
// stays incremental.
func newShipper(node *shardNode, conn *PeerConn) (*shipper, error) {
	have, err := conn.Have()
	if err != nil {
		return nil, err
	}
	reg := node.tel.Registry()
	sh := &shipper{
		node:         node,
		conn:         conn,
		have:         have,
		bytesShipped: reg.Counter("montsalvat_persist_ship_bytes_total"),
		latency:      reg.Histogram("montsalvat_persist_ship_latency_ns"),
		failures:     reg.Counter("montsalvat_persist_ship_failures_total", "replica", conn.RemoteOrigin()),
	}
	sh.ioMu.SetRank(lockrank.RankShipIO, "fabric.shipper.ioMu")
	sh.mu.SetRank(lockrank.RankShipState, "fabric.shipper.mu")
	return sh, nil
}

// ship pushes one delta round, continuing sc's trace (the journaled
// request or commit group waiting on this) into a per-replica ship
// span. Lock order: the node's manager pointer is resolved (under
// n.mu) before sh.ioMu, because n.mu ranks above ioMu in the
// hierarchy; the manager's own mutex is then taken inside
// ReplicaDelta while ioMu is held. Callers hold neither n.mu nor the
// manager's mutex when calling.
func (sh *shipper) ship(sc telemetry.SpanContext) error {
	if sh.pausedNow() {
		return nil
	}
	mgr := sh.node.manager()
	sh.ioMu.Lock()
	defer sh.ioMu.Unlock()
	d, err := mgr.ReplicaDelta(sh.have)
	if err != nil {
		sh.failures.Inc()
		return err
	}
	if d.Empty() {
		// Nothing to move: the replica already held everything up to
		// the cut — the watermark still advances.
		sh.noteAcked(d.LastLSN)
		return nil
	}
	sp := sh.node.tel.Tracer().StartRemote(sc, "ship "+sh.conn.RemoteOrigin())
	sp.SetNode(ShardOrigin(sh.node.id))
	sp.SetSealedBytes(d.Bytes())
	start := time.Now()
	if _, _, err := sh.conn.ShipCtx(sp.Context(), d); err != nil {
		sh.failures.Inc()
		sp.Finish(err)
		return err
	}
	sh.latency.ObserveDuration(time.Since(start))
	sh.bytesShipped.Add(uint64(d.Bytes()))
	sp.Finish(nil)
	persist.UpdateHave(sh.have, d)
	sh.noteAcked(d.LastLSN)
	sh.node.fab.shipRounds.Add(1)
	sh.node.fab.shipBytes.Add(uint64(d.Bytes()))
	sh.node.tel.Events().Emit(telemetry.EventShip, ShardOrigin(sh.node.id), sc.TraceID,
		"%d bytes to %s", d.Bytes(), sh.conn.RemoteOrigin())
	return nil
}

// noteAcked advances the replication watermark monotonically.
func (sh *shipper) noteAcked(lsn uint64) {
	for {
		cur := sh.ackedLSN.Load()
		if lsn <= cur || sh.ackedLSN.CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// acked returns the watermark: every primary LSN <= acked() is durably
// applied at this replica.
func (sh *shipper) acked() uint64 { return sh.ackedLSN.Load() }

// pause stops (or resumes) shipping without tearing the channel down.
func (sh *shipper) pause(v bool) {
	sh.mu.Lock()
	sh.paused = v
	sh.mu.Unlock()
}

func (sh *shipper) pausedNow() bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.paused
}

func (sh *shipper) close() {
	sh.conn.Close()
}
