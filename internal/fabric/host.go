package fabric

// host.go is the responder side of a peer channel: an accept loop that
// mutually attests each inbound connection (AcceptPeer) and then serves
// peer operations — durable-root inventory and delta application for
// replication, bind/call for cross-shard object access. Each accepted
// channel owns an origin-tagged registry.Namespace: every handle the
// host issues over the channel is pinned to the host shard's identity,
// and calls resolve handles with LookupFrom, so a handle minted by a
// different shard (or an unauthenticated guess) is refused as foreign
// instead of resolving to whatever object happens to wear the same
// number here.

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/persist"
	"montsalvat/internal/registry"
	"montsalvat/internal/telemetry"
	"montsalvat/internal/wire"
	"montsalvat/internal/world"
)

// PeerHost serves peer-channel operations for one fabric node.
type PeerHost struct {
	// Identity is this end of every accepted channel (the host's
	// platform, enclave, and shard origin).
	Identity PeerIdentity
	// Timeout bounds the handshake.
	Timeout time.Duration

	// Have reports the host's durable-root inventory; nil rejects
	// replication inventory requests.
	Have func() (map[string]int64, error)
	// Apply applies one replication delta and returns the (stamp, LSN)
	// position the host now holds; nil rejects shipments.
	Apply func(persist.Delta) (stamp, lastLSN uint64, err error)

	// World executes bind/call requests; nil rejects them.
	World *world.World
	// Exports maps bindable names to live object refs, mirroring
	// serve.Server.Export.
	Exports map[string]func() (wire.Value, error)

	// Logf receives diagnostics; OnHandshake fires per attested channel
	// (telemetry hook).
	Logf        func(format string, args ...any)
	OnHandshake func()

	// Telemetry, when set, continues propagated trace contexts across
	// the channel (ship-apply and peer-call spans) and journals ship
	// events. Nil disables both at the cost of one branch.
	Telemetry *telemetry.Telemetry

	mu     sync.Mutex
	peers  map[string][32]byte
	ln     net.Listener
	conns  map[*PeerConn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// SetPeers installs the set of shard origins allowed to open channels
// here, each mapped to the measurement that origin's enclave must
// prove. Safe to call while serving (topology changes on promotion).
func (h *PeerHost) SetPeers(peers map[string][32]byte) {
	cp := make(map[string][32]byte, len(peers))
	for origin, meas := range peers {
		cp[origin] = meas
	}
	h.mu.Lock()
	h.peers = cp
	h.mu.Unlock()
}

func (h *PeerHost) peerSet() map[string][32]byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.peers
}

func (h *PeerHost) logf(format string, args ...any) {
	if h.Logf != nil {
		h.Logf(format, args...)
	}
}

// Serve accepts and serves peer channels on ln until Close.
func (h *PeerHost) Serve(ln net.Listener) error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		ln.Close()
		return ErrPeerClosed
	}
	h.ln = ln
	if h.conns == nil {
		h.conns = make(map[*PeerConn]struct{})
	}
	h.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			h.mu.Lock()
			closed := h.closed
			h.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		h.wg.Add(1)
		go h.serveConn(conn)
	}
}

// Close stops the accept loop, tears down live channels, and waits for
// their serve goroutines.
func (h *PeerHost) Close() {
	h.mu.Lock()
	h.closed = true
	ln := h.ln
	conns := make([]*PeerConn, 0, len(h.conns))
	for pc := range h.conns {
		conns = append(conns, pc)
	}
	h.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, pc := range conns {
		pc.Close()
	}
	h.wg.Wait()
}

func (h *PeerHost) serveConn(conn net.Conn) {
	defer h.wg.Done()
	pc, err := AcceptPeer(conn, h.Identity, h.peerSet(), h.Timeout)
	if err != nil {
		h.logf("fabric: peer accept (%s): %v", h.Identity.Origin, err)
		conn.Close()
		return
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		pc.Close()
		return
	}
	h.conns[pc] = struct{}{}
	h.mu.Unlock()
	if h.OnHandshake != nil {
		h.OnHandshake()
	}

	ns := registry.NewNamespaceFor(h.Identity.Origin)
	defer func() {
		pc.Close()
		h.mu.Lock()
		delete(h.conns, pc)
		h.mu.Unlock()
		h.releaseAll(ns)
	}()

	for {
		req, err := pc.recv()
		if err != nil {
			return // teardown or peer hangup
		}
		if err := pc.send(h.dispatch(ns, req)); err != nil {
			return
		}
	}
}

// releaseAll drops the retention behind every handle the channel issued.
func (h *PeerHost) releaseAll(ns *registry.Namespace) {
	entries := ns.Drain()
	if len(entries) == 0 || h.World == nil {
		return
	}
	rt := h.World.Untrusted()
	for _, e := range entries {
		if err := rt.Unpin(wire.Ref(e.Class, e.Hash)); err != nil {
			h.logf("fabric: peer unpin %s#%d: %v", e.Class, e.Handle, err)
		}
	}
}

func peerOK(vals ...wire.Value) []byte {
	return wire.MarshalList(append([]wire.Value{wire.Str(peerStatusOK)}, vals...))
}

func peerError(format string, args ...any) []byte {
	return wire.MarshalList([]wire.Value{wire.Str(peerStatusError), wire.Str(fmt.Sprintf(format, args...))})
}

func peerForeign(format string, args ...any) []byte {
	return wire.MarshalList([]wire.Value{wire.Str(peerStatusForeign), wire.Str(fmt.Sprintf(format, args...))})
}

func (h *PeerHost) dispatch(ns *registry.Namespace, req []byte) []byte {
	vs, err := wire.UnmarshalList(req)
	if err != nil || len(vs) < 1 {
		return peerError("malformed peer request")
	}
	op, _ := vs[0].AsStr()
	switch op {
	case peerOpHave:
		return h.serveHave()
	case peerOpShip:
		return h.serveShip(vs[1:])
	case peerOpBind:
		return h.serveBind(ns, vs[1:])
	case peerOpCall:
		return h.serveCall(ns, vs[1:])
	default:
		return peerError("unknown peer op %q", op)
	}
}

func (h *PeerHost) serveHave() []byte {
	if h.Have == nil {
		return peerError("replication not served here")
	}
	have, err := h.Have()
	if err != nil {
		return peerError("inventory: %v", err)
	}
	names := make([]string, 0, len(have))
	for name := range have {
		names = append(names, name)
	}
	sort.Strings(names)
	entries := make([]wire.Value, 0, len(names))
	for _, name := range names {
		entries = append(entries, wire.List(wire.Str(name), wire.Int(have[name])))
	}
	return peerOK(wire.List(entries...))
}

func (h *PeerHost) serveShip(args []wire.Value) []byte {
	if h.Apply == nil {
		return peerError("replication not served here")
	}
	if len(args) != 1 && len(args) != 3 {
		return peerError("ship arity")
	}
	blob, ok := args[0].AsBytes()
	if !ok {
		return peerError("ship payload")
	}
	sc := traceFromVals(args[1:])
	sp := h.Telemetry.Tracer().StartRemote(sc, "ship-apply")
	sp.SetNode(h.Identity.Origin)
	sp.SetSealedBytes(len(blob))
	d, err := persist.DecodeDelta(blob)
	if err != nil {
		sp.Finish(err)
		return peerError("decode delta: %v", err)
	}
	stamp, lsn, err := h.Apply(d)
	if err != nil {
		sp.Finish(err)
		return peerError("apply delta: %v", err)
	}
	h.Telemetry.Events().Emit(telemetry.EventShip, h.Identity.Origin, sc.TraceID,
		"applied %d bytes, now stamp %d lsn %d", len(blob), stamp, lsn)
	sp.Finish(nil)
	return peerOK(wire.Int(int64(stamp)), wire.Int(int64(lsn)))
}

func (h *PeerHost) serveBind(ns *registry.Namespace, args []wire.Value) []byte {
	if h.World == nil {
		return peerError("objects not served here")
	}
	if len(args) != 1 {
		return peerError("bind arity")
	}
	name, _ := args[0].AsStr()
	export, ok := h.Exports[name]
	if !ok {
		return peerError("no export %q", name)
	}
	ref, err := export()
	if err != nil {
		return peerError("export %q: %v", name, err)
	}
	out, err := h.exportValue(ns, ref)
	if err != nil {
		return peerError("export %q: %v", name, err)
	}
	return peerOK(out)
}

func (h *PeerHost) serveCall(ns *registry.Namespace, args []wire.Value) []byte {
	if h.World == nil {
		return peerError("objects not served here")
	}
	if len(args) != 4 && len(args) != 6 {
		return peerError("call arity")
	}
	origin, _ := args[0].AsStr()
	handle, _ := args[1].AsInt()
	method, _ := args[2].AsStr()
	callArgs, ok := args[3].AsList()
	if !ok {
		return peerError("call argument vector")
	}
	sc := traceFromVals(args[4:])
	// The cross-shard namespace check: the handle resolves only when the
	// caller presents the origin shard that issued it.
	e, ok := ns.LookupFrom(origin, handle)
	if !ok {
		return peerForeign("handle %d is not origin %q (host namespace %q)", handle, origin, ns.Origin())
	}
	imported := make([]wire.Value, len(callArgs))
	for i, a := range callArgs {
		v, err := h.importValue(ns, origin, a)
		if err != nil {
			return peerForeign("argument %d: %v", i, err)
		}
		imported[i] = v
	}
	sp := h.Telemetry.Tracer().StartRemote(sc, "peer-call "+method)
	sp.SetNode(h.Identity.Origin)
	var out wire.Value
	err := h.World.ExecSpan(false, sp, func(env classmodel.Env) error {
		v, err := env.Call(wire.Ref(e.Class, e.Hash), method, imported...)
		if err != nil {
			return err
		}
		out, err = h.exportValue(ns, v)
		return err
	})
	sp.Finish(err)
	if err != nil {
		return peerError("call %s.%s: %v", e.Class, method, err)
	}
	return peerOK(out)
}

// importValue translates peer handles in arguments back to world refs,
// enforcing the origin check on every embedded ref.
func (h *PeerHost) importValue(ns *registry.Namespace, origin string, v wire.Value) (wire.Value, error) {
	switch v.Kind() {
	case wire.KindRef:
		_, handle, _ := v.AsRef()
		e, ok := ns.LookupFrom(origin, handle)
		if !ok {
			return wire.Value{}, fmt.Errorf("handle %d is not origin %q", handle, origin)
		}
		return wire.Ref(e.Class, e.Hash), nil
	case wire.KindList:
		vs, _ := v.AsList()
		out := make([]wire.Value, len(vs))
		for i, el := range vs {
			iv, err := h.importValue(ns, origin, el)
			if err != nil {
				return wire.Value{}, err
			}
			out[i] = iv
		}
		return wire.List(out...), nil
	default:
		return v, nil
	}
}

// exportValue pins ref results and issues origin-tagged handles for
// them, mirroring a serve session's export path.
func (h *PeerHost) exportValue(ns *registry.Namespace, v wire.Value) (wire.Value, error) {
	switch v.Kind() {
	case wire.KindRef:
		class, hash, _ := v.AsRef()
		rt := h.World.Untrusted()
		if err := rt.Pin(v); err != nil {
			return wire.Value{}, err
		}
		handle, added := ns.Add(class, hash)
		if !added {
			// Already named by this channel (or the namespace drained):
			// drop the duplicate pin.
			if err := rt.Unpin(v); err != nil {
				return wire.Value{}, err
			}
			if handle == 0 {
				return wire.Value{}, ErrPeerClosed
			}
		}
		return wire.Ref(class, handle), nil
	case wire.KindList:
		vs, _ := v.AsList()
		out := make([]wire.Value, len(vs))
		for i, el := range vs {
			ev, err := h.exportValue(ns, el)
			if err != nil {
				return wire.Value{}, err
			}
			out[i] = ev
		}
		return wire.List(out...), nil
	default:
		return v, nil
	}
}
