package fabric

// shard.go is one primary of the fabric: a World running the demo KV
// program behind an attested serve gateway, its acked puts journaled
// through a persist.Manager whose complete durable root (WAL,
// checkpoints, monotonic counter) lives on a per-shard filesystem —
// the unit that checkpoint shipping replicates and promotion rebuilds.
// The gateway's ShardCheck predicate rejects keys the consistent-hash
// ring assigns elsewhere, and its Journal hook appends and
// synchronously ships every put before the ack leaves, so "acked"
// always implies "durable on the replica set".

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/core"
	"montsalvat/internal/demo"
	"montsalvat/internal/lockrank"
	"montsalvat/internal/persist"
	"montsalvat/internal/serve"
	"montsalvat/internal/sgx"
	"montsalvat/internal/shim"
	"montsalvat/internal/telemetry"
	"montsalvat/internal/wire"
	"montsalvat/internal/world"
)

// Expectation is the durable position a dead primary had acknowledged:
// the counter stamp of its last checkpoint lineage and its last
// journaled LSN. A replica may only be promoted if it recovers to at
// least this position — the cross-machine extension of the
// monotonic-counter rollback defense.
type Expectation struct {
	Stamp uint64
	LSN   uint64
}

// shardNode is one primary shard: world, gateway, durable manager,
// peer host (for sibling shards' cross-shard calls), and the shippers
// feeding its replicas.
type shardNode struct {
	id  int
	fab *Fabric

	// tel is this node's slice of the fleet observability plane: a
	// private metrics registry plus the fleet-shared tracer and event
	// journal. Nil when the fabric runs without a Fleet.
	tel *telemetry.Telemetry

	w  *world.World
	fs *shim.MemFS
	kv *persist.WorldKV

	srv       *serve.Server
	ln        net.Listener
	serveDone chan error

	peerHost *PeerHost
	peerLn   net.Listener
	peerDone chan error

	mu       lockrank.Mutex
	mgr      *persist.Manager
	shippers []*shipper

	// Replication pump state (group-commit mode only). Lock hierarchy:
	// ackMu > n.mu > shipper locks > manager mutex — ackMu may be held
	// while computing the watermark (which snapshots shippers under
	// n.mu), never the reverse.
	ackMu       lockrank.Mutex
	waiters     []*pendingAck
	pumpErr     error // non-nil once the pump is stopped; fails new waiters fast
	pumpStopped bool

	pumpKick chan struct{}
	pumpStop chan struct{}
	pumpDone chan struct{}

	// ackedHigh is the highest LSN this node has acknowledged (group-
	// commit mode). It seeds from the recovered position at gateway
	// start and advances with every completed ack. kill() captures it
	// as the promotion expectation: the durable-but-unacked tail
	// beyond it carries no promise and must not fail a healthy
	// successor, while everything at or below it was replicated (or
	// fallback-shipped) before its ack left.
	ackedHigh atomic.Uint64
}

// pendingAck is one journaled put parked on the replication watermark:
// its ack leaves when every replica's acked LSN covers lsn, when the
// fallback timer degrades it to a synchronous ship, or when the pump
// stops. done is guarded by ackMu and makes completion single-shot
// across those three racing paths.
type pendingAck struct {
	lsn      uint64
	sc       telemetry.SpanContext
	complete func(error)
	timer    *time.Timer
	done     bool
}

// buildWorld constructs one fabric World. Every world shares the fabric
// signer, so all enclaves carry the same MRSIGNER and sealed state
// written by one can be unsealed by another — the property replication
// and promotion rest on. tel (optional) instruments the world's
// boundary crossings on that node's registry and joins its RMI spans to
// the fleet-shared tracer.
func (f *Fabric) buildWorld(tel *telemetry.Telemetry) (*world.World, error) {
	opts := world.DefaultOptions()
	opts.Signer = f.signer
	opts.Telemetry = tel
	if b := f.opts.Build; b != nil {
		return world.NewPartitioned(opts, b.TrustedImage, b.UntrustedImage, b.Transform.Interface)
	}
	w, _, err := core.NewPartitionedWorld(demo.MustKVProgram(), opts)
	return w, err
}

// newStoreRef creates and pins a fresh KVStore in w.
func newStoreRef(w *world.World) (wire.Value, error) {
	var ref wire.Value
	err := w.Exec(false, func(env classmodel.Env) error {
		v, err := env.New(demo.KVStoreCls)
		if err != nil {
			return err
		}
		ref = v
		return nil
	})
	if err != nil {
		return wire.Value{}, err
	}
	if err := w.Untrusted().Pin(ref); err != nil {
		return wire.Value{}, err
	}
	return ref, nil
}

// openManager boots a persist.Manager for shard id over fs and w's
// current enclave, registers kv, and recovers. The counter store lives
// on the same fs (FSCounterStore), so the rollback-protection state is
// part of the replicated root. tel (optional) gives the manager the
// node's metrics registry and the fleet event journal.
func (f *Fabric) openManager(id int, w *world.World, fs shim.FS, kv *persist.WorldKV, tel *telemetry.Telemetry) (*persist.Manager, persist.Report, error) {
	ctr, err := sgx.NewMonotonicCounter(f.secret, persist.NewFSCounterStore(fs, shardDir), ShardOrigin(id))
	if err != nil {
		return nil, persist.Report{}, err
	}
	m, err := persist.Open(persist.Options{
		FS:              fs,
		Enclave:         w.Enclave(),
		Secret:          f.secret,
		Counter:         ctr,
		Dir:             shardDir,
		BeforeCommit:    w.Flush,
		Telemetry:       tel.Registry(),
		Events:          tel.Events(),
		Node:            ShardOrigin(id),
		Logf:            f.opts.Logf,
		GroupCommit:     f.opts.GroupCommit,
		GroupMaxRecords: f.opts.CommitMaxRecords,
		GroupMaxDelay:   f.opts.CommitMaxDelay,
	})
	if err != nil {
		return nil, persist.Report{}, err
	}
	if err := m.Register(kv); err != nil {
		return nil, persist.Report{}, err
	}
	rep, err := m.Recover()
	if err != nil {
		return nil, persist.Report{}, err
	}
	return m, rep, nil
}

// shardDir is the durable-root directory on each shard's filesystem.
const shardDir = "p/"

// newShardNode boots primary id: world, store, manager, gateway, peer
// host. Shippers attach later (connectReplicas), once the replica
// listeners exist.
func newShardNode(f *Fabric, id int) (*shardNode, error) {
	tel := f.nodeTel(ShardOrigin(id))
	w, err := f.buildWorld(tel)
	if err != nil {
		return nil, err
	}
	n := &shardNode{id: id, fab: f, tel: tel, w: w, fs: shim.NewMemFS()}
	n.mu.SetRank(lockrank.RankFabricNode, "fabric.shardNode.mu")
	n.ackMu.SetRank(lockrank.RankFabricAck, "fabric.shardNode.ackMu")
	n.kv = persist.NewWorldKV("kv", w)
	ref, err := newStoreRef(w)
	if err != nil {
		w.Close()
		return nil, err
	}
	n.kv.SetRef(ref)
	mgr, _, err := f.openManager(id, w, n.fs, n.kv, tel)
	if err != nil {
		w.Close()
		return nil, err
	}
	n.mgr = mgr
	if err := n.startGateway(); err != nil {
		w.Close()
		return nil, err
	}
	return n, nil
}

// startGateway opens the serve endpoint and the peer host for this
// shard's world.
func (n *shardNode) startGateway() error {
	f := n.fab
	sOpts := serve.Options{
		World:       n.w,
		Platform:    f.platform,
		MaxSessions: f.opts.MaxSessions,
		MaxInFlight: f.opts.MaxInFlight,
		Logf:        f.opts.Logf,
		ShardCheck:  f.shardCheckFor(n.id),
		Telemetry:   n.tel,
		Node:        ShardOrigin(n.id),
	}
	if f.opts.GroupCommit {
		// Pipelined path: the worker hands the put to the commit queue
		// and is freed; the ack leaves when the replication watermark
		// covers the put's LSN. The pump must be live before the first
		// request lands. Everything recovered counts as acked — it was
		// validated against the predecessor's expectation.
		n.ackedHigh.Store(n.mgr.Stats().LastLSN)
		sOpts.JournalAsync = n.journalAsync
		n.startPump()
	} else {
		sOpts.Journal = n.journal
	}
	srv, err := serve.New(sOpts)
	if err != nil {
		n.stopPump(fmt.Errorf("fabric: shard %d gateway failed to start", n.id))
		return err
	}
	srv.Export("kv", func(env classmodel.Env) (wire.Value, error) {
		ref := n.kv.Ref()
		if ref.IsNull() {
			return wire.Value{}, errors.New("store not initialised")
		}
		return ref, nil
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		n.stopPump(fmt.Errorf("fabric: shard %d gateway failed to start", n.id))
		return err
	}
	n.srv, n.ln = srv, ln
	n.serveDone = make(chan error, 1)
	go func() { n.serveDone <- srv.Serve(ln) }()

	n.peerHost = &PeerHost{
		Identity: PeerIdentity{Platform: f.platform, Enclave: n.w.Enclave(), Origin: ShardOrigin(n.id)},
		Timeout:  f.opts.PeerTimeout,
		World:    n.w,
		Exports: map[string]func() (wire.Value, error){
			"kv": func() (wire.Value, error) {
				ref := n.kv.Ref()
				if ref.IsNull() {
					return wire.Value{}, errors.New("store not initialised")
				}
				return ref, nil
			},
		},
		Logf:        f.opts.Logf,
		OnHandshake: func() { f.peerHandshakes.Add(1) },
		Telemetry:   n.tel,
	}
	peerLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		ln.Close()
		n.stopPump(fmt.Errorf("fabric: shard %d gateway failed to start", n.id))
		return err
	}
	n.peerLn = peerLn
	n.peerDone = make(chan error, 1)
	go func() { n.peerDone <- n.peerHost.Serve(peerLn) }()
	return nil
}

// shardCheckFor is the gateway partition predicate for shard id: KV
// operations carrying a key the current ring assigns to another shard
// are rejected with the typed redirect.
func (f *Fabric) shardCheckFor(id int) func(op, class, method string, args []wire.Value) error {
	return func(op, class, method string, args []wire.Value) error {
		if class != demo.KVStoreCls || (method != "put" && method != "get") || len(args) == 0 {
			return nil
		}
		key, ok := args[0].AsStr()
		if !ok {
			return nil
		}
		t := f.Table()
		if owner := t.Owner(key); owner != id {
			return &serve.WrongShardError{Owner: owner, Epoch: t.Epoch}
		}
		return nil
	}
}

func (n *shardNode) manager() *persist.Manager {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.mgr
}

// journal is the gateway's Journal hook: append the put, then ship the
// delta to every replica before the ack leaves. A ship failure fails
// the request — an un-replicated write is never acknowledged. The
// mutation's trace context rides along so the replication leg of the
// ack path lands in the same trace as the client's put.
func (n *shardNode) journal(m serve.Mutation) error {
	if m.Op != serve.MutationCall || m.Class != demo.KVStoreCls || m.Method != "put" || len(m.Args) < 2 {
		return nil
	}
	key, _ := m.Args[0].AsStr()
	val, _ := m.Args[1].AsStr()
	if _, err := n.manager().Append("kv", persist.OpPut, key, []byte(val)); err != nil {
		return err
	}
	return n.shipAll(m.Trace)
}

// journalAsync is the gateway hook on the pipelined path. The append
// runs inline — concurrent workers parking on the commit queue is
// exactly what forms a batch, and the pool is wider than any client
// fan-out — but the ack goes asynchronous the moment it has to wait on
// replication: complete fires from the pump (watermark) or the
// fallback ship, not from this worker. Non-put mutations complete
// immediately.
func (n *shardNode) journalAsync(m serve.Mutation, complete func(error)) {
	if m.Op != serve.MutationCall || m.Class != demo.KVStoreCls || m.Method != "put" || len(m.Args) < 2 {
		complete(nil)
		return
	}
	key, _ := m.Args[0].AsStr()
	val, _ := m.Args[1].AsStr()
	lsn, err := n.manager().Append("kv", persist.OpPut, key, []byte(val))
	if err != nil {
		complete(err)
		return
	}
	n.awaitReplicated(lsn, m.Trace, complete)
}

// awaitReplicated gates an ack on the replication watermark: complete
// fires once every replica's acked LSN covers lsn. If the watermark
// stalls, the fallback timer degrades this waiter to a synchronous
// ship; if the pump is stopped, the waiter fails immediately.
func (n *shardNode) awaitReplicated(lsn uint64, sc telemetry.SpanContext, complete func(error)) {
	n.ackMu.Lock()
	if n.pumpErr != nil {
		err := n.pumpErr
		n.ackMu.Unlock()
		complete(err)
		return
	}
	if lsn <= n.coveredLSN() {
		n.ackMu.Unlock()
		n.noteAckedHigh(lsn)
		complete(nil)
		return
	}
	pa := &pendingAck{lsn: lsn, sc: sc, complete: complete}
	pa.timer = time.AfterFunc(n.fab.syncFallbackAfter(), func() { n.ackFallback(pa) })
	n.waiters = append(n.waiters, pa)
	n.ackMu.Unlock()
	n.kickPump()
}

// coveredLSN is the replication watermark: the highest LSN every
// attached replica has durably applied. Paused replicas count — a
// pause freezes the watermark, and stalled waiters degrade through the
// fallback path rather than acking unreplicated writes early. With no
// replicas attached there is nothing to wait for.
func (n *shardNode) coveredLSN() uint64 {
	covered := ^uint64(0)
	n.mu.Lock()
	for _, sh := range n.shippers {
		// acked() is one atomic load; cheap enough to take under n.mu
		// on every journaled put without copying the slice.
		if a := sh.acked(); a < covered {
			covered = a
		}
	}
	n.mu.Unlock()
	return covered
}

// startPump launches the replication pump: one goroutine per shard
// that ships deltas whenever waiters are parked, batching however many
// puts landed since the last round into one ship per replica.
func (n *shardNode) startPump() {
	n.pumpKick = make(chan struct{}, 1)
	n.pumpStop = make(chan struct{})
	n.pumpDone = make(chan struct{})
	go n.pumpLoop()
}

func (n *shardNode) kickPump() {
	select {
	case n.pumpKick <- struct{}{}:
	default: // a round is already scheduled; it will see this waiter
	}
}

func (n *shardNode) pumpLoop() {
	defer close(n.pumpDone)
	for {
		select {
		case <-n.pumpStop:
			return
		case <-n.pumpKick:
			n.pumpRound()
		}
	}
}

// pumpRound ships one delta round to every replica and completes every
// waiter the advanced watermark now covers. The round is traced as a
// commit-leader span continuing the oldest waiter's trace; the
// per-replica ship spans parent under it, so a trace shows one batched
// replication round serving many puts. Ship errors are not fatal here —
// a waiter a failed round leaves behind is delivered (value or error)
// by its fallback ship.
func (n *shardNode) pumpRound() {
	n.ackMu.Lock()
	if len(n.waiters) == 0 {
		n.ackMu.Unlock()
		return
	}
	sc := n.waiters[0].sc
	n.ackMu.Unlock()

	sp := n.tel.Tracer().StartRemote(sc, "commit-leader")
	sp.SetNode(ShardOrigin(n.id))
	n.mu.Lock()
	shippers := append([]*shipper(nil), n.shippers...)
	n.mu.Unlock()
	for _, sh := range shippers {
		_ = sh.ship(sp.Context())
	}
	sp.Finish(nil)
	n.completeCovered()
}

// completeCovered releases every waiter at or below the watermark.
func (n *shardNode) completeCovered() {
	covered := n.coveredLSN()
	n.ackMu.Lock()
	var ready []*pendingAck
	rest := n.waiters[:0]
	for _, pa := range n.waiters {
		if pa.lsn <= covered {
			pa.done = true
			pa.timer.Stop()
			ready = append(ready, pa)
		} else {
			rest = append(rest, pa)
		}
	}
	n.waiters = rest
	n.ackMu.Unlock()
	for _, pa := range ready {
		n.noteAckedHigh(pa.lsn)
		pa.complete(nil)
	}
}

// noteAckedHigh advances the acked-position watermark monotonically.
func (n *shardNode) noteAckedHigh(lsn uint64) {
	for {
		cur := n.ackedHigh.Load()
		if lsn <= cur || n.ackedHigh.CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// ackFallback fires when a waiter has sat on the watermark longer than
// SyncFallbackAfter: the shard ships synchronously on its behalf (the
// fabric-v1 ack path — paused replicas are skipped there exactly as
// they always were) and delivers the outcome, error included.
func (n *shardNode) ackFallback(pa *pendingAck) {
	n.ackMu.Lock()
	if pa.done {
		n.ackMu.Unlock()
		return
	}
	pa.done = true
	for i, w := range n.waiters {
		if w == pa {
			n.waiters = append(n.waiters[:i], n.waiters[i+1:]...)
			break
		}
	}
	n.ackMu.Unlock()
	n.fab.syncFallbacks.Add(1)
	err := n.shipAll(pa.sc)
	if err == nil {
		n.noteAckedHigh(pa.lsn)
	}
	pa.complete(err)
}

// stopPump halts the replication pump and fails every parked waiter
// with err; later awaitReplicated calls fail immediately. Idempotent —
// the first err wins — and a no-op when the pump never started.
func (n *shardNode) stopPump(err error) {
	n.ackMu.Lock()
	if n.pumpErr == nil {
		n.pumpErr = err
	}
	taken := n.waiters
	n.waiters = nil
	for _, pa := range taken {
		pa.done = true
		pa.timer.Stop()
	}
	stopped := n.pumpStopped
	n.pumpStopped = true
	n.ackMu.Unlock()
	if !stopped && n.pumpDone != nil {
		close(n.pumpStop)
		<-n.pumpDone
	}
	for _, pa := range taken {
		pa.complete(err)
	}
}

// shipAll pushes the current durable root to every attached replica,
// continuing sc's trace into each ship.
func (n *shardNode) shipAll(sc telemetry.SpanContext) error {
	n.mu.Lock()
	shippers := append([]*shipper(nil), n.shippers...)
	n.mu.Unlock()
	for _, sh := range shippers {
		if err := sh.ship(sc); err != nil {
			return fmt.Errorf("fabric: shard %d ship to %s: %w", n.id, sh.conn.RemoteOrigin(), err)
		}
	}
	return nil
}

// attachShipper registers a connected replica channel and pushes the
// initial full delta.
func (n *shardNode) attachShipper(sh *shipper) error {
	n.mu.Lock()
	n.shippers = append(n.shippers, sh)
	n.mu.Unlock()
	return sh.ship(telemetry.SpanContext{})
}

// expectation captures the durable position this primary has
// acknowledged — what any promoted successor must reach.
func (n *shardNode) expectation() Expectation {
	st := n.manager().Stats()
	exp := Expectation{Stamp: st.Epoch, LSN: st.LastLSN}
	if n.fab.opts.GroupCommit {
		// Pipelined mode: the durable-but-unacked tail past the acked
		// watermark carries no promise, and a healthy replica may not
		// hold it — a successor only has to cover what was acked.
		exp.LSN = n.ackedHigh.Load()
	}
	return exp
}

// kill simulates primary failure: capture the acked position, kill the
// enclave, tear the gateway and peer endpoints down. In-flight requests
// fail; nothing acked is lost (it was shipped before the ack).
func (n *shardNode) kill() Expectation {
	exp := n.expectation()
	n.w.Kill()
	// Stop the pump before draining the gateway: parked waiters fail
	// fast instead of holding Shutdown open until their fallback timers.
	n.stopPump(fmt.Errorf("fabric: shard %d primary killed", n.id))
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	_ = n.srv.Shutdown(ctx)
	cancel()
	n.ln.Close()
	n.teardownPeers()
	<-n.serveDone
	return exp
}

func (n *shardNode) teardownPeers() {
	n.mu.Lock()
	shippers := n.shippers
	n.shippers = nil
	n.mu.Unlock()
	for _, sh := range shippers {
		sh.close()
	}
	if n.peerHost != nil {
		n.peerHost.Close()
		<-n.peerDone
	}
}

// shutdown is the graceful path (Fabric.Close): drain the gateway
// first — in-flight puts finish through the still-running pump — then
// stop the pump (no waiters can remain).
func (n *shardNode) shutdown(ctx context.Context) error {
	err := n.srv.Shutdown(ctx)
	n.stopPump(fmt.Errorf("fabric: shard %d shut down", n.id))
	n.ln.Close()
	n.teardownPeers()
	<-n.serveDone
	n.w.Close()
	return err
}
