package fabric

// shard.go is one primary of the fabric: a World running the demo KV
// program behind an attested serve gateway, its acked puts journaled
// through a persist.Manager whose complete durable root (WAL,
// checkpoints, monotonic counter) lives on a per-shard filesystem —
// the unit that checkpoint shipping replicates and promotion rebuilds.
// The gateway's ShardCheck predicate rejects keys the consistent-hash
// ring assigns elsewhere, and its Journal hook appends and
// synchronously ships every put before the ack leaves, so "acked"
// always implies "durable on the replica set".

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/core"
	"montsalvat/internal/demo"
	"montsalvat/internal/persist"
	"montsalvat/internal/serve"
	"montsalvat/internal/sgx"
	"montsalvat/internal/shim"
	"montsalvat/internal/telemetry"
	"montsalvat/internal/wire"
	"montsalvat/internal/world"
)

// Expectation is the durable position a dead primary had acknowledged:
// the counter stamp of its last checkpoint lineage and its last
// journaled LSN. A replica may only be promoted if it recovers to at
// least this position — the cross-machine extension of the
// monotonic-counter rollback defense.
type Expectation struct {
	Stamp uint64
	LSN   uint64
}

// shardNode is one primary shard: world, gateway, durable manager,
// peer host (for sibling shards' cross-shard calls), and the shippers
// feeding its replicas.
type shardNode struct {
	id  int
	fab *Fabric

	// tel is this node's slice of the fleet observability plane: a
	// private metrics registry plus the fleet-shared tracer and event
	// journal. Nil when the fabric runs without a Fleet.
	tel *telemetry.Telemetry

	w  *world.World
	fs *shim.MemFS
	kv *persist.WorldKV

	srv       *serve.Server
	ln        net.Listener
	serveDone chan error

	peerHost *PeerHost
	peerLn   net.Listener
	peerDone chan error

	mu       sync.Mutex
	mgr      *persist.Manager
	shippers []*shipper
}

// buildWorld constructs one fabric World. Every world shares the fabric
// signer, so all enclaves carry the same MRSIGNER and sealed state
// written by one can be unsealed by another — the property replication
// and promotion rest on. tel (optional) instruments the world's
// boundary crossings on that node's registry and joins its RMI spans to
// the fleet-shared tracer.
func (f *Fabric) buildWorld(tel *telemetry.Telemetry) (*world.World, error) {
	opts := world.DefaultOptions()
	opts.Signer = f.signer
	opts.Telemetry = tel
	w, _, err := core.NewPartitionedWorld(demo.MustKVProgram(), opts)
	return w, err
}

// newStoreRef creates and pins a fresh KVStore in w.
func newStoreRef(w *world.World) (wire.Value, error) {
	var ref wire.Value
	err := w.Exec(false, func(env classmodel.Env) error {
		v, err := env.New(demo.KVStoreCls)
		if err != nil {
			return err
		}
		ref = v
		return nil
	})
	if err != nil {
		return wire.Value{}, err
	}
	if err := w.Untrusted().Pin(ref); err != nil {
		return wire.Value{}, err
	}
	return ref, nil
}

// openManager boots a persist.Manager for shard id over fs and w's
// current enclave, registers kv, and recovers. The counter store lives
// on the same fs (FSCounterStore), so the rollback-protection state is
// part of the replicated root. tel (optional) gives the manager the
// node's metrics registry and the fleet event journal.
func (f *Fabric) openManager(id int, w *world.World, fs shim.FS, kv *persist.WorldKV, tel *telemetry.Telemetry) (*persist.Manager, persist.Report, error) {
	ctr, err := sgx.NewMonotonicCounter(f.secret, persist.NewFSCounterStore(fs, shardDir), ShardOrigin(id))
	if err != nil {
		return nil, persist.Report{}, err
	}
	m, err := persist.Open(persist.Options{
		FS:           fs,
		Enclave:      w.Enclave(),
		Secret:       f.secret,
		Counter:      ctr,
		Dir:          shardDir,
		BeforeCommit: w.Flush,
		Telemetry:    tel.Registry(),
		Events:       tel.Events(),
		Node:         ShardOrigin(id),
		Logf:         f.opts.Logf,
	})
	if err != nil {
		return nil, persist.Report{}, err
	}
	if err := m.Register(kv); err != nil {
		return nil, persist.Report{}, err
	}
	rep, err := m.Recover()
	if err != nil {
		return nil, persist.Report{}, err
	}
	return m, rep, nil
}

// shardDir is the durable-root directory on each shard's filesystem.
const shardDir = "p/"

// newShardNode boots primary id: world, store, manager, gateway, peer
// host. Shippers attach later (connectReplicas), once the replica
// listeners exist.
func newShardNode(f *Fabric, id int) (*shardNode, error) {
	tel := f.nodeTel(ShardOrigin(id))
	w, err := f.buildWorld(tel)
	if err != nil {
		return nil, err
	}
	n := &shardNode{id: id, fab: f, tel: tel, w: w, fs: shim.NewMemFS()}
	n.kv = persist.NewWorldKV("kv", w)
	ref, err := newStoreRef(w)
	if err != nil {
		w.Close()
		return nil, err
	}
	n.kv.SetRef(ref)
	mgr, _, err := f.openManager(id, w, n.fs, n.kv, tel)
	if err != nil {
		w.Close()
		return nil, err
	}
	n.mgr = mgr
	if err := n.startGateway(); err != nil {
		w.Close()
		return nil, err
	}
	return n, nil
}

// startGateway opens the serve endpoint and the peer host for this
// shard's world.
func (n *shardNode) startGateway() error {
	f := n.fab
	srv, err := serve.New(serve.Options{
		World:       n.w,
		Platform:    f.platform,
		MaxSessions: f.opts.MaxSessions,
		MaxInFlight: f.opts.MaxInFlight,
		Logf:        f.opts.Logf,
		ShardCheck:  f.shardCheckFor(n.id),
		Journal:     n.journal,
		Telemetry:   n.tel,
		Node:        ShardOrigin(n.id),
	})
	if err != nil {
		return err
	}
	srv.Export("kv", func(env classmodel.Env) (wire.Value, error) {
		ref := n.kv.Ref()
		if ref.IsNull() {
			return wire.Value{}, errors.New("store not initialised")
		}
		return ref, nil
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	n.srv, n.ln = srv, ln
	n.serveDone = make(chan error, 1)
	go func() { n.serveDone <- srv.Serve(ln) }()

	n.peerHost = &PeerHost{
		Identity: PeerIdentity{Platform: f.platform, Enclave: n.w.Enclave(), Origin: ShardOrigin(n.id)},
		Timeout:  f.opts.PeerTimeout,
		World:    n.w,
		Exports: map[string]func() (wire.Value, error){
			"kv": func() (wire.Value, error) {
				ref := n.kv.Ref()
				if ref.IsNull() {
					return wire.Value{}, errors.New("store not initialised")
				}
				return ref, nil
			},
		},
		Logf:        f.opts.Logf,
		OnHandshake: func() { f.peerHandshakes.Add(1) },
		Telemetry:   n.tel,
	}
	peerLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		ln.Close()
		return err
	}
	n.peerLn = peerLn
	n.peerDone = make(chan error, 1)
	go func() { n.peerDone <- n.peerHost.Serve(peerLn) }()
	return nil
}

// shardCheckFor is the gateway partition predicate for shard id: KV
// operations carrying a key the current ring assigns to another shard
// are rejected with the typed redirect.
func (f *Fabric) shardCheckFor(id int) func(op, class, method string, args []wire.Value) error {
	return func(op, class, method string, args []wire.Value) error {
		if class != demo.KVStoreCls || (method != "put" && method != "get") || len(args) == 0 {
			return nil
		}
		key, ok := args[0].AsStr()
		if !ok {
			return nil
		}
		t := f.Table()
		if owner := t.Owner(key); owner != id {
			return &serve.WrongShardError{Owner: owner, Epoch: t.Epoch}
		}
		return nil
	}
}

func (n *shardNode) manager() *persist.Manager {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.mgr
}

// journal is the gateway's Journal hook: append the put, then ship the
// delta to every replica before the ack leaves. A ship failure fails
// the request — an un-replicated write is never acknowledged. The
// mutation's trace context rides along so the replication leg of the
// ack path lands in the same trace as the client's put.
func (n *shardNode) journal(m serve.Mutation) error {
	if m.Op != serve.MutationCall || m.Class != demo.KVStoreCls || m.Method != "put" || len(m.Args) < 2 {
		return nil
	}
	key, _ := m.Args[0].AsStr()
	val, _ := m.Args[1].AsStr()
	if _, err := n.manager().Append("kv", persist.OpPut, key, []byte(val)); err != nil {
		return err
	}
	return n.shipAll(m.Trace)
}

// shipAll pushes the current durable root to every attached replica,
// continuing sc's trace into each ship.
func (n *shardNode) shipAll(sc telemetry.SpanContext) error {
	n.mu.Lock()
	shippers := append([]*shipper(nil), n.shippers...)
	n.mu.Unlock()
	for _, sh := range shippers {
		if err := sh.ship(sc); err != nil {
			return fmt.Errorf("fabric: shard %d ship to %s: %w", n.id, sh.conn.RemoteOrigin(), err)
		}
	}
	return nil
}

// attachShipper registers a connected replica channel and pushes the
// initial full delta.
func (n *shardNode) attachShipper(sh *shipper) error {
	n.mu.Lock()
	n.shippers = append(n.shippers, sh)
	n.mu.Unlock()
	return sh.ship(telemetry.SpanContext{})
}

// expectation captures the durable position this primary has
// acknowledged — what any promoted successor must reach.
func (n *shardNode) expectation() Expectation {
	st := n.manager().Stats()
	return Expectation{Stamp: st.Epoch, LSN: st.LastLSN}
}

// kill simulates primary failure: capture the acked position, kill the
// enclave, tear the gateway and peer endpoints down. In-flight requests
// fail; nothing acked is lost (it was shipped before the ack).
func (n *shardNode) kill() Expectation {
	exp := n.expectation()
	n.w.Kill()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	_ = n.srv.Shutdown(ctx)
	cancel()
	n.ln.Close()
	n.teardownPeers()
	<-n.serveDone
	return exp
}

func (n *shardNode) teardownPeers() {
	n.mu.Lock()
	shippers := n.shippers
	n.shippers = nil
	n.mu.Unlock()
	for _, sh := range shippers {
		sh.close()
	}
	if n.peerHost != nil {
		n.peerHost.Close()
		<-n.peerDone
	}
}

// shutdown is the graceful path (Fabric.Close).
func (n *shardNode) shutdown(ctx context.Context) error {
	err := n.srv.Shutdown(ctx)
	n.ln.Close()
	n.teardownPeers()
	<-n.serveDone
	n.w.Close()
	return err
}
