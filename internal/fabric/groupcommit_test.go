package fabric

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestFabricGroupCommitFailover is the failover drill on the pipelined
// ack path: concurrent load with group commit on, primary killed
// mid-stream, standby promoted — every acknowledged write must be
// readable afterwards. This is the "acked ⇒ durable ∧ replicated"
// invariant surviving the move of the seal, the counter, and the ship
// round out of the per-mutation ack path.
func TestFabricGroupCommitFailover(t *testing.T) {
	f, err := New(Options{
		Shards:         2,
		Replicas:       1,
		GroupCommit:    true,
		CommitMaxDelay: 500 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const (
		writers  = 4
		perPhase = 24
	)
	var ackedMu sync.Mutex
	acked := map[string]string{}
	load := func(phase int) {
		var wg sync.WaitGroup
		for wr := 0; wr < writers; wr++ {
			wg.Add(1)
			go func(wr int) {
				defer wg.Done()
				client := f.Client(RouterConfig{})
				defer client.Close()
				for i := 0; i < perPhase; i++ {
					k := fmt.Sprintf("p%d:w%d:k%04d", phase, wr, i)
					v := fmt.Sprintf("v%d-%d-%d", phase, wr, i)
					if err := client.Put(k, v); err != nil {
						continue // unacked writes carry no promise
					}
					ackedMu.Lock()
					acked[k] = v
					ackedMu.Unlock()
				}
			}(wr)
		}
		wg.Wait()
	}

	load(1)
	if err := f.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	load(2) // WAL tail past the checkpoint, shipped by the pump

	exp, err := f.KillShard(1)
	if err != nil {
		t.Fatal(err)
	}
	load(3) // shard 1 dark; shard 0 keeps pipelining
	if err := f.Promote(1, exp); err != nil {
		t.Fatalf("promote after pipelined load: %v", err)
	}
	load(4)

	verify := f.Client(RouterConfig{})
	defer verify.Close()
	ackedMu.Lock()
	defer ackedMu.Unlock()
	if len(acked) == 0 {
		t.Fatal("no writes were acked")
	}
	for k, want := range acked {
		v, ok, err := verify.Get(k)
		if err != nil || !ok || v != want {
			t.Fatalf("acked write lost: %q = (%q, %v, %v), want %q", k, v, ok, err, want)
		}
	}
	if st := f.Stats(); st.Promotions != 1 {
		t.Fatalf("promotions = %d, want 1", st.Promotions)
	}
}

// TestFabricGroupCommitPausedReplicaFallsBack pins the degradation
// contract: a paused (stalled) replica freezes the replication
// watermark, so acks stop flowing through the pipeline — but they are
// not lost. Each stalled waiter degrades to the synchronous ship path
// after SyncFallbackAfter and completes, exactly as fabric-v1 would
// have acked it. Once the replica resumes, the pipeline catches the
// watermark up and acked writes survive a full failover.
func TestFabricGroupCommitPausedReplicaFallsBack(t *testing.T) {
	f, err := New(Options{
		Shards:            1,
		Replicas:          1,
		GroupCommit:       true,
		SyncFallbackAfter: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	client := f.Client(RouterConfig{})
	defer client.Close()
	acked := map[string]string{}
	put := func(k string) {
		t.Helper()
		if err := client.Put(k, "v-"+k); err != nil {
			t.Fatalf("put %q: %v", k, err)
		}
		acked[k] = "v-" + k
	}

	for i := 0; i < 4; i++ {
		put(fmt.Sprintf("pre:%d", i))
	}

	if err := f.PauseReplication(0, true); err != nil {
		t.Fatal(err)
	}
	// Every one of these must still ack — through the fallback, since
	// the watermark cannot move while the only replica is paused.
	for i := 0; i < 4; i++ {
		put(fmt.Sprintf("stall:%d", i))
	}
	if st := f.Stats(); st.SyncFallbacks < 4 {
		t.Fatalf("sync fallbacks = %d, want >= 4 (one per stalled ack)", st.SyncFallbacks)
	}

	// Resume: the next acked put's watermark wait forces the pump to
	// ship everything the replica missed before that ack leaves.
	if err := f.PauseReplication(0, false); err != nil {
		t.Fatal(err)
	}
	put("resumed")

	exp, err := f.KillShard(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Promote(0, exp); err != nil {
		t.Fatalf("promote after resume: %v", err)
	}
	for k, want := range acked {
		v, ok, err := client.Get(k)
		if err != nil || !ok || v != want {
			t.Fatalf("acked write lost: %q = (%q, %v, %v), want %q", k, v, ok, err, want)
		}
	}
}

// TestFabricGroupCommitStalePromotionRejected keeps the rollback
// defense intact under pipelining: replication pauses, the primary
// keeps acking through the fallback path and seals a checkpoint
// lineage the replica never sees, then dies mid-pipeline with writes
// still in flight. Promoting the stale replica must be refused with
// the typed error — the acked watermark in the expectation includes
// the fallback-acked writes the replica is missing.
func TestFabricGroupCommitStalePromotionRejected(t *testing.T) {
	f, err := New(Options{
		Shards:            1,
		Replicas:          1,
		GroupCommit:       true,
		SyncFallbackAfter: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	client := f.Client(RouterConfig{})
	defer client.Close()
	for i := 0; i < 6; i++ {
		if err := client.Put(fmt.Sprintf("pre:%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}

	if err := f.PauseReplication(0, true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := client.Put(fmt.Sprintf("post:%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Checkpoint(0); err != nil {
		t.Fatal(err)
	}

	// Kill mid-pipeline: background writers still have puts in flight
	// when the primary dies. Their acks either completed (and are part
	// of the expectation) or fail — never silently dropped.
	var wg sync.WaitGroup
	for wr := 0; wr < 2; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			c := f.Client(RouterConfig{})
			defer c.Close()
			for i := 0; i < 16; i++ {
				_ = c.Put(fmt.Sprintf("inflight:%d:%d", wr, i), "v")
			}
		}(wr)
	}
	exp, err := f.KillShard(0)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}

	err = f.Promote(0, exp)
	if !errors.Is(err, ErrStaleReplica) {
		t.Fatalf("stale promotion: %v, want ErrStaleReplica", err)
	}
	var stale *StaleReplicaError
	if !errors.As(err, &stale) {
		t.Fatalf("stale promotion error is not typed: %v", err)
	}
	if st := f.Stats(); st.StalePromotionsRejected != 1 || st.Promotions != 0 {
		t.Fatalf("stats = %+v, want 1 stale rejection, 0 promotions", st)
	}
}
