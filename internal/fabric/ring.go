// Package fabric shards one logical Montsalvat World across N enclave
// gateways and replicates each shard for failover — the horizontal
// scaling layer over internal/serve and internal/persist.
//
// Three mechanisms compose:
//
//   - A partition router: the demo KV keyspace is spread over the
//     shards by a consistent-hash ring (Table). Every gateway installs
//     the ring as its serve.ShardCheck predicate, so a request for a
//     key the shard does not own is rejected with a typed
//     serve.WrongShardError naming the owner; clients (Router) refresh
//     their table on redirects and retry toward the owner under a
//     bounded redirect budget.
//
//   - Attested enclave-to-enclave channels: the serve X25519+quote
//     handshake applied symmetrically — each side quotes the key
//     exchange transcript and verifies the other's measurement — giving
//     an AES-256-GCM peer channel between two enclaves with no client
//     in the loop. Cross-shard object handles issued over a peer
//     channel live in an origin-tagged registry.Namespace: resolving a
//     handle requires presenting the origin shard that issued it, so a
//     handle can never silently cross shard namespaces.
//
//   - Checkpoint-shipping replication: each primary streams its sealed
//     durable root (persist checkpoints + WAL tail + monotonic-counter
//     file) to a warm-standby replica over the peer channel,
//     synchronously inside the gateway's Journal hook — a write is
//     acked only after it is both durable and replicated. Promote
//     recovers the replica from the shipped root and splices it into
//     the routing table at a new epoch; a replica whose recovered
//     counter stamp or LSN trails what the dead primary had acked is
//     rejected (ErrStaleReplica) — the monotonic-counter rollback
//     defense extended across machines.
package fabric

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// vnodesPerShard is the number of ring points each shard contributes.
// More points smooth the key distribution; 64 keeps the imbalance under
// a few percent for the shard counts the fabric targets (1–16).
const vnodesPerShard = 64

// ShardInfo names one shard of the fabric as clients see it.
type ShardInfo struct {
	// ID is the stable shard identity; keys map to IDs, and promotion
	// keeps the ID while changing the address and measurement.
	ID int
	// Addr is the shard's current gateway address.
	Addr string
	// Measurement is the enclave measurement clients must verify when
	// attesting a session to this shard.
	Measurement [32]byte
}

// Origin renders the shard's namespace origin tag — the identity peer
// channels present when resolving handles the shard issued.
func (s ShardInfo) Origin() string { return ShardOrigin(s.ID) }

// ShardOrigin is the canonical namespace origin for a shard ID.
func ShardOrigin(id int) string { return fmt.Sprintf("shard-%d", id) }

// Table is one epoch of the routing topology: the shard set and the
// consistent-hash ring derived from it. Tables are immutable; topology
// changes (promotion) publish a new table at a higher epoch.
type Table struct {
	// Epoch increases with every topology change. A gateway rejecting a
	// wrong-shard request stamps its epoch into the redirect, so a
	// client holding an older table knows a refresh is not optional.
	Epoch  uint64
	Shards []ShardInfo

	points []ringPoint
}

type ringPoint struct {
	hash uint64
	id   int
}

// NewTable builds the ring for a shard set. The ring depends only on
// shard IDs, so every node of the fabric — and every client — derives
// the same key→shard mapping from the same membership, regardless of
// address changes.
func NewTable(epoch uint64, shards []ShardInfo) Table {
	t := Table{Epoch: epoch, Shards: append([]ShardInfo(nil), shards...)}
	t.points = make([]ringPoint, 0, len(shards)*vnodesPerShard)
	for _, s := range t.Shards {
		for v := 0; v < vnodesPerShard; v++ {
			t.points = append(t.points, ringPoint{hash: ringHash(fmt.Sprintf("shard-%d/vnode-%d", s.ID, v)), id: s.ID})
		}
	}
	sort.Slice(t.points, func(i, j int) bool {
		if t.points[i].hash != t.points[j].hash {
			return t.points[i].hash < t.points[j].hash
		}
		return t.points[i].id < t.points[j].id
	})
	return t
}

// Owner maps a key to the shard that owns it: the first ring point at
// or after the key's hash, wrapping at the top.
func (t Table) Owner(key string) int {
	if len(t.points) == 0 {
		return -1
	}
	h := ringHash(key)
	i := sort.Search(len(t.points), func(i int) bool { return t.points[i].hash >= h })
	if i == len(t.points) {
		i = 0
	}
	return t.points[i].id
}

// Shard returns the info for a shard ID.
func (t Table) Shard(id int) (ShardInfo, bool) {
	for _, s := range t.Shards {
		if s.ID == id {
			return s, true
		}
	}
	return ShardInfo{}, false
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	// fnv-1a's trailing bytes pass through only one multiply each, which
	// clusters sequential keys ("user:0001", "user:0002", ...) onto
	// nearby ring positions. A 64-bit finalizer restores avalanche.
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
