package fabric

// replica.go is the warm standby for one shard: a booted World (so the
// replica has an enclave identity to attest and a heap ready to absorb
// recovery) plus a filesystem that receives the primary's shipped
// durable root. Until promotion the replica executes nothing — it only
// authenticates its primary and applies deltas. Promote turns the
// standby into a primary: recover from the shipped root, verify the
// recovered position against what the dead primary had acknowledged
// (the rollback check), and open a gateway.

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"

	"montsalvat/internal/persist"
	"montsalvat/internal/shim"
	"montsalvat/internal/world"
)

// ErrStaleReplica refuses promotion of a replica whose shipped root
// trails the dead primary's acknowledged position: promoting it would
// serve rolled-back state as if it were current — exactly the attack
// (or operational mistake) the monotonic counter exists to stop.
var ErrStaleReplica = errors.New("fabric: stale replica; promotion refused")

// StaleReplicaError carries the positions behind an ErrStaleReplica.
type StaleReplicaError struct {
	Shard                int
	HaveStamp, WantStamp uint64
	HaveLSN, WantLSN     uint64
}

func (e *StaleReplicaError) Error() string {
	return fmt.Sprintf("fabric: stale replica for shard %d: recovered stamp=%d lsn=%d, primary acked stamp=%d lsn=%d",
		e.Shard, e.HaveStamp, e.HaveLSN, e.WantStamp, e.WantLSN)
}

func (e *StaleReplicaError) Unwrap() error { return ErrStaleReplica }

// replicaOrigin is the channel identity of replica idx of a shard.
func replicaOrigin(shardID, idx int) string {
	return fmt.Sprintf("%s/replica-%d", ShardOrigin(shardID), idx)
}

// replicaNode is one warm standby.
type replicaNode struct {
	shardID int
	idx     int
	fab     *Fabric

	w  *world.World
	fs *shim.MemFS

	host     *PeerHost
	ln       net.Listener
	hostDone chan error

	// Applied positions, updated as deltas land (telemetry/debugging;
	// the authoritative promotion check recovers from the filesystem).
	appliedStamp atomic.Uint64
	appliedLSN   atomic.Uint64
}

// newReplicaNode boots a standby for shardID accepting shipments only
// from that shard's primary (primaryMeas). The peer host serves
// replication but no objects: a standby has nothing to call.
func newReplicaNode(f *Fabric, shardID, idx int, primaryMeas [32]byte) (*replicaNode, error) {
	tel := f.nodeTel(replicaOrigin(shardID, idx))
	w, err := f.buildWorld(tel)
	if err != nil {
		return nil, err
	}
	r := &replicaNode{shardID: shardID, idx: idx, fab: f, w: w, fs: shim.NewMemFS()}
	r.host = &PeerHost{
		Identity: PeerIdentity{Platform: f.platform, Enclave: w.Enclave(), Origin: replicaOrigin(shardID, idx)},
		Timeout:  f.opts.PeerTimeout,
		Have:     func() (map[string]int64, error) { return persist.HaveMap(r.fs, shardDir) },
		Apply: func(d persist.Delta) (uint64, uint64, error) {
			if err := persist.ApplyDelta(r.fs, d); err != nil {
				return 0, 0, err
			}
			r.appliedStamp.Store(d.Stamp)
			r.appliedLSN.Store(d.LastLSN)
			return d.Stamp, d.LastLSN, nil
		},
		Logf:        f.opts.Logf,
		OnHandshake: func() { f.peerHandshakes.Add(1) },
		Telemetry:   tel,
	}
	r.host.SetPeers(map[string][32]byte{ShardOrigin(shardID): primaryMeas})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		w.Close()
		return nil, err
	}
	r.ln = ln
	r.hostDone = make(chan error, 1)
	go func() { r.hostDone <- r.host.Serve(ln) }()
	return r, nil
}

// measurement is what the primary must verify when dialing this
// standby.
func (r *replicaNode) measurement() [32]byte {
	return r.w.Enclave().Measurement()
}

// promote turns the standby into a primary for its shard. The shipped
// root is recovered on this replica's enclave (same MRSIGNER, so the
// sealed checkpoints and counter MACs verify), then the recovered
// position is checked against the expectation captured from the dead
// primary: a recovered stamp or LSN below it means the replica missed
// acknowledged state — rolled back relative to what clients were
// promised — and promotion is refused.
func (r *replicaNode) promote(expect Expectation) (*shardNode, error) {
	r.host.Close()
	<-r.hostDone

	kv := persist.NewWorldKV("kv", r.w)
	ref, err := newStoreRef(r.w)
	if err != nil {
		return nil, err
	}
	kv.SetRef(ref)
	// The promoted node takes over the shard's identity: its manager and
	// gateway report under the shard origin, continuing the dead
	// primary's metric series rather than starting a replica-named one.
	tel := r.fab.nodeTel(ShardOrigin(r.shardID))
	mgr, rep, err := r.fab.openManager(r.shardID, r.w, r.fs, kv, tel)
	if err != nil {
		return nil, fmt.Errorf("fabric: promote shard %d: %w", r.shardID, err)
	}
	if rep.CheckpointStamp < expect.Stamp || rep.LastLSN < expect.LSN {
		return nil, &StaleReplicaError{
			Shard:     r.shardID,
			HaveStamp: rep.CheckpointStamp, WantStamp: expect.Stamp,
			HaveLSN: rep.LastLSN, WantLSN: expect.LSN,
		}
	}

	n := &shardNode{id: r.shardID, fab: r.fab, tel: tel, w: r.w, fs: r.fs, kv: kv, mgr: mgr}
	if err := n.startGateway(); err != nil {
		return nil, err
	}
	return n, nil
}

// close tears the standby down without promoting it.
func (r *replicaNode) close() {
	r.host.Close()
	<-r.hostDone
	r.w.Close()
}
