// Package transform implements Montsalvat's bytecode transformation phase
// (paper §5.2).
//
// Given an annotated program, Partition produces the two class sets of
// §5.3 — T (modified trusted classes + proxies of untrusted classes) and
// U (modified untrusted classes + proxies of trusted classes), each
// unioned with the unchanged neutral classes N — plus the enclave
// interface (EDL) describing every generated ecall/ocall edge routine.
//
// For every public method (including constructors) of an annotated class
// the transformer:
//
//   - adds a static relay method to the concrete class — the @CEntryPoint
//     wrapper that looks the mirror object up in the mirror–proxy registry
//     and invokes the real method (Listing 4);
//   - emits a stripped proxy method in the opposite set whose body is
//     replaced by a native transition routine (Listings 2-3);
//   - registers the matching edge routine in the EDL file (Listing 6).
//
// Like the paper's Javassist weaver, the transformer touches only
// annotated classes: neutral classes are copied through unchanged.
package transform

import (
	"fmt"
	"strings"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/edl"
	"montsalvat/internal/wire"
)

// RelayPrefix prefixes generated relay method names.
const RelayPrefix = "relay$"

// RelayName returns the relay method name for a concrete method.
func RelayName(method string) string { return RelayPrefix + method }

// IsRelayName reports whether a method name denotes a generated relay.
func IsRelayName(name string) bool { return strings.HasPrefix(name, RelayPrefix) }

// Report summarises a transformation, mirroring the numbers a build log
// would show.
type Report struct {
	TrustedClasses   int
	UntrustedClasses int
	NeutralClasses   int
	// ProxiesInTrustedSet counts proxies of untrusted classes placed in
	// the trusted set; ProxiesInUntrustedSet is the converse.
	ProxiesInTrustedSet   int
	ProxiesInUntrustedSet int
	// MethodsStripped counts proxy methods whose bodies were replaced by
	// native transitions; RelaysAdded counts generated relay methods.
	MethodsStripped int
	RelaysAdded     int
}

// Result carries the partitioned class sets and the enclave interface.
type Result struct {
	// Trusted is the T ∪ N set used to build the trusted image.
	Trusted *classmodel.Program
	// Untrusted is the U ∪ N set used to build the untrusted image; it
	// retains the application's main entry point (§5.3).
	Untrusted *classmodel.Program
	// Interface is the generated enclave interface (EDL + edge routines).
	Interface *edl.File
	// Report summarises the transformation.
	Report Report
}

// Partition transforms an annotated program into trusted and untrusted
// class sets. The program must validate, and its main class must not be
// trusted: Montsalvat compiles the main entry point into the untrusted
// image (§5.3).
func Partition(p *classmodel.Program) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("transform: %w", err)
	}
	if p.MainClass != "" {
		mc, _ := p.Class(p.MainClass)
		if mc.Ann == classmodel.Trusted {
			return nil, fmt.Errorf("transform: main class %s is @Trusted; the main entry point must live in the untrusted image (§5.3)", p.MainClass)
		}
	}

	res := &Result{
		Trusted:   classmodel.NewProgram(),
		Untrusted: classmodel.NewProgram(),
		Interface: edl.NewFile(),
	}
	res.Untrusted.MainClass = p.MainClass
	res.Untrusted.MainMethod = p.MainMethod

	for _, c := range p.Classes() {
		switch c.Ann {
		case classmodel.Trusted:
			res.Report.TrustedClasses++
			concrete, nRelays, err := withRelays(c)
			if err != nil {
				return nil, err
			}
			res.Report.RelaysAdded += nRelays
			if err := res.Trusted.AddClass(concrete); err != nil {
				return nil, err
			}
			proxy, nStripped := proxyOf(c)
			res.Report.MethodsStripped += nStripped
			res.Report.ProxiesInUntrustedSet++
			if err := res.Untrusted.AddClass(proxy); err != nil {
				return nil, err
			}
			if err := registerRoutines(res.Interface, edl.Ecall, c); err != nil {
				return nil, err
			}

		case classmodel.Untrusted:
			res.Report.UntrustedClasses++
			concrete, nRelays, err := withRelays(c)
			if err != nil {
				return nil, err
			}
			res.Report.RelaysAdded += nRelays
			if err := res.Untrusted.AddClass(concrete); err != nil {
				return nil, err
			}
			proxy, nStripped := proxyOf(c)
			res.Report.MethodsStripped += nStripped
			res.Report.ProxiesInTrustedSet++
			if err := res.Trusted.AddClass(proxy); err != nil {
				return nil, err
			}
			if err := registerRoutines(res.Interface, edl.Ocall, c); err != nil {
				return nil, err
			}

		default: // Neutral classes are not changed by the bytecode weaver.
			res.Report.NeutralClasses++
			if err := res.Trusted.AddClass(c.Clone()); err != nil {
				return nil, err
			}
			if err := res.Untrusted.AddClass(c.Clone()); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}

// relayable reports whether a method gets a relay/proxy pair: public,
// non-generated methods and constructors. Static initializers run at
// image build time and never cross the boundary.
func relayable(m *classmodel.Method) bool {
	return m.Public && !m.Relay && m.Name != classmodel.StaticInitName
}

// withRelays clones a concrete class and injects one relay method per
// public method (Listing 4).
func withRelays(c *classmodel.Class) (*classmodel.Class, int, error) {
	out := c.Clone()
	added := 0
	for _, m := range c.Methods {
		if !relayable(m) {
			continue
		}
		relay := &classmodel.Method{
			Name:       RelayName(m.Name),
			Static:     true,
			Public:     true,
			Relay:      true,
			RelayFor:   m.Name,
			EntryPoint: true,
			// The isolate execution-context parameter is implicit; the
			// proxy hash precedes the forwarded method parameters.
			Params:  append([]classmodel.Param{{Name: "hash", Kind: wire.KindInt}}, m.Params...),
			Returns: m.Returns,
			// Relay bodies are runtime-native: the call edge to the
			// wrapped method keeps it reachable during image build
			// (Fig. 2: relayAccount -> Account ctor -> registry.add).
			Calls: []classmodel.MethodRef{{Class: c.Name, Method: m.Name}},
		}
		if m.IsCtor() {
			relay.Allocates = []string{c.Name}
		}
		if err := out.AddMethod(relay); err != nil {
			return nil, 0, fmt.Errorf("transform: add relay to %s: %w", c.Name, err)
		}
		added++
	}
	return out, added, nil
}

// proxyOf builds the stripped proxy class (Listings 2-3): same public
// surface, no fields (only the implicit identity hash), bodies replaced
// by native transition routines (modelled as nil bodies dispatched by the
// runtime), and no outgoing call or allocation edges — a proxy method's
// code in this image ends at the enclave boundary.
func proxyOf(c *classmodel.Class) (*classmodel.Class, int) {
	proxy := classmodel.NewClass(c.Name, c.Ann)
	proxy.Proxy = true
	stripped := 0
	for _, m := range c.Methods {
		if !relayable(m) {
			continue
		}
		pm := &classmodel.Method{
			Name:    m.Name,
			Static:  m.Static,
			Public:  true,
			Params:  append([]classmodel.Param(nil), m.Params...),
			Returns: m.Returns,
		}
		// AddMethod cannot fail: names were unique on the source class.
		if err := proxy.AddMethod(pm); err != nil {
			panic(fmt.Sprintf("transform: proxy of %s: %v", c.Name, err))
		}
		stripped++
	}
	return proxy, stripped
}

// registerRoutines emits one edge routine per relayable method.
func registerRoutines(f *edl.File, dir edl.Direction, c *classmodel.Class) error {
	for _, m := range c.Methods {
		if !relayable(m) {
			continue
		}
		returnsValue := m.Returns != wire.KindNull && m.Returns != wire.KindInvalid
		if _, err := f.Add(dir, c.Name, RelayName(m.Name), m.Params, returnsValue); err != nil {
			return fmt.Errorf("transform: %w", err)
		}
	}
	return nil
}
