package transform

import (
	"strings"
	"testing"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/demo"
	"montsalvat/internal/edl"
	"montsalvat/internal/wire"
)

func partitionBank(t *testing.T) *Result {
	t.Helper()
	p := demo.MustBankProgram()
	if err := classmodel.AddBuiltins(p); err != nil {
		t.Fatal(err)
	}
	res, err := Partition(p)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	return res
}

func TestSetsContainExpectedClasses(t *testing.T) {
	res := partitionBank(t)

	// Trusted set: concrete Account/AccountRegistry, proxy Person/Main,
	// neutral builtins.
	for _, tc := range []struct {
		class string
		proxy bool
	}{
		{demo.Account, false},
		{demo.AccountRegistry, false},
		{demo.Person, true},
		{demo.Main, true},
	} {
		c, ok := res.Trusted.Class(tc.class)
		if !ok {
			t.Fatalf("trusted set missing %s", tc.class)
		}
		if c.Proxy != tc.proxy {
			t.Errorf("trusted set %s proxy = %v, want %v", tc.class, c.Proxy, tc.proxy)
		}
	}
	// Untrusted set: the converse.
	for _, tc := range []struct {
		class string
		proxy bool
	}{
		{demo.Account, true},
		{demo.AccountRegistry, true},
		{demo.Person, false},
		{demo.Main, false},
	} {
		c, ok := res.Untrusted.Class(tc.class)
		if !ok {
			t.Fatalf("untrusted set missing %s", tc.class)
		}
		if c.Proxy != tc.proxy {
			t.Errorf("untrusted set %s proxy = %v, want %v", tc.class, c.Proxy, tc.proxy)
		}
	}
	// Neutral builtins appear unchanged in both.
	for _, set := range []*classmodel.Program{res.Trusted, res.Untrusted} {
		c, ok := set.Class(classmodel.BuiltinList)
		if !ok || c.Proxy {
			t.Fatal("builtin List missing or proxied")
		}
	}
	// Main entry point stays in the untrusted set only.
	if res.Untrusted.MainClass != demo.Main {
		t.Fatalf("untrusted main = %q", res.Untrusted.MainClass)
	}
	if res.Trusted.MainClass != "" {
		t.Fatalf("trusted set has main %q", res.Trusted.MainClass)
	}
}

func TestRelaysInjected(t *testing.T) {
	res := partitionBank(t)
	acct, _ := res.Trusted.Class(demo.Account)
	relay, ok := acct.Method(RelayName("updateBalance"))
	if !ok {
		t.Fatal("relay$updateBalance missing")
	}
	if !relay.Relay || !relay.Static || !relay.EntryPoint {
		t.Fatalf("relay flags wrong: %+v", relay)
	}
	if relay.RelayFor != "updateBalance" {
		t.Fatalf("RelayFor = %q", relay.RelayFor)
	}
	// First parameter is the proxy hash; the rest forward the method's.
	if len(relay.Params) != 2 || relay.Params[0].Name != "hash" || relay.Params[0].Kind != wire.KindInt {
		t.Fatalf("relay params = %v", relay.Params)
	}
	// The relay keeps the wrapped method reachable (Fig. 2).
	if len(relay.Calls) != 1 || relay.Calls[0] != (classmodel.MethodRef{Class: demo.Account, Method: "updateBalance"}) {
		t.Fatalf("relay calls = %v", relay.Calls)
	}
	// Constructor relays also allocate the class.
	ctorRelay, ok := acct.Method(RelayName(classmodel.CtorName))
	if !ok {
		t.Fatal("constructor relay missing")
	}
	if len(ctorRelay.Allocates) != 1 || ctorRelay.Allocates[0] != demo.Account {
		t.Fatalf("ctor relay allocates = %v", ctorRelay.Allocates)
	}
}

func TestProxiesStripped(t *testing.T) {
	res := partitionBank(t)
	person, _ := res.Trusted.Class(demo.Person)
	if len(person.Fields) != 0 {
		t.Fatalf("proxy Person has fields: %v", person.Fields)
	}
	for _, m := range person.Methods {
		if m.Body != nil {
			t.Fatalf("proxy method %s has body", m.Name)
		}
		if len(m.Calls) != 0 || len(m.Allocates) != 0 {
			t.Fatalf("proxy method %s has edges", m.Name)
		}
		if m.Relay {
			t.Fatalf("proxy method %s marked as relay", m.Name)
		}
	}
	// Proxies expose exactly the public methods.
	orig := demo.MustBankProgram()
	op, _ := orig.Class(demo.Person)
	publics := 0
	for _, m := range op.Methods {
		if m.Public {
			publics++
		}
	}
	if len(person.Methods) != publics {
		t.Fatalf("proxy methods = %d, want %d", len(person.Methods), publics)
	}
}

func TestEDLRoutines(t *testing.T) {
	res := partitionBank(t)
	// Trusted class methods -> ecalls; untrusted -> ocalls.
	if _, ok := res.Interface.Lookup(edl.Ecall, demo.Account, RelayName("updateBalance")); !ok {
		t.Fatal("missing ecall routine for Account.relay$updateBalance")
	}
	if _, ok := res.Interface.Lookup(edl.Ocall, demo.Person, RelayName("transfer")); !ok {
		t.Fatal("missing ocall routine for Person.relay$transfer")
	}
	if _, ok := res.Interface.Lookup(edl.Ecall, demo.Person, RelayName("transfer")); ok {
		t.Fatal("Person routine registered in wrong direction")
	}
	// Counts: trusted relays == ecalls, untrusted relays == ocalls.
	nEcalls := len(res.Interface.Ecalls())
	nOcalls := len(res.Interface.Ocalls())
	if nEcalls == 0 || nOcalls == 0 {
		t.Fatalf("ecalls=%d ocalls=%d", nEcalls, nOcalls)
	}
	if res.Report.RelaysAdded != nEcalls+nOcalls {
		t.Fatalf("RelaysAdded = %d, routines = %d", res.Report.RelaysAdded, nEcalls+nOcalls)
	}
}

func TestReportCounts(t *testing.T) {
	res := partitionBank(t)
	r := res.Report
	if r.TrustedClasses != 2 || r.UntrustedClasses != 2 {
		t.Fatalf("classes: %+v", r)
	}
	if r.NeutralClasses != 5 { // the five builtins
		t.Fatalf("NeutralClasses = %d", r.NeutralClasses)
	}
	if r.ProxiesInTrustedSet != 2 || r.ProxiesInUntrustedSet != 2 {
		t.Fatalf("proxies: %+v", r)
	}
	if r.MethodsStripped == 0 || r.RelaysAdded == 0 {
		t.Fatalf("stripping/relays: %+v", r)
	}
}

func TestRejectsTrustedMain(t *testing.T) {
	p := classmodel.NewProgram()
	c := classmodel.NewClass("M", classmodel.Trusted)
	if err := c.AddMethod(&classmodel.Method{Name: classmodel.MainMethodName, Static: true, Public: true}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddClass(c); err != nil {
		t.Fatal(err)
	}
	p.MainClass = "M"
	if _, err := Partition(p); err == nil || !strings.Contains(err.Error(), "untrusted image") {
		t.Fatalf("err = %v, want trusted-main rejection", err)
	}
}

func TestRejectsInvalidProgram(t *testing.T) {
	p := classmodel.NewProgram()
	c := classmodel.NewClass("C", classmodel.Trusted)
	if err := c.AddField(classmodel.Field{Name: "leak", Kind: classmodel.FieldInt, Public: true}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddClass(c); err != nil {
		t.Fatal(err)
	}
	if _, err := Partition(p); err == nil {
		t.Fatal("Partition accepted invalid program")
	}
}

func TestPrivateMethodsNotRelayed(t *testing.T) {
	p := classmodel.NewProgram()
	c := classmodel.NewClass("Secret", classmodel.Trusted)
	if err := c.AddMethod(&classmodel.Method{Name: "internal", Public: false}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddMethod(&classmodel.Method{Name: "exposed", Public: true}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddClass(c); err != nil {
		t.Fatal(err)
	}
	res, err := Partition(p)
	if err != nil {
		t.Fatal(err)
	}
	sec, _ := res.Trusted.Class("Secret")
	if _, ok := sec.Method(RelayName("internal")); ok {
		t.Fatal("private method got a relay")
	}
	if _, ok := sec.Method(RelayName("exposed")); !ok {
		t.Fatal("public method missing relay")
	}
	proxy, _ := res.Untrusted.Class("Secret")
	if _, ok := proxy.Method("internal"); ok {
		t.Fatal("private method exposed on proxy")
	}
}

func TestOriginalProgramUnchanged(t *testing.T) {
	p := demo.MustBankProgram()
	if err := classmodel.AddBuiltins(p); err != nil {
		t.Fatal(err)
	}
	acctBefore, _ := p.Class(demo.Account)
	nMethods := len(acctBefore.Methods)
	if _, err := Partition(p); err != nil {
		t.Fatal(err)
	}
	acctAfter, _ := p.Class(demo.Account)
	if len(acctAfter.Methods) != nMethods {
		t.Fatal("Partition mutated the input program")
	}
}

func TestRelayNameHelpers(t *testing.T) {
	if RelayName("m") != "relay$m" {
		t.Fatal("RelayName")
	}
	if !IsRelayName("relay$m") || IsRelayName("m") {
		t.Fatal("IsRelayName")
	}
}
