package transform

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/edl"
	"montsalvat/internal/wire"
)

// randomProgram builds a random annotated program: classes with random
// annotations and public/private methods, plus an untrusted main.
func randomProgram(r *rand.Rand) (*classmodel.Program, error) {
	p := classmodel.NewProgram()
	n := 1 + r.Intn(8)
	for i := 0; i < n; i++ {
		ann := []classmodel.Annotation{classmodel.Trusted, classmodel.Untrusted, classmodel.Neutral}[r.Intn(3)]
		c := classmodel.NewClass("C"+strconv.Itoa(i), ann)
		if err := c.AddMethod(&classmodel.Method{Name: classmodel.CtorName, Public: true}); err != nil {
			return nil, err
		}
		for m := 0; m < r.Intn(4); m++ {
			if err := c.AddMethod(&classmodel.Method{
				Name:   "m" + strconv.Itoa(m),
				Public: r.Intn(3) != 0,
				Params: []classmodel.Param{{Name: "v", Kind: wire.KindInt}},
			}); err != nil {
				return nil, err
			}
		}
		if err := p.AddClass(c); err != nil {
			return nil, err
		}
	}
	mainC := classmodel.NewClass("RandMain", classmodel.Untrusted)
	if err := mainC.AddMethod(&classmodel.Method{Name: classmodel.MainMethodName, Static: true, Public: true}); err != nil {
		return nil, err
	}
	if err := p.AddClass(mainC); err != nil {
		return nil, err
	}
	p.MainClass = "RandMain"
	return p, nil
}

// Property: for every random annotated program, the transformation
// invariants of §5.2/§5.3 hold.
func TestQuickTransformInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, err := randomProgram(r)
		if err != nil {
			return false
		}
		res, err := Partition(p)
		if err != nil {
			return false
		}
		for _, c := range p.Classes() {
			tc, inT := res.Trusted.Class(c.Name)
			uc, inU := res.Untrusted.Class(c.Name)
			// Every class appears in both sets.
			if !inT || !inU {
				return false
			}
			switch c.Ann {
			case classmodel.Neutral:
				// Neutral classes unchanged in both sets.
				if tc.Proxy || uc.Proxy {
					return false
				}
				if len(tc.Methods) != len(c.Methods) || len(uc.Methods) != len(c.Methods) {
					return false
				}
			case classmodel.Trusted, classmodel.Untrusted:
				concrete, proxy := tc, uc
				dir := edl.Ecall
				if c.Ann == classmodel.Untrusted {
					concrete, proxy = uc, tc
					dir = edl.Ocall
				}
				if concrete.Proxy || !proxy.Proxy {
					return false
				}
				if len(proxy.Fields) != 0 {
					return false
				}
				for _, m := range c.Methods {
					if !m.Public || m.Name == classmodel.StaticInitName {
						// Private methods: no relay, not on the proxy.
						if _, ok := concrete.Method(RelayName(m.Name)); ok {
							return false
						}
						if _, ok := proxy.Method(m.Name); ok && !m.Public {
							return false
						}
						continue
					}
					// Public method: relay on the concrete class,
					// stripped stub on the proxy, routine in the EDL.
					relay, ok := concrete.Method(RelayName(m.Name))
					if !ok || !relay.Relay || !relay.EntryPoint || !relay.Static {
						return false
					}
					pm, ok := proxy.Method(m.Name)
					if !ok || pm.Body != nil || len(pm.Calls) != 0 {
						return false
					}
					if _, ok := res.Interface.Lookup(dir, c.Name, RelayName(m.Name)); !ok {
						return false
					}
				}
			}
		}
		// Main stays untrusted-only.
		return res.Untrusted.MainClass == p.MainClass && res.Trusted.MainClass == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
