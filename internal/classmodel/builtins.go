package classmodel

import "montsalvat/internal/wire"

// Builtin runtime class names. These are the analog of java.lang/java.util
// classes: neutral utility classes that exist in BOTH images and never use
// proxies (§5.1: "utility classes (i.e., Arrays, Vector, String) ... can
// be accessed in or out of the enclave without the use of proxies").
// Their method implementations are provided natively by the runtime
// (internal/world), so their Method.Body fields are nil here.
const (
	BuiltinString = "String"
	BuiltinBytes  = "Bytes"
	// BuiltinBlob holds one arbitrary serialized neutral value.
	BuiltinBlob = "Blob"
	// BuiltinList is a growable reference list (ArrayList analog).
	BuiltinList = "List"
	// BuiltinArray is the fixed-size backing store of BuiltinList.
	BuiltinArray = "Array"
)

// IsBuiltin reports whether name is a runtime-provided class.
func IsBuiltin(name string) bool {
	switch name {
	case BuiltinString, BuiltinBytes, BuiltinBlob, BuiltinList, BuiltinArray:
		return true
	default:
		return false
	}
}

// Builtins returns fresh declarations of the runtime-provided neutral
// classes, for registration into a Program. Bodies are nil — the runtime
// dispatches them natively.
func Builtins() []*Class {
	str := NewClass(BuiltinString, Neutral)
	mustAdd(str, &Method{Name: CtorName, Public: true, Params: []Param{{Name: "value", Kind: wire.KindString}}, Returns: wire.KindRef})
	mustAdd(str, &Method{Name: "value", Public: true, Returns: wire.KindString})
	mustAdd(str, &Method{Name: "length", Public: true, Returns: wire.KindInt})

	byt := NewClass(BuiltinBytes, Neutral)
	mustAdd(byt, &Method{Name: CtorName, Public: true, Params: []Param{{Name: "value", Kind: wire.KindBytes}}, Returns: wire.KindRef})
	mustAdd(byt, &Method{Name: "value", Public: true, Returns: wire.KindBytes})
	mustAdd(byt, &Method{Name: "length", Public: true, Returns: wire.KindInt})

	blob := NewClass(BuiltinBlob, Neutral)
	mustAdd(blob, &Method{Name: CtorName, Public: true, Params: []Param{{Name: "value", Kind: wire.KindList}}, Returns: wire.KindRef})
	mustAdd(blob, &Method{Name: "value", Public: true, Returns: wire.KindList})

	arr := NewClass(BuiltinArray, Neutral)
	mustAdd(arr, &Method{Name: CtorName, Public: true, Params: []Param{{Name: "capacity", Kind: wire.KindInt}}, Returns: wire.KindRef})

	list := NewClass(BuiltinList, Neutral)
	mustAdd(list, &Method{Name: CtorName, Public: true, Returns: wire.KindRef})
	mustAdd(list, &Method{Name: "add", Public: true, Params: []Param{{Name: "element", Kind: wire.KindRef}}, Returns: wire.KindNull})
	mustAdd(list, &Method{Name: "get", Public: true, Params: []Param{{Name: "index", Kind: wire.KindInt}}, Returns: wire.KindRef})
	mustAdd(list, &Method{Name: "set", Public: true, Params: []Param{{Name: "index", Kind: wire.KindInt}, {Name: "element", Kind: wire.KindRef}}, Returns: wire.KindNull})
	mustAdd(list, &Method{Name: "size", Public: true, Returns: wire.KindInt})

	return []*Class{str, byt, blob, arr, list}
}

// AddBuiltins registers the builtin classes into a program, skipping any
// already present.
func AddBuiltins(p *Program) error {
	for _, c := range Builtins() {
		if _, exists := p.Class(c.Name); exists {
			continue
		}
		if err := p.AddClass(c); err != nil {
			return err
		}
	}
	return nil
}

func mustAdd(c *Class, m *Method) {
	if err := c.AddMethod(m); err != nil {
		panic(err) // static construction of builtins cannot fail
	}
}
