package classmodel

import (
	"strings"
	"testing"

	"montsalvat/internal/wire"
)

func TestAnnotationString(t *testing.T) {
	tests := []struct {
		ann  Annotation
		want string
	}{
		{Neutral, "@Neutral"},
		{Trusted, "@Trusted"},
		{Untrusted, "@Untrusted"},
	}
	for _, tt := range tests {
		if got := tt.ann.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.ann, got, tt.want)
		}
	}
}

func TestAddFieldValidation(t *testing.T) {
	c := NewClass("C", Neutral)
	if err := c.AddField(Field{Name: "x", Kind: FieldInt}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddField(Field{Name: "x", Kind: FieldFloat}); err == nil {
		t.Fatal("duplicate field accepted")
	}
	if err := c.AddField(Field{Name: "r", Kind: FieldRef}); err == nil {
		t.Fatal("ref field without class accepted")
	}
}

func TestAddMethodValidation(t *testing.T) {
	c := NewClass("C", Neutral)
	if err := c.AddMethod(&Method{Name: "m", Public: true}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddMethod(&Method{Name: "m"}); err == nil {
		t.Fatal("duplicate method accepted")
	}
	if err := c.AddMethod(&Method{Name: CtorName, Static: true}); err == nil {
		t.Fatal("static constructor accepted")
	}
	if err := c.AddMethod(&Method{Name: StaticInitName, Static: false}); err == nil {
		t.Fatal("non-static <clinit> accepted")
	}
	if err := c.AddMethod(nil); err == nil {
		t.Fatal("nil method accepted")
	}
}

func TestMethodLookup(t *testing.T) {
	c := NewClass("C", Trusted)
	want := &Method{Name: "doIt", Public: true}
	if err := c.AddMethod(want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Method("doIt")
	if !ok || got != want {
		t.Fatalf("Method(doIt) = %v, %v", got, ok)
	}
	if _, ok := c.Method("nope"); ok {
		t.Fatal("found nonexistent method")
	}
}

func TestLayoutOf(t *testing.T) {
	c := NewClass("C", Trusted)
	fields := []Field{
		{Name: "a", Kind: FieldInt},
		{Name: "s", Kind: FieldString},
		{Name: "b", Kind: FieldFloat},
		{Name: "r", Kind: FieldRef, ClassName: "Other"},
		{Name: "v", Kind: FieldValue},
	}
	for _, f := range fields {
		if err := c.AddField(f); err != nil {
			t.Fatal(err)
		}
	}
	l := LayoutOf(c)
	if l.NumRefs != 3 {
		t.Fatalf("NumRefs = %d, want 3", l.NumRefs)
	}
	if l.DataBytes != 16 {
		t.Fatalf("DataBytes = %d, want 16", l.DataBytes)
	}
	if l.RefSlot["s"] != 0 || l.RefSlot["r"] != 1 || l.RefSlot["v"] != 2 {
		t.Fatalf("RefSlot = %v", l.RefSlot)
	}
	if l.DataOff["a"] != 0 || l.DataOff["b"] != 8 {
		t.Fatalf("DataOff = %v", l.DataOff)
	}
}

func buildValidProgram(t *testing.T) *Program {
	t.Helper()
	p := NewProgram()

	acct := NewClass("Account", Trusted)
	if err := acct.AddField(Field{Name: "balance", Kind: FieldInt}); err != nil {
		t.Fatal(err)
	}
	if err := acct.AddMethod(&Method{Name: CtorName, Public: true, Params: []Param{{Name: "b", Kind: wire.KindInt}}}); err != nil {
		t.Fatal(err)
	}
	if err := acct.AddMethod(&Method{Name: "update", Public: true, Params: []Param{{Name: "v", Kind: wire.KindInt}}}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddClass(acct); err != nil {
		t.Fatal(err)
	}

	mainC := NewClass("Main", Untrusted)
	if err := mainC.AddMethod(&Method{
		Name:      MainMethodName,
		Static:    true,
		Public:    true,
		Calls:     []MethodRef{{Class: "Account", Method: "update"}},
		Allocates: []string{"Account"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddClass(mainC); err != nil {
		t.Fatal(err)
	}
	p.MainClass = "Main"
	return p
}

func TestValidateHappyPath(t *testing.T) {
	p := buildValidProgram(t)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(p *Program) error
		wantSub string
	}{
		{
			name: "missing main class",
			mutate: func(p *Program) error {
				p.MainClass = "Ghost"
				return nil
			},
			wantSub: "main class",
		},
		{
			name: "missing main method",
			mutate: func(p *Program) error {
				p.MainMethod = "ghost"
				return nil
			},
			wantSub: "main method",
		},
		{
			name: "non-static main",
			mutate: func(p *Program) error {
				c, _ := p.Class("Main")
				c.Methods[0].Static = false
				return nil
			},
			wantSub: "must be static",
		},
		{
			name: "public field on annotated class",
			mutate: func(p *Program) error {
				c, _ := p.Class("Account")
				return c.AddField(Field{Name: "leak", Kind: FieldInt, Public: true})
			},
			wantSub: "private",
		},
		{
			name: "unresolved call edge",
			mutate: func(p *Program) error {
				c, _ := p.Class("Main")
				c.Methods[0].Calls = append(c.Methods[0].Calls, MethodRef{Class: "Nope", Method: "x"})
				return nil
			},
			wantSub: "unresolved",
		},
		{
			name: "unknown allocation",
			mutate: func(p *Program) error {
				c, _ := p.Class("Main")
				c.Methods[0].Allocates = append(c.Methods[0].Allocates, "Ghost")
				return nil
			},
			wantSub: "unknown class",
		},
		{
			name: "unknown ref field type",
			mutate: func(p *Program) error {
				c, _ := p.Class("Main")
				return c.AddField(Field{Name: "r", Kind: FieldRef, ClassName: "Ghost"})
			},
			wantSub: "unknown class",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := buildValidProgram(t)
			if err := tt.mutate(p); err != nil {
				t.Fatalf("mutate: %v", err)
			}
			err := p.Validate()
			if err == nil {
				t.Fatal("Validate accepted invalid program")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tt.wantSub)
			}
		})
	}
}

func TestPublicFieldAllowedOnNeutral(t *testing.T) {
	p := buildValidProgram(t)
	util := NewClass("Util", Neutral)
	if err := util.AddField(Field{Name: "shared", Kind: FieldInt, Public: true}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddClass(util); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate rejected public field on neutral class: %v", err)
	}
}

func TestByAnnotation(t *testing.T) {
	p := buildValidProgram(t)
	util := NewClass("Util", Neutral)
	if err := p.AddClass(util); err != nil {
		t.Fatal(err)
	}
	tr, un, ne := p.ByAnnotation()
	if len(tr) != 1 || tr[0] != "Account" {
		t.Fatalf("trusted = %v", tr)
	}
	if len(un) != 1 || un[0] != "Main" {
		t.Fatalf("untrusted = %v", un)
	}
	if len(ne) != 1 || ne[0] != "Util" {
		t.Fatalf("neutral = %v", ne)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := buildValidProgram(t)
	cp := p.Clone()
	// Mutate the clone; the original must be unaffected.
	cc, _ := cp.Class("Account")
	cc.Methods[0].Calls = append(cc.Methods[0].Calls, MethodRef{Class: "Main", Method: MainMethodName})
	if err := cc.AddField(Field{Name: "extra", Kind: FieldInt}); err != nil {
		t.Fatal(err)
	}

	oc, _ := p.Class("Account")
	if len(oc.Methods[0].Calls) != 0 {
		t.Fatal("clone shares Calls slice with original")
	}
	if _, ok := oc.Field("extra"); ok {
		t.Fatal("clone shares Fields with original")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("original corrupted by clone mutation: %v", err)
	}
}

func TestDuplicateClassRejected(t *testing.T) {
	p := NewProgram()
	if err := p.AddClass(NewClass("C", Neutral)); err != nil {
		t.Fatal(err)
	}
	if err := p.AddClass(NewClass("C", Trusted)); err == nil {
		t.Fatal("duplicate class accepted")
	}
}

func TestBuiltins(t *testing.T) {
	p := NewProgram()
	if err := AddBuiltins(p); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{BuiltinString, BuiltinBytes, BuiltinBlob, BuiltinList, BuiltinArray} {
		c, ok := p.Class(name)
		if !ok {
			t.Fatalf("builtin %s not registered", name)
		}
		if c.Ann != Neutral {
			t.Fatalf("builtin %s annotation = %v, want Neutral", name, c.Ann)
		}
		if !IsBuiltin(name) {
			t.Fatalf("IsBuiltin(%s) = false", name)
		}
	}
	if IsBuiltin("Account") {
		t.Fatal("IsBuiltin(Account) = true")
	}
	// Idempotent.
	if err := AddBuiltins(p); err != nil {
		t.Fatalf("second AddBuiltins: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("builtins do not validate: %v", err)
	}
	// List has the expected surface.
	list, _ := p.Class(BuiltinList)
	for _, m := range []string{CtorName, "add", "get", "set", "size"} {
		if _, ok := list.Method(m); !ok {
			t.Fatalf("List missing method %s", m)
		}
	}
}

func TestFieldKindStrings(t *testing.T) {
	if FieldInt.String() != "int" || FieldString.String() != "String" {
		t.Fatal("FieldKind.String broken")
	}
	if !FieldRef.IsRefLike() || FieldInt.IsRefLike() {
		t.Fatal("IsRefLike broken")
	}
}
