// Package classmodel defines the Java-like program representation that
// Montsalvat's toolchain operates on.
//
// The paper's pipeline (§5) manipulates *program elements* — classes with
// @Trusted/@Untrusted/@Neutral annotations, fields, methods, constructors,
// call sites and allocation sites — rather than JVM bytecode semantics.
// This package models exactly those elements: each class declares typed
// fields and methods; each method carries an executable body (a Go
// function over wire.Values) together with its static call and allocation
// edges, which drive the points-to/reachability analysis of the
// native-image builder (§5.3).
//
// Constructors use the JVM-internal name "<init>"; static class
// initialisers use "<clinit>" and are executed at image build time
// (GraalVM's build-time initialisation, §2.2).
package classmodel

import (
	"errors"
	"fmt"
	"sort"

	"montsalvat/internal/shim"
	"montsalvat/internal/wire"
)

// Method name conventions (JVM-internal names).
const (
	CtorName       = "<init>"
	StaticInitName = "<clinit>"
	MainMethodName = "main"
)

// Annotation is a Montsalvat partitioning annotation (§5.1). Classes that
// are not annotated are neutral by default.
type Annotation int

// The three partitioning annotations.
const (
	Neutral Annotation = iota + 1
	Trusted
	Untrusted
)

func (a Annotation) String() string {
	switch a {
	case Neutral:
		return "@Neutral"
	case Trusted:
		return "@Trusted"
	case Untrusted:
		return "@Untrusted"
	default:
		return fmt.Sprintf("Annotation(%d)", int(a))
	}
}

// FieldKind is the storage category of a field.
type FieldKind int

// Field kinds. Scalars live in the object's data area; strings, byte
// arrays, serialized neutral values and references to annotated classes
// live in reference slots pointing to separate heap objects.
const (
	FieldInt FieldKind = iota + 1
	FieldFloat
	FieldBool
	FieldString
	FieldBytes
	// FieldValue stores an arbitrary serialized neutral value (lists,
	// maps) — the analog of a field holding a neutral utility object.
	FieldValue
	// FieldRef references an instance of an annotated (or neutral)
	// application class; Field.ClassName names the static type.
	FieldRef
)

// IsRefLike reports whether the field occupies a reference slot.
func (k FieldKind) IsRefLike() bool {
	switch k {
	case FieldString, FieldBytes, FieldValue, FieldRef:
		return true
	default:
		return false
	}
}

func (k FieldKind) String() string {
	switch k {
	case FieldInt:
		return "int"
	case FieldFloat:
		return "double"
	case FieldBool:
		return "boolean"
	case FieldString:
		return "String"
	case FieldBytes:
		return "byte[]"
	case FieldValue:
		return "Object"
	case FieldRef:
		return "ref"
	default:
		return "invalid"
	}
}

// Field is a class member field. Montsalvat assumes annotated classes are
// properly encapsulated, i.e. fields are private (§5.1 Assumptions).
type Field struct {
	Name string
	Kind FieldKind
	// ClassName is the static type of a FieldRef field.
	ClassName string
	// Public marks a non-encapsulated field; forbidden on annotated
	// classes by Program.Validate.
	Public bool
}

// MethodRef names a method for call edges.
type MethodRef struct {
	Class  string
	Method string
}

func (r MethodRef) String() string { return r.Class + "." + r.Method }

// Env is the runtime interface available to method bodies. It is
// implemented by the partitioned runtime (internal/world); bodies observe
// the same behaviour whether they execute inside or outside the enclave —
// only the costs differ.
type Env interface {
	// New instantiates class with the given constructor arguments and
	// returns an object reference. Instantiating a class of the opposite
	// runtime creates a proxy and performs an enclave transition (§5.2).
	New(class string, args ...wire.Value) (wire.Value, error)
	// Call invokes an instance method on recv (a ref value). Calls on
	// proxies become remote method invocations.
	Call(recv wire.Value, method string, args ...wire.Value) (wire.Value, error)
	// CallStatic invokes a static method of a class.
	CallStatic(class, method string, args ...wire.Value) (wire.Value, error)
	// GetField and SetField access fields of a LOCAL concrete object
	// (per the encapsulation assumption, only a class's own methods use
	// them on self).
	GetField(recv wire.Value, field string) (wire.Value, error)
	SetField(recv wire.Value, field string, v wire.Value) error
	// MemTouch charges the cost of streaming n bytes of workload data
	// through this runtime's memory (enclave traffic pays MEE cost).
	MemTouch(n int)
	// Trusted reports whether the body is executing inside the enclave.
	Trusted() bool
	// FS returns this runtime's filesystem. Inside the enclave every
	// operation is a shim-relayed ocall (§5.4); outside it is direct.
	FS() shim.FS
}

// Body is the executable implementation of a method. self is a ref value
// for instance methods and null for static methods. The returned value
// must be a wire.Value (use wire.Null() for void).
type Body func(env Env, self wire.Value, args []wire.Value) (wire.Value, error)

// Param declares one method parameter.
type Param struct {
	Name string
	Kind wire.Kind
	// ClassName is the static type for KindRef parameters.
	ClassName string
}

// Method is a class method or constructor.
type Method struct {
	Name   string
	Static bool
	Public bool
	Params []Param
	// Returns is the return kind (KindNull for void).
	Returns wire.Kind
	// Body is the executable implementation; nil bodies are permitted
	// only on proxy methods before transformation wiring.
	Body Body
	// Calls and Allocates are the static call and allocation edges used
	// by the points-to analysis (§5.3). They must name every method this
	// body may invoke and every class it may instantiate.
	Calls     []MethodRef
	Allocates []string

	// Relay marks a transformer-generated relay method (§5.2); RelayFor
	// names the concrete method it wraps.
	Relay    bool
	RelayFor string
	// EntryPoint marks the method as a native-image entry point (the
	// @CEntryPoint analog, §5.2): callable from outside the image.
	EntryPoint bool
}

// IsCtor reports whether the method is a constructor.
func (m *Method) IsCtor() bool { return m.Name == CtorName }

// Clone returns a deep copy of the method.
func (m *Method) Clone() *Method {
	cp := *m
	cp.Params = append([]Param(nil), m.Params...)
	cp.Calls = append([]MethodRef(nil), m.Calls...)
	cp.Allocates = append([]string(nil), m.Allocates...)
	return &cp
}

// Class is an application class.
type Class struct {
	Name string
	Ann  Annotation
	// Proxy marks transformer-generated proxy classes (§5.2).
	Proxy bool
	// Fields in declaration order.
	Fields []Field
	// Methods in declaration order; Montsalvat adds relay methods here
	// during transformation.
	Methods []*Method

	methodIndex map[string]int
}

// NewClass creates a class with the given annotation.
func NewClass(name string, ann Annotation) *Class {
	if ann == 0 {
		ann = Neutral
	}
	return &Class{Name: name, Ann: ann, methodIndex: make(map[string]int)}
}

// AddField appends a field declaration.
func (c *Class) AddField(f Field) error {
	for _, existing := range c.Fields {
		if existing.Name == f.Name {
			return fmt.Errorf("classmodel: duplicate field %s.%s", c.Name, f.Name)
		}
	}
	if f.Kind == FieldRef && f.ClassName == "" {
		return fmt.Errorf("classmodel: ref field %s.%s missing class name", c.Name, f.Name)
	}
	c.Fields = append(c.Fields, f)
	return nil
}

// AddMethod appends a method declaration.
func (c *Class) AddMethod(m *Method) error {
	if m == nil || m.Name == "" {
		return fmt.Errorf("classmodel: invalid method on %s", c.Name)
	}
	if _, dup := c.methodIndex[m.Name]; dup {
		return fmt.Errorf("classmodel: duplicate method %s.%s", c.Name, m.Name)
	}
	if m.IsCtor() && m.Static {
		return fmt.Errorf("classmodel: constructor %s.%s cannot be static", c.Name, m.Name)
	}
	if m.Name == StaticInitName && !m.Static {
		return fmt.Errorf("classmodel: %s.%s must be static", c.Name, m.Name)
	}
	c.methodIndex[m.Name] = len(c.Methods)
	c.Methods = append(c.Methods, m)
	return nil
}

// Method looks a method up by name.
func (c *Class) Method(name string) (*Method, bool) {
	i, ok := c.methodIndex[name]
	if !ok {
		return nil, false
	}
	return c.Methods[i], true
}

// Field looks a field up by name.
func (c *Class) Field(name string) (Field, bool) {
	for _, f := range c.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// Clone returns a deep copy of the class.
func (c *Class) Clone() *Class {
	cp := NewClass(c.Name, c.Ann)
	cp.Proxy = c.Proxy
	cp.Fields = append([]Field(nil), c.Fields...)
	for _, m := range c.Methods {
		// Clones preserve declaration order; AddMethod cannot fail here
		// because the source class was already consistent.
		if err := cp.AddMethod(m.Clone()); err != nil {
			panic(fmt.Sprintf("classmodel: clone: %v", err))
		}
	}
	return cp
}

// Layout describes how a class's fields map onto a heap object: reference
// slots for ref-like fields, 8-byte data slots for scalars.
type Layout struct {
	// RefSlot maps field name to reference slot index.
	RefSlot map[string]int
	// DataOff maps field name to byte offset in the data area.
	DataOff map[string]int
	// NumRefs and DataBytes size the object.
	NumRefs   int
	DataBytes int
}

// LayoutOf computes the deterministic object layout of a class.
func LayoutOf(c *Class) Layout {
	l := Layout{RefSlot: make(map[string]int), DataOff: make(map[string]int)}
	for _, f := range c.Fields {
		if f.Kind.IsRefLike() {
			l.RefSlot[f.Name] = l.NumRefs
			l.NumRefs++
		} else {
			l.DataOff[f.Name] = l.DataBytes
			l.DataBytes += 8
		}
	}
	return l
}

// Program is a closed-world set of classes plus the main entry point.
type Program struct {
	classes map[string]*Class
	order   []string
	// MainClass/MainMethod name the application entry point; the main
	// method is placed in the untrusted image (§5.3).
	MainClass  string
	MainMethod string
}

// NewProgram creates an empty program.
func NewProgram() *Program {
	return &Program{classes: make(map[string]*Class), MainMethod: MainMethodName}
}

// AddClass registers a class.
func (p *Program) AddClass(c *Class) error {
	if c == nil || c.Name == "" {
		return errors.New("classmodel: invalid class")
	}
	if _, dup := p.classes[c.Name]; dup {
		return fmt.Errorf("classmodel: duplicate class %s", c.Name)
	}
	p.classes[c.Name] = c
	p.order = append(p.order, c.Name)
	return nil
}

// Class looks a class up by name.
func (p *Program) Class(name string) (*Class, bool) {
	c, ok := p.classes[name]
	return c, ok
}

// Classes returns the classes in registration order.
func (p *Program) Classes() []*Class {
	out := make([]*Class, 0, len(p.order))
	for _, name := range p.order {
		out = append(out, p.classes[name])
	}
	return out
}

// ClassNames returns the registered class names in registration order.
func (p *Program) ClassNames() []string {
	return append([]string(nil), p.order...)
}

// Lookup resolves a method reference.
func (p *Program) Lookup(ref MethodRef) (*Class, *Method, bool) {
	c, ok := p.classes[ref.Class]
	if !ok {
		return nil, nil, false
	}
	m, ok := c.Method(ref.Method)
	if !ok {
		return nil, nil, false
	}
	return c, m, true
}

// ByAnnotation partitions the program's class names into trusted,
// untrusted and neutral sets (the T, U, N sets of §5.3), sorted.
func (p *Program) ByAnnotation() (trusted, untrusted, neutral []string) {
	for name, c := range p.classes {
		switch c.Ann {
		case Trusted:
			trusted = append(trusted, name)
		case Untrusted:
			untrusted = append(untrusted, name)
		default:
			neutral = append(neutral, name)
		}
	}
	sort.Strings(trusted)
	sort.Strings(untrusted)
	sort.Strings(neutral)
	return trusted, untrusted, neutral
}

// Validate checks closed-world consistency: the main entry point exists
// and is static, every call and allocation edge resolves, ref fields name
// known classes, and annotated classes are properly encapsulated (§5.1:
// "We assume all annotated classes are properly encapsulated (i.e., class
// fields are private)").
func (p *Program) Validate() error {
	if p.MainClass != "" {
		mc, ok := p.classes[p.MainClass]
		if !ok {
			return fmt.Errorf("classmodel: main class %s not found", p.MainClass)
		}
		mm, ok := mc.Method(p.MainMethod)
		if !ok {
			return fmt.Errorf("classmodel: main method %s.%s not found", p.MainClass, p.MainMethod)
		}
		if !mm.Static {
			return fmt.Errorf("classmodel: main method %s.%s must be static", p.MainClass, p.MainMethod)
		}
	}
	for _, name := range p.order {
		c := p.classes[name]
		if c.Ann != Neutral {
			for _, f := range c.Fields {
				if f.Public {
					return fmt.Errorf("classmodel: %s field %s.%s must be private (encapsulation assumption)", c.Ann, c.Name, f.Name)
				}
			}
		}
		for _, f := range c.Fields {
			if f.Kind == FieldRef {
				if _, ok := p.classes[f.ClassName]; !ok {
					return fmt.Errorf("classmodel: field %s.%s references unknown class %s", c.Name, f.Name, f.ClassName)
				}
			}
		}
		for _, m := range c.Methods {
			for _, call := range m.Calls {
				if _, _, ok := p.Lookup(call); !ok {
					return fmt.Errorf("classmodel: %s.%s calls unresolved %s", c.Name, m.Name, call)
				}
			}
			for _, alloc := range m.Allocates {
				ac, ok := p.classes[alloc]
				if !ok {
					return fmt.Errorf("classmodel: %s.%s allocates unknown class %s", c.Name, m.Name, alloc)
				}
				if _, ok := ac.Method(CtorName); !ok {
					return fmt.Errorf("classmodel: %s.%s allocates %s which has no constructor", c.Name, m.Name, alloc)
				}
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the program.
func (p *Program) Clone() *Program {
	cp := NewProgram()
	cp.MainClass = p.MainClass
	cp.MainMethod = p.MainMethod
	for _, name := range p.order {
		// Cannot fail: names are unique in the source program.
		if err := cp.AddClass(p.classes[name].Clone()); err != nil {
			panic(fmt.Sprintf("classmodel: clone: %v", err))
		}
	}
	return cp
}
