package isolate

import (
	"bytes"
	"errors"
	"strconv"
	"testing"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/heap"
	"montsalvat/internal/wire"
)

// testIsolate builds an isolate with an Account-like class registered.
func testIsolate(t *testing.T) *Isolate {
	t.Helper()
	h, err := heap.NewPlain(heap.Config{InitialSemi: 1 << 16, MaxSemi: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	var hashCounter int64
	iso, err := New(0, h, func() int64 { hashCounter++; return hashCounter })
	if err != nil {
		t.Fatal(err)
	}

	acct := classmodel.NewClass("Account", classmodel.Trusted)
	for _, f := range []classmodel.Field{
		{Name: "owner", Kind: classmodel.FieldString},
		{Name: "balance", Kind: classmodel.FieldInt},
		{Name: "rate", Kind: classmodel.FieldFloat},
		{Name: "open", Kind: classmodel.FieldBool},
		{Name: "tags", Kind: classmodel.FieldValue},
		{Name: "raw", Kind: classmodel.FieldBytes},
		{Name: "linked", Kind: classmodel.FieldRef, ClassName: "Account"},
	} {
		if err := acct.AddField(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := iso.RegisterClass(acct, 1); err != nil {
		t.Fatal(err)
	}
	return iso
}

func TestNewObjectHashAndClass(t *testing.T) {
	iso := testIsolate(t)
	h, err := iso.NewObject("Account", 777)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := iso.HashOf(h)
	if err != nil || hash != 777 {
		t.Fatalf("HashOf = %d, %v; want 777", hash, err)
	}
	name, err := iso.ClassNameOf(h)
	if err != nil || name != "Account" {
		t.Fatalf("ClassNameOf = %q, %v", name, err)
	}
}

func TestNewObjectUnknownClass(t *testing.T) {
	iso := testIsolate(t)
	if _, err := iso.NewObject("Ghost", 1); !errors.Is(err, ErrUnknownClass) {
		t.Fatalf("err = %v, want ErrUnknownClass", err)
	}
}

func TestScalarFields(t *testing.T) {
	iso := testIsolate(t)
	h, err := iso.NewObject("Account", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := iso.SetFieldScalar(h, "balance", wire.Int(-250)); err != nil {
		t.Fatal(err)
	}
	if err := iso.SetFieldScalar(h, "rate", wire.Float(1.75)); err != nil {
		t.Fatal(err)
	}
	if err := iso.SetFieldScalar(h, "open", wire.Bool(true)); err != nil {
		t.Fatal(err)
	}
	if v, err := iso.GetField(h, "balance"); err != nil || !v.Equal(wire.Int(-250)) {
		t.Fatalf("balance = %v, %v", v, err)
	}
	if v, err := iso.GetField(h, "rate"); err != nil || !v.Equal(wire.Float(1.75)) {
		t.Fatalf("rate = %v, %v", v, err)
	}
	if v, err := iso.GetField(h, "open"); err != nil || !v.Equal(wire.Bool(true)) {
		t.Fatalf("open = %v, %v", v, err)
	}
}

func TestScalarKindMismatch(t *testing.T) {
	iso := testIsolate(t)
	h, _ := iso.NewObject("Account", 1)
	if err := iso.SetFieldScalar(h, "balance", wire.Str("x")); !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("err = %v, want ErrKindMismatch", err)
	}
	if err := iso.SetFieldScalar(h, "owner", wire.Str("x")); !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("string via SetFieldScalar: err = %v, want ErrKindMismatch", err)
	}
	if err := iso.SetFieldScalar(h, "ghost", wire.Int(1)); !errors.Is(err, ErrUnknownField) {
		t.Fatalf("err = %v, want ErrUnknownField", err)
	}
}

func TestStringField(t *testing.T) {
	iso := testIsolate(t)
	h, _ := iso.NewObject("Account", 1)
	if v, err := iso.GetField(h, "owner"); err != nil || !v.IsNull() {
		t.Fatalf("unset string field = %v, %v; want null", v, err)
	}
	if err := iso.SetFieldData(h, "owner", wire.Str("Alice")); err != nil {
		t.Fatal(err)
	}
	if v, err := iso.GetField(h, "owner"); err != nil || !v.Equal(wire.Str("Alice")) {
		t.Fatalf("owner = %v, %v; want Alice", v, err)
	}
	// Overwrite.
	if err := iso.SetFieldData(h, "owner", wire.Str("Bob with a much longer name")); err != nil {
		t.Fatal(err)
	}
	if v, _ := iso.GetField(h, "owner"); !v.Equal(wire.Str("Bob with a much longer name")) {
		t.Fatalf("owner after overwrite = %v", v)
	}
}

func TestBytesAndValueFields(t *testing.T) {
	iso := testIsolate(t)
	h, _ := iso.NewObject("Account", 1)
	raw := []byte{0, 1, 2, 3, 255}
	if err := iso.SetFieldData(h, "raw", wire.Bytes(raw)); err != nil {
		t.Fatal(err)
	}
	v, err := iso.GetField(h, "raw")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := v.AsBytes()
	if !bytes.Equal(got, raw) {
		t.Fatalf("raw = %v, want %v", got, raw)
	}

	tags := wire.List(wire.Str("vip"), wire.Int(3))
	if err := iso.SetFieldData(h, "tags", tags); err != nil {
		t.Fatal(err)
	}
	if v, err := iso.GetField(h, "tags"); err != nil || !v.Equal(tags) {
		t.Fatalf("tags = %v, %v", v, err)
	}
}

func TestRefField(t *testing.T) {
	iso := testIsolate(t)
	a, _ := iso.NewObject("Account", 10)
	b, _ := iso.NewObject("Account", 20)
	if err := iso.SetFieldRef(a, "linked", b); err != nil {
		t.Fatal(err)
	}
	v, err := iso.GetField(a, "linked")
	if err != nil {
		t.Fatal(err)
	}
	class, hash, ok := v.AsRef()
	if !ok || class != "Account" || hash != 20 {
		t.Fatalf("linked = %v", v)
	}
	// Handle access.
	bh, err := iso.GetFieldRefHandle(a, "linked")
	if err != nil || bh == 0 {
		t.Fatalf("GetFieldRefHandle: %v, %v", bh, err)
	}
	if got, _ := iso.HashOf(bh); got != 20 {
		t.Fatalf("target hash = %d, want 20", got)
	}
	// Null out.
	if err := iso.SetFieldRef(a, "linked", 0); err != nil {
		t.Fatal(err)
	}
	if v, _ := iso.GetField(a, "linked"); !v.IsNull() {
		t.Fatalf("cleared ref = %v", v)
	}
	if bh, err := iso.GetFieldRefHandle(a, "linked"); err != nil || bh != 0 {
		t.Fatalf("cleared ref handle = %v, %v", bh, err)
	}
}

func TestFieldsSurviveGC(t *testing.T) {
	iso := testIsolate(t)
	a, _ := iso.NewObject("Account", 1)
	b, _ := iso.NewObject("Account", 2)
	if err := iso.SetFieldData(a, "owner", wire.Str("Alice")); err != nil {
		t.Fatal(err)
	}
	if err := iso.SetFieldScalar(a, "balance", wire.Int(100)); err != nil {
		t.Fatal(err)
	}
	if err := iso.SetFieldRef(a, "linked", b); err != nil {
		t.Fatal(err)
	}
	if err := iso.SetFieldData(b, "owner", wire.Str("Bob")); err != nil {
		t.Fatal(err)
	}
	if err := iso.Collect(); err != nil {
		t.Fatal(err)
	}
	if v, _ := iso.GetField(a, "owner"); !v.Equal(wire.Str("Alice")) {
		t.Fatalf("owner after GC = %v", v)
	}
	if v, _ := iso.GetField(a, "balance"); !v.Equal(wire.Int(100)) {
		t.Fatalf("balance after GC = %v", v)
	}
	lh, err := iso.GetFieldRefHandle(a, "linked")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := iso.GetField(lh, "owner"); !v.Equal(wire.Str("Bob")) {
		t.Fatalf("linked owner after GC = %v", v)
	}
}

func TestListOperations(t *testing.T) {
	iso := testIsolate(t)
	list, err := iso.NewList()
	if err != nil {
		t.Fatal(err)
	}
	if n, err := iso.ListSize(list); err != nil || n != 0 {
		t.Fatalf("empty size = %d, %v", n, err)
	}
	// Grow past the initial capacity of 4.
	const count = 37
	for i := 0; i < count; i++ {
		obj, err := iso.NewObject("Account", int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		if err := iso.SetFieldScalar(obj, "balance", wire.Int(int64(i*i))); err != nil {
			t.Fatal(err)
		}
		if err := iso.ListAdd(list, obj); err != nil {
			t.Fatalf("ListAdd %d: %v", i, err)
		}
		if err := iso.Release(obj); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := iso.ListSize(list); n != count {
		t.Fatalf("size = %d, want %d", n, count)
	}
	if err := iso.Collect(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < count; i++ {
		e, err := iso.ListGet(list, i)
		if err != nil {
			t.Fatalf("ListGet %d: %v", i, err)
		}
		if hash, _ := iso.HashOf(e); hash != int64(100+i) {
			t.Fatalf("elem %d hash = %d", i, hash)
		}
		if v, _ := iso.GetField(e, "balance"); !v.Equal(wire.Int(int64(i * i))) {
			t.Fatalf("elem %d balance = %v", i, v)
		}
		if err := iso.Release(e); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := iso.ListGet(list, count); !errors.Is(err, ErrIndex) {
		t.Fatalf("OOB get: err = %v, want ErrIndex", err)
	}
}

func TestListSet(t *testing.T) {
	iso := testIsolate(t)
	list, _ := iso.NewList()
	a, _ := iso.NewObject("Account", 1)
	b, _ := iso.NewObject("Account", 2)
	if err := iso.ListAdd(list, a); err != nil {
		t.Fatal(err)
	}
	if err := iso.ListSet(list, 0, b); err != nil {
		t.Fatal(err)
	}
	e, _ := iso.ListGet(list, 0)
	if hash, _ := iso.HashOf(e); hash != 2 {
		t.Fatalf("after set hash = %d, want 2", hash)
	}
	if err := iso.ListSet(list, 5, b); !errors.Is(err, ErrIndex) {
		t.Fatalf("OOB set: err = %v, want ErrIndex", err)
	}
}

func TestBuiltinValues(t *testing.T) {
	iso := testIsolate(t)
	sh, err := iso.NewString("hello")
	if err != nil {
		t.Fatal(err)
	}
	if s, err := iso.StrValue(sh); err != nil || s != "hello" {
		t.Fatalf("StrValue = %q, %v", s, err)
	}
	bh, err := iso.NewBytes([]byte{9, 8})
	if err != nil {
		t.Fatal(err)
	}
	if b, err := iso.BytesValue(bh); err != nil || !bytes.Equal(b, []byte{9, 8}) {
		t.Fatalf("BytesValue = %v, %v", b, err)
	}
	v := wire.Map(wire.Pair{Key: "k", Val: wire.Int(1)})
	vh, err := iso.NewBlob(v)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := iso.BlobValue(vh); err != nil || !got.Equal(v) {
		t.Fatalf("BlobValue = %v, %v", got, err)
	}
	// Type confusion is rejected.
	if _, err := iso.StrValue(bh); !errors.Is(err, ErrNotBuiltin) {
		t.Fatalf("StrValue on Bytes: err = %v, want ErrNotBuiltin", err)
	}
	if _, err := iso.ListSize(sh); !errors.Is(err, ErrNotBuiltin) {
		t.Fatalf("ListSize on String: err = %v, want ErrNotBuiltin", err)
	}
}

func TestProxyObjectHasOnlyHash(t *testing.T) {
	iso := testIsolate(t)
	proxy := classmodel.NewClass("Person", classmodel.Untrusted)
	proxy.Proxy = true
	if err := iso.RegisterClass(proxy, 2); err != nil {
		t.Fatal(err)
	}
	h, err := iso.NewObject("Person", 42)
	if err != nil {
		t.Fatal(err)
	}
	if hash, _ := iso.HashOf(h); hash != 42 {
		t.Fatalf("proxy hash = %d", hash)
	}
	if err := iso.SetFieldScalar(h, "anything", wire.Int(1)); !errors.Is(err, ErrUnknownField) {
		t.Fatalf("proxy field write: err = %v, want ErrUnknownField", err)
	}
}

func TestRegisterClassValidation(t *testing.T) {
	iso := testIsolate(t)
	if err := iso.RegisterClass(nil, 3); err == nil {
		t.Fatal("nil class accepted")
	}
	c := classmodel.NewClass("X", classmodel.Neutral)
	if err := iso.RegisterClass(c, 0); err == nil {
		t.Fatal("zero id accepted")
	}
	if err := iso.RegisterClass(c, 5); err != nil {
		t.Fatal(err)
	}
	if err := iso.RegisterClass(c, 6); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	// Builtins are silently skipped.
	b := classmodel.NewClass(classmodel.BuiltinString, classmodel.Neutral)
	if err := iso.RegisterClass(b, 7); err != nil {
		t.Fatalf("builtin registration: %v", err)
	}
}

func TestManyObjectsStress(t *testing.T) {
	iso := testIsolate(t)
	list, err := iso.NewList()
	if err != nil {
		t.Fatal(err)
	}
	// Enough data to force several collections and semispace growth.
	for i := 0; i < 500; i++ {
		obj, err := iso.NewObject("Account", int64(i))
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if err := iso.SetFieldData(obj, "owner", wire.Str("owner-"+strconv.Itoa(i))); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if err := iso.ListAdd(list, obj); err != nil {
				t.Fatal(err)
			}
		}
		if err := iso.Release(obj); err != nil {
			t.Fatal(err)
		}
	}
	if err := iso.Collect(); err != nil {
		t.Fatal(err)
	}
	n, err := iso.ListSize(list)
	if err != nil {
		t.Fatal(err)
	}
	if n != 167 {
		t.Fatalf("kept = %d, want 167", n)
	}
	for i := 0; i < n; i++ {
		e, err := iso.ListGet(list, i)
		if err != nil {
			t.Fatal(err)
		}
		want := wire.Str("owner-" + strconv.Itoa(i*3))
		if v, _ := iso.GetField(e, "owner"); !v.Equal(want) {
			t.Fatalf("elem %d owner = %v, want %v", i, v, want)
		}
		if err := iso.Release(e); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFieldKindMisuse(t *testing.T) {
	iso := testIsolate(t)
	a, _ := iso.NewObject("Account", 1)
	b, _ := iso.NewObject("Account", 2)
	// SetFieldRef on a non-ref field.
	if err := iso.SetFieldRef(a, "balance", b); !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("SetFieldRef on int: %v", err)
	}
	// SetFieldData on a scalar field.
	if err := iso.SetFieldData(a, "balance", wire.Int(1)); !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("SetFieldData on int: %v", err)
	}
	// SetFieldData with the wrong payload kind.
	if err := iso.SetFieldData(a, "owner", wire.Int(1)); !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("SetFieldData int into String: %v", err)
	}
	if err := iso.SetFieldData(a, "raw", wire.Str("x")); !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("SetFieldData str into bytes: %v", err)
	}
	// GetFieldRefHandle on a non-ref field.
	if _, err := iso.GetFieldRefHandle(a, "balance"); !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("GetFieldRefHandle on int: %v", err)
	}
	// Unknown fields.
	if _, err := iso.GetField(a, "ghost"); !errors.Is(err, ErrUnknownField) {
		t.Fatalf("GetField ghost: %v", err)
	}
}

func TestBuiltinFieldAccessRejected(t *testing.T) {
	iso := testIsolate(t)
	s, _ := iso.NewString("str")
	// Builtins have no declared fields.
	if _, err := iso.GetField(s, "anything"); !errors.Is(err, ErrUnknownClass) {
		t.Fatalf("GetField on String: %v", err)
	}
}

func TestNewIsolateValidation(t *testing.T) {
	h, err := heap.NewPlain(heap.Config{InitialSemi: 1 << 14, MaxSemi: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(0, nil, func() int64 { return 1 }); err == nil {
		t.Fatal("nil heap accepted")
	}
	if _, err := New(0, h, nil); err == nil {
		t.Fatal("nil hash source accepted")
	}
}

func TestListAddRejectsNonList(t *testing.T) {
	iso := testIsolate(t)
	a, _ := iso.NewObject("Account", 1)
	b, _ := iso.NewObject("Account", 2)
	if err := iso.ListAdd(a, b); !errors.Is(err, ErrNotBuiltin) {
		t.Fatalf("ListAdd on Account: %v", err)
	}
	if _, err := iso.ListGet(a, 0); !errors.Is(err, ErrNotBuiltin) {
		t.Fatalf("ListGet on Account: %v", err)
	}
}
