// Package isolate implements the GraalVM-isolate analog: an independent
// VM instance with its own managed heap, object model and garbage
// collection (paper §2.2: "GraalVM native-image provides the possibility
// of creating multiple independent VM instances at runtime, which are
// called isolates. Each isolate operates on a separate heap, allowing
// garbage collection to be performed independently").
//
// The isolate maps classmodel objects onto heap objects. Every object
// stores its identity hash in the first 8 bytes of its data area — the
// hash that proxy objects carry and that keys the mirror–proxy registry
// (§5.2). Reference-like fields (String, byte[], serialized values,
// references to application classes) occupy reference slots pointing at
// child objects; scalar fields live in the data area.
//
// Montsalvat creates one default isolate per runtime (trusted and
// untrusted); the multi-isolate extension from the paper's future work
// (§7) is supported by giving each isolate an ID.
package isolate

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/heap"
	"montsalvat/internal/wire"
)

// Builtin class identifiers (negative; application classes are positive).
const (
	ClassIDString int32 = -1
	ClassIDBytes  int32 = -2
	ClassIDBlob   int32 = -3
	ClassIDArray  int32 = -4
	ClassIDList   int32 = -5
)

const hashBytes = 8

// Errors returned by isolate operations.
var (
	ErrUnknownClass = errors.New("isolate: unknown class")
	ErrUnknownField = errors.New("isolate: unknown field")
	ErrKindMismatch = errors.New("isolate: field/value kind mismatch")
	ErrNotBuiltin   = errors.New("isolate: object is not of the expected builtin class")
	ErrIndex        = errors.New("isolate: list index out of range")
)

type classInfo struct {
	name   string
	id     int32
	decl   *classmodel.Class
	layout classmodel.Layout
}

// Isolate is one VM instance: a heap plus the class metadata loaded from
// a native image. It is not safe for concurrent use; the owning runtime
// serialises access (stop-the-world discipline).
type Isolate struct {
	id       int
	heap     *heap.Heap
	nextHash func() int64

	classes map[string]*classInfo
	byID    map[int32]*classInfo
}

// New creates an isolate over h. nextHash supplies identity hashes
// (shared across runtimes so hashes are globally unique, the paper's
// "hashing algorithm like MD5 to minimize hash collisions").
func New(id int, h *heap.Heap, nextHash func() int64) (*Isolate, error) {
	if h == nil {
		return nil, errors.New("isolate: nil heap")
	}
	if nextHash == nil {
		return nil, errors.New("isolate: nil hash source")
	}
	return &Isolate{
		id:       id,
		heap:     h,
		nextHash: nextHash,
		classes:  make(map[string]*classInfo),
		byID:     make(map[int32]*classInfo),
	}, nil
}

// ID returns the isolate identifier.
func (iso *Isolate) ID() int { return iso.id }

// Heap exposes the underlying heap (for registries, GC helpers, stats).
func (iso *Isolate) Heap() *heap.Heap { return iso.heap }

// RegisterClass loads one image class into the isolate's metadata.
// Builtin classes are provided natively and must not be registered.
func (iso *Isolate) RegisterClass(c *classmodel.Class, id int32) error {
	if c == nil {
		return errors.New("isolate: nil class")
	}
	if classmodel.IsBuiltin(c.Name) {
		return nil
	}
	if id <= 0 {
		return fmt.Errorf("isolate: class %s needs a positive id, got %d", c.Name, id)
	}
	if _, dup := iso.classes[c.Name]; dup {
		return fmt.Errorf("isolate: class %s already registered", c.Name)
	}
	info := &classInfo{name: c.Name, id: id, decl: c, layout: classmodel.LayoutOf(c)}
	iso.classes[c.Name] = info
	iso.byID[id] = info
	return nil
}

// ClassDecl returns the registered declaration of a class.
func (iso *Isolate) ClassDecl(name string) (*classmodel.Class, bool) {
	info, ok := iso.classes[name]
	if !ok {
		return nil, false
	}
	return info.decl, true
}

// NewObject allocates an instance of an application class with the given
// identity hash. Proxy classes have no declared fields, so their
// instances carry only the hash (Listings 2-3).
func (iso *Isolate) NewObject(class string, hash int64) (heap.Handle, error) {
	info, ok := iso.classes[class]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownClass, class)
	}
	addr, err := iso.heap.Alloc(info.id, info.layout.NumRefs, hashBytes+info.layout.DataBytes)
	if err != nil {
		return 0, err
	}
	if err := iso.writeHash(addr, hash); err != nil {
		return 0, err
	}
	return iso.heap.NewHandle(addr)
}

// NewString allocates a String object.
func (iso *Isolate) NewString(s string) (heap.Handle, error) {
	return iso.newDataObject(ClassIDString, []byte(s))
}

// NewBytes allocates a Bytes object.
func (iso *Isolate) NewBytes(b []byte) (heap.Handle, error) {
	return iso.newDataObject(ClassIDBytes, b)
}

// NewBlob allocates a Blob holding one serialized neutral value.
func (iso *Isolate) NewBlob(v wire.Value) (heap.Handle, error) {
	return iso.newDataObject(ClassIDBlob, wire.Marshal(v))
}

// NewList allocates an empty List (growable reference list).
func (iso *Isolate) NewList() (heap.Handle, error) {
	arrAddr, err := iso.heap.Alloc(ClassIDArray, 4, hashBytes)
	if err != nil {
		return 0, err
	}
	if err := iso.writeHash(arrAddr, iso.nextHash()); err != nil {
		return 0, err
	}
	arrHd, err := iso.heap.NewHandle(arrAddr)
	if err != nil {
		return 0, err
	}
	defer func() {
		// The wrapper's ref slot keeps the array alive after this.
		_ = iso.heap.Release(arrHd)
	}()
	listAddr, err := iso.heap.Alloc(ClassIDList, 1, hashBytes+8)
	if err != nil {
		return 0, err
	}
	if err := iso.writeHash(listAddr, iso.nextHash()); err != nil {
		return 0, err
	}
	arrAddr, err = iso.heap.Deref(arrHd)
	if err != nil {
		return 0, err
	}
	if err := iso.heap.SetRef(listAddr, 0, arrAddr); err != nil {
		return 0, err
	}
	if err := iso.writeInt(listAddr, hashBytes, 0); err != nil {
		return 0, err
	}
	return iso.heap.NewHandle(listAddr)
}

func (iso *Isolate) newDataObject(classID int32, payload []byte) (heap.Handle, error) {
	addr, err := iso.heap.Alloc(classID, 0, hashBytes+len(payload))
	if err != nil {
		return 0, err
	}
	if err := iso.writeHash(addr, iso.nextHash()); err != nil {
		return 0, err
	}
	if len(payload) > 0 {
		if err := iso.heap.WriteData(addr, hashBytes, payload); err != nil {
			return 0, err
		}
	}
	return iso.heap.NewHandle(addr)
}

// HashOf reads an object's identity hash.
func (iso *Isolate) HashOf(h heap.Handle) (int64, error) {
	addr, err := iso.heap.Deref(h)
	if err != nil {
		return 0, err
	}
	return iso.readHash(addr)
}

// ClassIDOf returns the class id of the object behind h.
func (iso *Isolate) ClassIDOf(h heap.Handle) (int32, error) {
	addr, err := iso.heap.Deref(h)
	if err != nil {
		return 0, err
	}
	return iso.heap.ClassID(addr)
}

// ClassNameOf returns the class name of the object behind h.
func (iso *Isolate) ClassNameOf(h heap.Handle) (string, error) {
	id, err := iso.ClassIDOf(h)
	if err != nil {
		return "", err
	}
	return iso.classNameByID(id)
}

func (iso *Isolate) classNameByID(id int32) (string, error) {
	switch id {
	case ClassIDString:
		return classmodel.BuiltinString, nil
	case ClassIDBytes:
		return classmodel.BuiltinBytes, nil
	case ClassIDBlob:
		return classmodel.BuiltinBlob, nil
	case ClassIDArray:
		return classmodel.BuiltinArray, nil
	case ClassIDList:
		return classmodel.BuiltinList, nil
	}
	info, ok := iso.byID[id]
	if !ok {
		return "", fmt.Errorf("%w: id %d", ErrUnknownClass, id)
	}
	return info.name, nil
}

// Release drops a strong handle.
func (iso *Isolate) Release(h heap.Handle) error { return iso.heap.Release(h) }

// NewWeak creates a weak reference to the object behind h.
func (iso *Isolate) NewWeak(h heap.Handle) (heap.WeakRef, error) {
	addr, err := iso.heap.Deref(h)
	if err != nil {
		return 0, err
	}
	return iso.heap.NewWeak(addr)
}

// HandleAt wraps a raw address in a fresh strong handle. The address must
// be current (no allocation since it was obtained).
func (iso *Isolate) HandleAt(addr heap.Addr) (heap.Handle, error) {
	return iso.heap.NewHandle(addr)
}

// Collect runs a stop-and-copy GC cycle on the isolate heap.
func (iso *Isolate) Collect() error { return iso.heap.Collect() }

// SetFieldScalar writes an int, double or boolean field.
func (iso *Isolate) SetFieldScalar(h heap.Handle, field string, v wire.Value) error {
	info, f, err := iso.fieldOf(h, field)
	if err != nil {
		return err
	}
	var raw uint64
	switch f.Kind {
	case classmodel.FieldInt:
		i, ok := v.AsInt()
		if !ok {
			return fmt.Errorf("%w: %s.%s wants int, got %s", ErrKindMismatch, info.name, field, v.Kind())
		}
		raw = uint64(i)
	case classmodel.FieldFloat:
		fl, ok := v.AsFloat()
		if !ok {
			return fmt.Errorf("%w: %s.%s wants double, got %s", ErrKindMismatch, info.name, field, v.Kind())
		}
		raw = math.Float64bits(fl)
	case classmodel.FieldBool:
		b, ok := v.AsBool()
		if !ok {
			return fmt.Errorf("%w: %s.%s wants boolean, got %s", ErrKindMismatch, info.name, field, v.Kind())
		}
		if b {
			raw = 1
		}
	default:
		return fmt.Errorf("%w: %s.%s is not scalar", ErrKindMismatch, info.name, field)
	}
	addr, err := iso.heap.Deref(h)
	if err != nil {
		return err
	}
	return iso.writeInt(addr, hashBytes+info.layout.DataOff[field], int64(raw))
}

// SetFieldData writes a String, byte[] or serialized-value field by
// allocating a fresh child object (the previous child becomes garbage).
func (iso *Isolate) SetFieldData(h heap.Handle, field string, v wire.Value) error {
	info, f, err := iso.fieldOf(h, field)
	if err != nil {
		return err
	}
	var child heap.Handle
	switch f.Kind {
	case classmodel.FieldString:
		s, ok := v.AsStr()
		if !ok {
			return fmt.Errorf("%w: %s.%s wants String, got %s", ErrKindMismatch, info.name, field, v.Kind())
		}
		child, err = iso.NewString(s)
	case classmodel.FieldBytes:
		b, ok := v.AsBytes()
		if !ok {
			return fmt.Errorf("%w: %s.%s wants byte[], got %s", ErrKindMismatch, info.name, field, v.Kind())
		}
		child, err = iso.NewBytes(b)
	case classmodel.FieldValue:
		child, err = iso.NewBlob(v)
	default:
		return fmt.Errorf("%w: %s.%s is not a data field", ErrKindMismatch, info.name, field)
	}
	if err != nil {
		return err
	}
	defer func() {
		// The parent's ref slot keeps the child alive from here on.
		_ = iso.heap.Release(child)
	}()
	childAddr, err := iso.heap.Deref(child)
	if err != nil {
		return err
	}
	addr, err := iso.heap.Deref(h)
	if err != nil {
		return err
	}
	return iso.heap.SetRef(addr, info.layout.RefSlot[field], childAddr)
}

// SetFieldRef writes a reference field. target==0 stores null.
func (iso *Isolate) SetFieldRef(h heap.Handle, field string, target heap.Handle) error {
	info, f, err := iso.fieldOf(h, field)
	if err != nil {
		return err
	}
	if f.Kind != classmodel.FieldRef {
		return fmt.Errorf("%w: %s.%s is not a reference field", ErrKindMismatch, info.name, field)
	}
	var targetAddr heap.Addr
	if target != 0 {
		targetAddr, err = iso.heap.Deref(target)
		if err != nil {
			return err
		}
	}
	addr, err := iso.heap.Deref(h)
	if err != nil {
		return err
	}
	return iso.heap.SetRef(addr, info.layout.RefSlot[field], targetAddr)
}

// GetField reads any field as a wire value. Reference fields come back as
// wire.Ref(class, hash) (null if unset); String/byte[]/value fields are
// read out of their child objects.
func (iso *Isolate) GetField(h heap.Handle, field string) (wire.Value, error) {
	info, f, err := iso.fieldOf(h, field)
	if err != nil {
		return wire.Value{}, err
	}
	addr, err := iso.heap.Deref(h)
	if err != nil {
		return wire.Value{}, err
	}
	if !f.Kind.IsRefLike() {
		raw, err := iso.readInt(addr, hashBytes+info.layout.DataOff[field])
		if err != nil {
			return wire.Value{}, err
		}
		switch f.Kind {
		case classmodel.FieldInt:
			return wire.Int(raw), nil
		case classmodel.FieldFloat:
			return wire.Float(math.Float64frombits(uint64(raw))), nil
		default:
			return wire.Bool(raw != 0), nil
		}
	}
	child, err := iso.heap.GetRef(addr, info.layout.RefSlot[field])
	if err != nil {
		return wire.Value{}, err
	}
	if child == 0 {
		return wire.Null(), nil
	}
	switch f.Kind {
	case classmodel.FieldString:
		b, err := iso.dataPayload(child, ClassIDString)
		if err != nil {
			return wire.Value{}, err
		}
		return wire.Str(string(b)), nil
	case classmodel.FieldBytes:
		b, err := iso.dataPayload(child, ClassIDBytes)
		if err != nil {
			return wire.Value{}, err
		}
		return wire.Bytes(b), nil
	case classmodel.FieldValue:
		b, err := iso.dataPayload(child, ClassIDBlob)
		if err != nil {
			return wire.Value{}, err
		}
		v, _, err := wire.Unmarshal(b)
		if err != nil {
			return wire.Value{}, fmt.Errorf("isolate: corrupt blob field %s.%s: %w", info.name, field, err)
		}
		return v, nil
	default: // FieldRef
		hash, err := iso.readHash(child)
		if err != nil {
			return wire.Value{}, err
		}
		cid, err := iso.heap.ClassID(child)
		if err != nil {
			return wire.Value{}, err
		}
		name, err := iso.classNameByID(cid)
		if err != nil {
			return wire.Value{}, err
		}
		return wire.Ref(name, hash), nil
	}
}

// GetFieldRefHandle returns a fresh strong handle to the object a
// reference field points at (0 for null). The caller owns the handle.
func (iso *Isolate) GetFieldRefHandle(h heap.Handle, field string) (heap.Handle, error) {
	info, f, err := iso.fieldOf(h, field)
	if err != nil {
		return 0, err
	}
	if f.Kind != classmodel.FieldRef {
		return 0, fmt.Errorf("%w: %s.%s is not a reference field", ErrKindMismatch, info.name, field)
	}
	addr, err := iso.heap.Deref(h)
	if err != nil {
		return 0, err
	}
	child, err := iso.heap.GetRef(addr, info.layout.RefSlot[field])
	if err != nil {
		return 0, err
	}
	if child == 0 {
		return 0, nil
	}
	return iso.heap.NewHandle(child)
}

// StrValue reads a String object.
func (iso *Isolate) StrValue(h heap.Handle) (string, error) {
	addr, err := iso.heap.Deref(h)
	if err != nil {
		return "", err
	}
	b, err := iso.dataPayload(addr, ClassIDString)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// BytesValue reads a Bytes object.
func (iso *Isolate) BytesValue(h heap.Handle) ([]byte, error) {
	addr, err := iso.heap.Deref(h)
	if err != nil {
		return nil, err
	}
	return iso.dataPayload(addr, ClassIDBytes)
}

// BlobValue reads a Blob object.
func (iso *Isolate) BlobValue(h heap.Handle) (wire.Value, error) {
	addr, err := iso.heap.Deref(h)
	if err != nil {
		return wire.Value{}, err
	}
	b, err := iso.dataPayload(addr, ClassIDBlob)
	if err != nil {
		return wire.Value{}, err
	}
	v, _, err := wire.Unmarshal(b)
	if err != nil {
		return wire.Value{}, fmt.Errorf("isolate: corrupt blob: %w", err)
	}
	return v, nil
}

// ListSize returns the number of elements in a List object.
func (iso *Isolate) ListSize(list heap.Handle) (int, error) {
	addr, err := iso.listAddr(list)
	if err != nil {
		return 0, err
	}
	n, err := iso.readInt(addr, hashBytes)
	return int(n), err
}

// ListAdd appends the object behind elem to a List, growing the backing
// array as needed.
func (iso *Isolate) ListAdd(list heap.Handle, elem heap.Handle) error {
	addr, err := iso.listAddr(list)
	if err != nil {
		return err
	}
	length64, err := iso.readInt(addr, hashBytes)
	if err != nil {
		return err
	}
	length := int(length64)
	backing, err := iso.heap.GetRef(addr, 0)
	if err != nil {
		return err
	}
	capacity, err := iso.heap.NumRefs(backing)
	if err != nil {
		return err
	}
	if length == capacity {
		// Grow: allocate a doubled array (may trigger GC, invalidating
		// raw addresses), then re-derive everything from handles.
		newArr, err := iso.heap.Alloc(ClassIDArray, capacity*2, hashBytes)
		if err != nil {
			return err
		}
		if err := iso.writeHash(newArr, iso.nextHash()); err != nil {
			return err
		}
		addr, err = iso.heap.Deref(list)
		if err != nil {
			return err
		}
		backing, err = iso.heap.GetRef(addr, 0)
		if err != nil {
			return err
		}
		for i := 0; i < length; i++ {
			e, err := iso.heap.GetRef(backing, i)
			if err != nil {
				return err
			}
			if err := iso.heap.SetRef(newArr, i, e); err != nil {
				return err
			}
		}
		if err := iso.heap.SetRef(addr, 0, newArr); err != nil {
			return err
		}
		backing = newArr
	}
	elemAddr, err := iso.heap.Deref(elem)
	if err != nil {
		return err
	}
	if err := iso.heap.SetRef(backing, length, elemAddr); err != nil {
		return err
	}
	return iso.writeInt(addr, hashBytes, int64(length+1))
}

// ListGet returns a fresh strong handle to element i (caller owns it).
func (iso *Isolate) ListGet(list heap.Handle, i int) (heap.Handle, error) {
	addr, err := iso.listAddr(list)
	if err != nil {
		return 0, err
	}
	length, err := iso.readInt(addr, hashBytes)
	if err != nil {
		return 0, err
	}
	if i < 0 || int64(i) >= length {
		return 0, fmt.Errorf("%w: %d of %d", ErrIndex, i, length)
	}
	backing, err := iso.heap.GetRef(addr, 0)
	if err != nil {
		return 0, err
	}
	e, err := iso.heap.GetRef(backing, i)
	if err != nil {
		return 0, err
	}
	if e == 0 {
		return 0, nil
	}
	return iso.heap.NewHandle(e)
}

// ListSet overwrites element i with the object behind elem.
func (iso *Isolate) ListSet(list heap.Handle, i int, elem heap.Handle) error {
	addr, err := iso.listAddr(list)
	if err != nil {
		return err
	}
	length, err := iso.readInt(addr, hashBytes)
	if err != nil {
		return err
	}
	if i < 0 || int64(i) >= length {
		return fmt.Errorf("%w: %d of %d", ErrIndex, i, length)
	}
	backing, err := iso.heap.GetRef(addr, 0)
	if err != nil {
		return err
	}
	var elemAddr heap.Addr
	if elem != 0 {
		elemAddr, err = iso.heap.Deref(elem)
		if err != nil {
			return err
		}
	}
	return iso.heap.SetRef(backing, i, elemAddr)
}

func (iso *Isolate) listAddr(list heap.Handle) (heap.Addr, error) {
	addr, err := iso.heap.Deref(list)
	if err != nil {
		return 0, err
	}
	cid, err := iso.heap.ClassID(addr)
	if err != nil {
		return 0, err
	}
	if cid != ClassIDList {
		return 0, fmt.Errorf("%w: want List, got id %d", ErrNotBuiltin, cid)
	}
	return addr, nil
}

func (iso *Isolate) fieldOf(h heap.Handle, field string) (*classInfo, classmodel.Field, error) {
	id, err := iso.ClassIDOf(h)
	if err != nil {
		return nil, classmodel.Field{}, err
	}
	info, ok := iso.byID[id]
	if !ok {
		return nil, classmodel.Field{}, fmt.Errorf("%w: id %d has no fields", ErrUnknownClass, id)
	}
	f, ok := info.decl.Field(field)
	if !ok {
		return nil, classmodel.Field{}, fmt.Errorf("%w: %s.%s", ErrUnknownField, info.name, field)
	}
	return info, f, nil
}

func (iso *Isolate) dataPayload(addr heap.Addr, wantClass int32) ([]byte, error) {
	cid, err := iso.heap.ClassID(addr)
	if err != nil {
		return nil, err
	}
	if cid != wantClass {
		return nil, fmt.Errorf("%w: want id %d, got %d", ErrNotBuiltin, wantClass, cid)
	}
	size, err := iso.heap.DataBytes(addr)
	if err != nil {
		return nil, err
	}
	out := make([]byte, size-hashBytes)
	if err := iso.heap.ReadData(addr, hashBytes, out); err != nil {
		return nil, err
	}
	return out, nil
}

func (iso *Isolate) writeHash(addr heap.Addr, hash int64) error {
	return iso.writeInt(addr, 0, hash)
}

func (iso *Isolate) readHash(addr heap.Addr) (int64, error) {
	return iso.readInt(addr, 0)
}

func (iso *Isolate) writeInt(addr heap.Addr, off int, v int64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	return iso.heap.WriteData(addr, off, buf[:])
}

func (iso *Isolate) readInt(addr heap.Addr, off int) (int64, error) {
	var buf [8]byte
	if err := iso.heap.ReadData(addr, off, buf[:]); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(buf[:])), nil
}
