// Package cycles provides CPU-cycle cost accounting for the SGX simulation.
//
// Every simulated hardware cost (enclave transitions, MEE traffic, EPC
// paging) is charged against a Clock. The Clock always maintains a
// deterministic virtual ledger (total cycles charged); when spinning is
// enabled it additionally busy-waits for the equivalent wall-clock time so
// that `testing.B` measurements reflect the charged costs.
package cycles

import (
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects how charged cycles are converted to wall-clock time.
type Mode int

const (
	// ModeVirtual keeps the deterministic ledger only (tests).
	ModeVirtual Mode = iota
	// ModeSpin busy-waits for the charged duration, occupying the core
	// (single-threaded benchmarks: wall time reflects charged cycles).
	ModeSpin
	// ModeSleep waits on shared clock ticks for the charged duration
	// instead of burning the core. Transition and MEE costs are
	// stall-dominated on real hardware; modelling them as timer waits
	// lets concurrently crossing goroutines overlap their charged
	// costs, so concurrency benchmarks measure lock scaling even on
	// hosts with few cores. All waiters of one Clock share a broadcast
	// tick, so the effective wait quantum — however coarse the host's
	// timers — is identical for solo and concurrent runs and cancels
	// out of throughput ratios.
	ModeSleep
)

// tickQuantum is the nominal broadcast period of a ModeSleep clock.
// Hosts with coarse timers stretch it (the OS decides when the ticker
// actually fires); waits are counted in ticks, so the stretch applies
// uniformly to every waiter.
const tickQuantum = 250 * time.Microsecond

// Clock accounts simulated CPU cycles. It is safe for concurrent use.
type Clock struct {
	hz      float64
	mode    Mode
	virtual atomic.Int64

	// Tick broadcaster state (ModeSleep only). tick is closed and
	// replaced at every quantum; waiters grab the current channel and
	// block on it. stop ends the broadcaster goroutine.
	tickOnce sync.Once
	tickMu   sync.Mutex
	tick     chan struct{}
	stop     chan struct{}
	stopOnce sync.Once
}

// New returns a Clock modelling a core running at hz cycles per second.
// When spin is true, Charge busy-waits for the charged duration.
func New(hz float64, spin bool) *Clock {
	mode := ModeVirtual
	if spin {
		mode = ModeSpin
	}
	return NewWithMode(hz, mode)
}

// NewWithMode returns a Clock with an explicit charging mode.
func NewWithMode(hz float64, mode Mode) *Clock {
	if hz <= 0 {
		hz = 1e9
	}
	c := &Clock{hz: hz, mode: mode}
	if mode == ModeSleep {
		c.tick = make(chan struct{})
		c.stop = make(chan struct{})
	}
	return c
}

// Hz reports the modelled clock frequency.
func (c *Clock) Hz() float64 { return c.hz }

// Spinning reports whether the clock charges real wall-clock time
// (busy-waiting or sleeping).
func (c *Clock) Spinning() bool { return c.mode != ModeVirtual }

// ChargeMode reports how charged cycles convert to wall-clock time.
func (c *Clock) ChargeMode() Mode { return c.mode }

// Charge records n cycles on the virtual ledger and, when the mode
// charges real time, waits for the corresponding wall-clock duration.
// Non-positive charges are ignored.
func (c *Clock) Charge(n int64) {
	if n <= 0 {
		return
	}
	c.virtual.Add(n)
	switch c.mode {
	case ModeSpin:
		spinFor(c.Duration(n))
	case ModeSleep:
		c.waitTicks(c.Duration(n))
	}
}

// ChargeBytes charges the cycle cost of moving n bytes at the given
// throughput in bytes per cycle.
func (c *Clock) ChargeBytes(n int, bytesPerCycle float64) {
	if n <= 0 || bytesPerCycle <= 0 {
		return
	}
	c.Charge(int64(float64(n) / bytesPerCycle))
}

// Total returns the cycles charged so far.
func (c *Clock) Total() int64 { return c.virtual.Load() }

// Reset zeroes the virtual ledger.
func (c *Clock) Reset() { c.virtual.Store(0) }

// Duration converts a cycle count to wall-clock time at this clock's
// frequency.
func (c *Clock) Duration(n int64) time.Duration {
	return time.Duration(float64(n) / c.hz * float64(time.Second))
}

// Cycles converts a wall-clock duration to cycles at this clock's
// frequency.
func (c *Clock) Cycles(d time.Duration) int64 {
	return int64(d.Seconds() * c.hz)
}

// spinFor busy-waits for approximately d. Durations under ~50ns are charged
// as a single cheap loop iteration; the granularity of time.Now limits
// precision but the aggregate over many charges is accurate, which is what
// the benchmarks measure.
func spinFor(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

// sleepMin is the shortest charge worth a tick wait: below it the wait
// quantum dwarfs the charge, so tiny costs (compiled calls, per-value
// serialization) busy-wait instead. Multi-thousand-cycle transition
// charges land well above it.
const sleepMin = 2 * time.Microsecond

// waitTicks waits out a charge of duration d on the clock's shared tick
// broadcast without occupying the core, so concurrent waiters overlap.
// A charge costs ceil(d/tickQuantum) ticks. Because every waiter counts
// the same broadcasts, coarse host timers inflate solo and concurrent
// series identically and cancel out of throughput ratios.
func (c *Clock) waitTicks(d time.Duration) {
	if d <= 0 {
		return
	}
	if d < sleepMin {
		spinFor(d)
		return
	}
	c.tickOnce.Do(c.startTicker)
	n := int((d + tickQuantum - 1) / tickQuantum)
	for i := 0; i < n; i++ {
		c.tickMu.Lock()
		ch := c.tick
		c.tickMu.Unlock()
		select {
		case <-ch:
		case <-c.stop:
			return
		}
	}
}

// startTicker launches the broadcast goroutine: every quantum it
// releases all current waiters by closing the tick channel and
// installing a fresh one.
func (c *Clock) startTicker() {
	go func() {
		tk := time.NewTicker(tickQuantum)
		defer tk.Stop()
		for {
			select {
			case <-tk.C:
				c.tickMu.Lock()
				close(c.tick)
				c.tick = make(chan struct{})
				c.tickMu.Unlock()
			case <-c.stop:
				return
			}
		}
	}()
}

// Stop ends the tick broadcaster of a ModeSleep clock and releases any
// blocked waiters; other modes have no background state and ignore it.
// Charges after Stop complete without waiting.
func (c *Clock) Stop() {
	if c.mode != ModeSleep {
		return
	}
	c.stopOnce.Do(func() { close(c.stop) })
}
