// Package cycles provides CPU-cycle cost accounting for the SGX simulation.
//
// Every simulated hardware cost (enclave transitions, MEE traffic, EPC
// paging) is charged against a Clock. The Clock always maintains a
// deterministic virtual ledger (total cycles charged); when spinning is
// enabled it additionally busy-waits for the equivalent wall-clock time so
// that `testing.B` measurements reflect the charged costs.
package cycles

import (
	"sync/atomic"
	"time"
)

// Clock accounts simulated CPU cycles. It is safe for concurrent use.
type Clock struct {
	hz      float64
	spin    bool
	virtual atomic.Int64
}

// New returns a Clock modelling a core running at hz cycles per second.
// When spin is true, Charge busy-waits for the charged duration.
func New(hz float64, spin bool) *Clock {
	if hz <= 0 {
		hz = 1e9
	}
	return &Clock{hz: hz, spin: spin}
}

// Hz reports the modelled clock frequency.
func (c *Clock) Hz() float64 { return c.hz }

// Spinning reports whether the clock charges real wall-clock time.
func (c *Clock) Spinning() bool { return c.spin }

// Charge records n cycles on the virtual ledger and, if spinning is
// enabled, busy-waits for the corresponding wall-clock duration.
// Non-positive charges are ignored.
func (c *Clock) Charge(n int64) {
	if n <= 0 {
		return
	}
	c.virtual.Add(n)
	if c.spin {
		spinFor(c.Duration(n))
	}
}

// ChargeBytes charges the cycle cost of moving n bytes at the given
// throughput in bytes per cycle.
func (c *Clock) ChargeBytes(n int, bytesPerCycle float64) {
	if n <= 0 || bytesPerCycle <= 0 {
		return
	}
	c.Charge(int64(float64(n) / bytesPerCycle))
}

// Total returns the cycles charged so far.
func (c *Clock) Total() int64 { return c.virtual.Load() }

// Reset zeroes the virtual ledger.
func (c *Clock) Reset() { c.virtual.Store(0) }

// Duration converts a cycle count to wall-clock time at this clock's
// frequency.
func (c *Clock) Duration(n int64) time.Duration {
	return time.Duration(float64(n) / c.hz * float64(time.Second))
}

// Cycles converts a wall-clock duration to cycles at this clock's
// frequency.
func (c *Clock) Cycles(d time.Duration) int64 {
	return int64(d.Seconds() * c.hz)
}

// spinFor busy-waits for approximately d. Durations under ~50ns are charged
// as a single cheap loop iteration; the granularity of time.Now limits
// precision but the aggregate over many charges is accurate, which is what
// the benchmarks measure.
func spinFor(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}
