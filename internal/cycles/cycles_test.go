package cycles

import (
	"sync"
	"testing"
	"time"
)

func TestChargeAccumulates(t *testing.T) {
	c := New(3.8e9, false)
	c.Charge(100)
	c.Charge(250)
	if got := c.Total(); got != 350 {
		t.Fatalf("Total() = %d, want 350", got)
	}
	c.Reset()
	if got := c.Total(); got != 0 {
		t.Fatalf("Total() after Reset = %d, want 0", got)
	}
}

func TestChargeIgnoresNonPositive(t *testing.T) {
	c := New(1e9, false)
	c.Charge(0)
	c.Charge(-5)
	if got := c.Total(); got != 0 {
		t.Fatalf("Total() = %d, want 0", got)
	}
}

func TestChargeBytes(t *testing.T) {
	tests := []struct {
		name          string
		bytes         int
		bytesPerCycle float64
		want          int64
	}{
		{name: "one byte per cycle", bytes: 1000, bytesPerCycle: 1.0, want: 1000},
		{name: "two bytes per cycle", bytes: 1000, bytesPerCycle: 2.0, want: 500},
		{name: "zero bytes", bytes: 0, bytesPerCycle: 1.0, want: 0},
		{name: "invalid throughput", bytes: 100, bytesPerCycle: 0, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := New(1e9, false)
			c.ChargeBytes(tt.bytes, tt.bytesPerCycle)
			if got := c.Total(); got != tt.want {
				t.Errorf("Total() = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestDurationConversion(t *testing.T) {
	c := New(1e9, false) // 1 GHz: 1 cycle == 1 ns
	if got := c.Duration(1000); got != time.Microsecond {
		t.Fatalf("Duration(1000) = %v, want 1µs", got)
	}
	if got := c.Cycles(time.Microsecond); got != 1000 {
		t.Fatalf("Cycles(1µs) = %d, want 1000", got)
	}
}

func TestDefaultHzOnInvalid(t *testing.T) {
	c := New(0, false)
	if c.Hz() != 1e9 {
		t.Fatalf("Hz() = %v, want fallback 1e9", c.Hz())
	}
}

func TestSpinningChargesWallClock(t *testing.T) {
	c := New(1e9, true) // 1 cycle == 1 ns
	start := time.Now()
	c.Charge(2_000_000) // 2 ms
	elapsed := time.Since(start)
	if elapsed < 1500*time.Microsecond {
		t.Fatalf("spin charge of 2ms elapsed only %v", elapsed)
	}
	if !c.Spinning() {
		t.Fatal("Spinning() = false, want true")
	}
}

func TestConcurrentCharge(t *testing.T) {
	c := New(1e9, false)
	const (
		goroutines = 8
		perG       = 1000
	)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Charge(3)
			}
		}()
	}
	wg.Wait()
	if got, want := c.Total(), int64(goroutines*perG*3); got != want {
		t.Fatalf("Total() = %d, want %d", got, want)
	}
}
