package wire

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// allKindValues returns one representative value of every kind,
// including nested composites — the corpus for the exact-size invariant
// the in-place slot writer relies on.
func allKindValues() []Value {
	return []Value{
		Null(),
		Bool(true),
		Bool(false),
		Int(0),
		Int(-1),
		Int(math.MaxInt64),
		Int(math.MinInt64),
		Float(3.14159),
		Float(math.Inf(-1)),
		Float(math.NaN()),
		Str(""),
		Str("héllo wörld"),
		Bytes(nil),
		Bytes(bytes.Repeat([]byte{0xAB}, 300)),
		Ref("app.Account", 42),
		Ref("", math.MinInt64),
		List(),
		List(Int(1), Str("x"), Ref("C", 9)),
		List(List(List(Bool(true)))),
		Map(),
		Map(Pair{Key: "k", Val: Float(1.5)}, Pair{Key: "a", Val: List(Int(7))}),
	}
}

// TestExactSizeInvariant is the contract the zero-copy slot writers
// trust: len(AppendValues(nil, vs)) == SizeValues(vs) for every value
// kind, so a capacity check against the precomputed size guarantees the
// append never reallocates.
func TestExactSizeInvariant(t *testing.T) {
	all := allKindValues()
	// Every kind individually...
	for _, v := range all {
		vs := []Value{v}
		if got, want := len(AppendValues(nil, vs)), SizeValues(vs); got != want {
			t.Errorf("kind %s: encoded %d bytes, SizeValues says %d", v.Kind(), got, want)
		}
	}
	// ...the full mixed vector, and the empty vector.
	for _, vs := range [][]Value{all, nil} {
		if got, want := len(AppendValues(nil, vs)), SizeValues(vs); got != want {
			t.Errorf("vector of %d: encoded %d bytes, SizeValues says %d", len(vs), got, want)
		}
	}
}

// TestExactSizeInvariantQuick extends the invariant over the randomized
// value generator shared with the fuzz corpus seeds.
func TestExactSizeInvariantQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		vs := make([]Value, r.Intn(5))
		for i := range vs {
			vs[i] = randomValue(r, 3)
		}
		return len(AppendValues(nil, vs)) == SizeValues(vs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestExactSizeInvariantFuzzCorpus replays the fuzz seed corpus through
// the invariant: any value the decoder accepts must re-encode at
// exactly its computed size.
func TestExactSizeInvariantFuzzCorpus(t *testing.T) {
	seeds := [][]byte{
		Marshal(Null()),
		Marshal(Int(-12345)),
		Marshal(Str("hello")),
		Marshal(Bytes([]byte{1, 2, 3})),
		Marshal(List(Int(1), Str("x"), Ref("C", 9))),
		Marshal(Map(Pair{Key: "k", Val: Float(1.5)})),
		MarshalList([]Value{Int(1), List(Bool(true))}),
	}
	for _, s := range seeds {
		v, _, err := Unmarshal(s)
		if err != nil {
			t.Fatalf("corpus seed failed to decode: %v", err)
		}
		vs := []Value{v}
		if got, want := len(AppendValues(nil, vs)), SizeValues(vs); got != want {
			t.Errorf("corpus value %v: encoded %d, sized %d", v, got, want)
		}
	}
}

func TestAppendValuesSlotFits(t *testing.T) {
	vs := []Value{Int(7), Str("slot")}
	slot := make([]byte, 0, SizeValues(vs))
	out, err := AppendValuesSlot(slot, vs)
	if err != nil {
		t.Fatal(err)
	}
	if &out[0] != &slot[0:1][0] {
		t.Fatal("slot append reallocated despite exact fit")
	}
	if !bytes.Equal(out, AppendValues(nil, vs)) {
		t.Fatal("slot encoding differs from plain encoding")
	}
}

func TestAppendValuesSlotFull(t *testing.T) {
	vs := []Value{Bytes(make([]byte, 100))}
	slot := make([]byte, 0, 50)
	out, err := AppendValuesSlot(slot, vs)
	if !errors.Is(err, ErrSlotFull) {
		t.Fatalf("got %v, want ErrSlotFull", err)
	}
	if len(out) != 0 {
		t.Fatal("failed slot append must not write")
	}
}

func TestAppendFrameSlot(t *testing.T) {
	calls := []FrameCall{{Class: "C", Method: "m", Hash: 5, Args: []byte{1, 2}}}
	slot := make([]byte, 0, FrameSize(calls))
	out, err := AppendFrameSlot(slot, calls)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, AppendFrame(nil, calls)) {
		t.Fatal("slot frame differs from plain frame")
	}
	if _, err := AppendFrameSlot(make([]byte, 0, 3), calls); !errors.Is(err, ErrSlotFull) {
		t.Fatalf("got %v, want ErrSlotFull", err)
	}
}

func TestCallSlotRoundTrip(t *testing.T) {
	args := []Value{Int(9), Str("arg"), Ref("app.Obj", -3)}
	argsLen := SizeValues(args)
	need := CallSize("app.Obj", "relay$get", -3, argsLen)
	slot := make([]byte, 0, need)
	buf, err := AppendCallSlot(slot, "app.Obj", "relay$get", -3, CallWantResult, args)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != need {
		t.Fatalf("encoded %d bytes, CallSize says %d", len(buf), need)
	}
	class, method, hash, flags, argBytes, err := DecodeCall(buf)
	if err != nil {
		t.Fatal(err)
	}
	if class != "app.Obj" || method != "relay$get" || hash != -3 || flags != CallWantResult {
		t.Fatalf("decoded %s.%s#%d flags=%d", class, method, hash, flags)
	}
	got, err := UnmarshalList(argBytes)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(args) {
		t.Fatalf("decoded %d args, want %d", len(got), len(args))
	}
	for i := range args {
		if !got[i].Equal(args[i]) {
			t.Errorf("arg %d: %v != %v", i, got[i], args[i])
		}
	}
	// The decoded args view aliases the input buffer (zero-copy read).
	if len(argBytes) > 0 && &argBytes[0] != &buf[need-argsLen] {
		t.Fatal("DecodeCall args do not alias the slot buffer")
	}
}

func TestAppendCallSlotFull(t *testing.T) {
	args := []Value{Bytes(make([]byte, 200))}
	if _, err := AppendCallSlot(make([]byte, 0, 64), "C", "m", 1, 0, args); !errors.Is(err, ErrSlotFull) {
		t.Fatalf("got %v, want ErrSlotFull", err)
	}
}

func TestDecodeCallCorrupt(t *testing.T) {
	good, err := AppendCallSlot(make([]byte, 0, 64), "C", "m", 7, CallWantResult, []Value{Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range [][]byte{
		nil,
		good[:1],
		good[:len(good)-1],                      // truncated args
		append(append([]byte{}, good...), 0xFF), // trailing byte
	} {
		if _, _, _, _, _, derr := DecodeCall(tc); derr == nil {
			t.Errorf("corrupt input %v decoded cleanly", tc)
		}
	}
}
