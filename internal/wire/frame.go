package wire

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// This file extends the wire vocabulary for the boundary dispatch layer:
//
//   - exact-size precompute (Size/SizeValues) and copy-free list encoding
//     (AppendValues), so the marshalling hot path can reserve one
//     right-sized — and poolable — buffer instead of growing it;
//   - the batched-transition frame (FrameCall, MarshalFrame,
//     UnmarshalFrame): a length-prefixed sequence of relay invocations
//     coalesced into a single ecall/ocall.

// uvarintLen returns the encoded length of binary.AppendUvarint(nil, x).
func uvarintLen(x uint64) int {
	return (bits.Len64(x|1) + 6) / 7
}

// varintLen returns the encoded length of binary.AppendVarint(nil, x)
// (zig-zag followed by uvarint).
func varintLen(x int64) int {
	return uvarintLen(uint64(x)<<1 ^ uint64(x>>63))
}

// Size returns the exact number of bytes Append(dst, v) adds to dst.
func Size(v Value) int {
	n := 1 // kind tag
	switch v.kind {
	case KindNull, KindInvalid:
	case KindBool:
		n++
	case KindInt:
		n += varintLen(v.i)
	case KindFloat:
		n += 8
	case KindString:
		n += uvarintLen(uint64(len(v.s))) + len(v.s)
	case KindBytes:
		n += uvarintLen(uint64(len(v.by))) + len(v.by)
	case KindList:
		n += uvarintLen(uint64(len(v.list)))
		for _, e := range v.list {
			n += Size(e)
		}
	case KindMap:
		n += uvarintLen(uint64(len(v.pairs)))
		for _, p := range v.pairs {
			n += uvarintLen(uint64(len(p.Key))) + len(p.Key) + Size(p.Val)
		}
	case KindRef:
		n += varintLen(v.i) + uvarintLen(uint64(len(v.refClass))) + len(v.refClass)
	}
	return n
}

// SizeValues returns the exact encoded size of the value sequence vs as
// produced by AppendValues (equivalently MarshalList).
func SizeValues(vs []Value) int {
	n := 1 + uvarintLen(uint64(len(vs)))
	for _, v := range vs {
		n += Size(v)
	}
	return n
}

// AppendValues encodes the value sequence vs onto dst exactly as
// Append(dst, List(vs...)) would, without copying vs into a List value.
func AppendValues(dst []byte, vs []Value) []byte {
	dst = append(dst, byte(KindList))
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = Append(dst, v)
	}
	return dst
}

// FrameCall is one relay invocation inside a batched transition: the
// same (class, relay method, receiver hash, marshalled argument vector)
// tuple a single transition would carry.
type FrameCall struct {
	Class  string
	Method string
	Hash   int64
	Args   []byte
}

// frameCallSize returns the encoded size of one frame entry.
func frameCallSize(c FrameCall) int {
	return uvarintLen(uint64(len(c.Class))) + len(c.Class) +
		uvarintLen(uint64(len(c.Method))) + len(c.Method) +
		varintLen(c.Hash) +
		uvarintLen(uint64(len(c.Args))) + len(c.Args)
}

// FrameSize returns the exact encoded size of a call frame.
func FrameSize(calls []FrameCall) int {
	n := uvarintLen(uint64(len(calls)))
	for _, c := range calls {
		n += frameCallSize(c)
	}
	return n
}

// AppendFrame encodes a batched-call frame onto dst: a uvarint call
// count followed by, per call, length-prefixed class and method names, a
// varint receiver hash, and the length-prefixed marshalled arguments.
func AppendFrame(dst []byte, calls []FrameCall) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(calls)))
	for _, c := range calls {
		dst = binary.AppendUvarint(dst, uint64(len(c.Class)))
		dst = append(dst, c.Class...)
		dst = binary.AppendUvarint(dst, uint64(len(c.Method)))
		dst = append(dst, c.Method...)
		dst = binary.AppendVarint(dst, c.Hash)
		dst = binary.AppendUvarint(dst, uint64(len(c.Args)))
		dst = append(dst, c.Args...)
	}
	return dst
}

// MarshalFrame encodes a batched-call frame into a fresh exact-size
// buffer.
func MarshalFrame(calls []FrameCall) []byte {
	return AppendFrame(make([]byte, 0, FrameSize(calls)), calls)
}

// UnmarshalFrame decodes a buffer produced by MarshalFrame. Decoded
// fields are copies; the input buffer may be reused afterwards.
func UnmarshalFrame(buf []byte) ([]FrameCall, error) {
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, ErrTruncated
	}
	calls := make([]FrameCall, 0, clampCount(count, len(buf)-n))
	for i := uint64(0); i < count; i++ {
		var c FrameCall
		class, l, err := decodeBytes(buf[n:])
		if err != nil {
			return nil, err
		}
		c.Class, n = string(class), n+l
		method, l, err := decodeBytes(buf[n:])
		if err != nil {
			return nil, err
		}
		c.Method, n = string(method), n+l
		hash, l := binary.Varint(buf[n:])
		if l <= 0 {
			return nil, ErrTruncated
		}
		c.Hash, n = hash, n+l
		args, l, err := decodeBytes(buf[n:])
		if err != nil {
			return nil, err
		}
		c.Args, n = args, n+l
		calls = append(calls, c)
	}
	if n != len(buf) {
		return nil, fmt.Errorf("wire: %d trailing frame bytes", len(buf)-n)
	}
	return calls, nil
}
