// Package wire implements the serialization format used to copy neutral
// values across the enclave boundary.
//
// In the paper (§5.2), parameters of relay methods are restricted to
// primitive types, pointers to serialized buffers of neutral objects, and
// proxy/mirror hashes. This package provides exactly that vocabulary: a
// tagged Value union (null, bool, int, float, string, bytes, list, map,
// object reference) and a compact binary encoding used by the edge
// routines that marshal data into and out of the enclave.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// Value kinds. KindInvalid is the zero Value's kind.
const (
	KindInvalid Kind = iota
	KindNull
	KindBool
	KindInt
	KindFloat
	KindString
	KindBytes
	KindList
	KindMap
	// KindRef is a cross-runtime object reference: the identity hash of a
	// proxy/mirror pair plus its class name (§5.2 "the hash of the
	// corresponding proxy is passed as parameter").
	KindRef
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBytes:
		return "bytes"
	case KindList:
		return "list"
	case KindMap:
		return "map"
	case KindRef:
		return "ref"
	default:
		return "invalid"
	}
}

// Errors returned by decoding.
var (
	ErrTruncated = errors.New("wire: truncated input")
	ErrBadTag    = errors.New("wire: unknown type tag")
)

// Pair is one entry of a map value. Map entries are kept sorted by key so
// that encoding is deterministic.
type Pair struct {
	Key string
	Val Value
}

// Value is an immutable tagged union of the types that may cross the
// enclave boundary.
type Value struct {
	kind     Kind
	b        bool
	i        int64
	f        float64
	s        string
	by       []byte
	list     []Value
	pairs    []Pair
	refClass string
}

// Null returns the null value.
func Null() Value { return Value{kind: KindNull} }

// Bool wraps a boolean.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Int wraps a 64-bit integer.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float wraps a 64-bit float.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Str wraps a string.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// Bytes wraps a byte slice; the slice is copied so the Value is immutable.
func Bytes(b []byte) Value {
	cp := make([]byte, len(b))
	copy(cp, b)
	return Value{kind: KindBytes, by: cp}
}

// List wraps a sequence of values; the slice is copied.
func List(vs ...Value) Value {
	cp := make([]Value, len(vs))
	copy(cp, vs)
	return Value{kind: KindList, list: cp}
}

// Map wraps key/value pairs; entries are copied and sorted by key.
// Duplicate keys keep the last entry.
func Map(pairs ...Pair) Value {
	cp := make([]Pair, len(pairs))
	copy(cp, pairs)
	sort.SliceStable(cp, func(i, j int) bool { return cp[i].Key < cp[j].Key })
	// Deduplicate, keeping the last occurrence of each key.
	out := cp[:0]
	for i, p := range cp {
		if i+1 < len(cp) && cp[i+1].Key == p.Key {
			continue
		}
		out = append(out, p)
	}
	return Value{kind: KindMap, pairs: out}
}

// Ref wraps a cross-runtime object reference.
func Ref(class string, hash int64) Value {
	return Value{kind: KindRef, i: hash, refClass: class}
}

// Kind reports the value's dynamic type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null (or invalid).
func (v Value) IsNull() bool { return v.kind == KindNull || v.kind == KindInvalid }

// AsBool returns the boolean payload; ok is false on kind mismatch.
func (v Value) AsBool() (b bool, ok bool) { return v.b, v.kind == KindBool }

// AsInt returns the integer payload; ok is false on kind mismatch.
func (v Value) AsInt() (i int64, ok bool) { return v.i, v.kind == KindInt }

// AsFloat returns the float payload; ok is false on kind mismatch.
func (v Value) AsFloat() (f float64, ok bool) { return v.f, v.kind == KindFloat }

// AsStr returns the string payload; ok is false on kind mismatch.
func (v Value) AsStr() (s string, ok bool) { return v.s, v.kind == KindString }

// AsBytes returns a copy of the bytes payload; ok is false on mismatch.
func (v Value) AsBytes() (b []byte, ok bool) {
	if v.kind != KindBytes {
		return nil, false
	}
	cp := make([]byte, len(v.by))
	copy(cp, v.by)
	return cp, true
}

// AsList returns a copy of the list payload; ok is false on mismatch.
func (v Value) AsList() (vs []Value, ok bool) {
	if v.kind != KindList {
		return nil, false
	}
	cp := make([]Value, len(v.list))
	copy(cp, v.list)
	return cp, true
}

// AsMap returns a copy of the map payload; ok is false on mismatch.
func (v Value) AsMap() (pairs []Pair, ok bool) {
	if v.kind != KindMap {
		return nil, false
	}
	cp := make([]Pair, len(v.pairs))
	copy(cp, v.pairs)
	return cp, true
}

// AsRef returns the reference payload; ok is false on mismatch.
func (v Value) AsRef() (class string, hash int64, ok bool) {
	return v.refClass, v.i, v.kind == KindRef
}

// Get looks up a key in a map value.
func (v Value) Get(key string) (Value, bool) {
	if v.kind != KindMap {
		return Value{}, false
	}
	i := sort.Search(len(v.pairs), func(i int) bool { return v.pairs[i].Key >= key })
	if i < len(v.pairs) && v.pairs[i].Key == key {
		return v.pairs[i].Val, true
	}
	return Value{}, false
}

// Len returns the number of elements of a list, map, bytes or string
// value, and 0 otherwise.
func (v Value) Len() int {
	switch v.kind {
	case KindList:
		return len(v.list)
	case KindMap:
		return len(v.pairs)
	case KindBytes:
		return len(v.by)
	case KindString:
		return len(v.s)
	default:
		return 0
	}
}

// Equal reports deep equality of two values.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNull, KindInvalid:
		return true
	case KindBool:
		return v.b == o.b
	case KindInt:
		return v.i == o.i
	case KindFloat:
		return v.f == o.f || (math.IsNaN(v.f) && math.IsNaN(o.f))
	case KindString:
		return v.s == o.s
	case KindBytes:
		return string(v.by) == string(o.by)
	case KindList:
		if len(v.list) != len(o.list) {
			return false
		}
		for i := range v.list {
			if !v.list[i].Equal(o.list[i]) {
				return false
			}
		}
		return true
	case KindMap:
		if len(v.pairs) != len(o.pairs) {
			return false
		}
		for i := range v.pairs {
			if v.pairs[i].Key != o.pairs[i].Key || !v.pairs[i].Val.Equal(o.pairs[i].Val) {
				return false
			}
		}
		return true
	case KindRef:
		return v.i == o.i && v.refClass == o.refClass
	default:
		return false
	}
}

// String renders the value for diagnostics.
func (v Value) String() string {
	var sb strings.Builder
	v.format(&sb)
	return sb.String()
}

func (v Value) format(sb *strings.Builder) {
	switch v.kind {
	case KindNull, KindInvalid:
		sb.WriteString("null")
	case KindBool:
		sb.WriteString(strconv.FormatBool(v.b))
	case KindInt:
		sb.WriteString(strconv.FormatInt(v.i, 10))
	case KindFloat:
		sb.WriteString(strconv.FormatFloat(v.f, 'g', -1, 64))
	case KindString:
		sb.WriteString(strconv.Quote(v.s))
	case KindBytes:
		fmt.Fprintf(sb, "bytes[%d]", len(v.by))
	case KindList:
		sb.WriteByte('[')
		for i, e := range v.list {
			if i > 0 {
				sb.WriteString(", ")
			}
			e.format(sb)
		}
		sb.WriteByte(']')
	case KindMap:
		sb.WriteByte('{')
		for i, p := range v.pairs {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(p.Key)
			sb.WriteString(": ")
			p.Val.format(sb)
		}
		sb.WriteByte('}')
	case KindRef:
		fmt.Fprintf(sb, "ref(%s#%d)", v.refClass, v.i)
	}
}

// Append encodes v onto dst and returns the extended slice.
func Append(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindNull, KindInvalid:
	case KindBool:
		if v.b {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case KindInt:
		dst = binary.AppendVarint(dst, v.i)
	case KindFloat:
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.f))
	case KindString:
		dst = binary.AppendUvarint(dst, uint64(len(v.s)))
		dst = append(dst, v.s...)
	case KindBytes:
		dst = binary.AppendUvarint(dst, uint64(len(v.by)))
		dst = append(dst, v.by...)
	case KindList:
		dst = binary.AppendUvarint(dst, uint64(len(v.list)))
		for _, e := range v.list {
			dst = Append(dst, e)
		}
	case KindMap:
		dst = binary.AppendUvarint(dst, uint64(len(v.pairs)))
		for _, p := range v.pairs {
			dst = binary.AppendUvarint(dst, uint64(len(p.Key)))
			dst = append(dst, p.Key...)
			dst = Append(dst, p.Val)
		}
	case KindRef:
		dst = binary.AppendVarint(dst, v.i)
		dst = binary.AppendUvarint(dst, uint64(len(v.refClass)))
		dst = append(dst, v.refClass...)
	}
	return dst
}

// Marshal encodes v into a fresh buffer.
func Marshal(v Value) []byte {
	return Append(make([]byte, 0, 64), v)
}

// MarshalList encodes a sequence of values (e.g. a relay-method argument
// vector) into a fresh exact-size buffer.
func MarshalList(vs []Value) []byte {
	return AppendValues(make([]byte, 0, SizeValues(vs)), vs)
}

// Unmarshal decodes one value from the front of buf, returning the value
// and the number of bytes consumed.
func Unmarshal(buf []byte) (Value, int, error) {
	if len(buf) == 0 {
		return Value{}, 0, ErrTruncated
	}
	kind := Kind(buf[0])
	n := 1
	switch kind {
	case KindNull:
		return Null(), n, nil
	case KindBool:
		if len(buf) < n+1 {
			return Value{}, 0, ErrTruncated
		}
		return Bool(buf[n] != 0), n + 1, nil
	case KindInt:
		i, c := binary.Varint(buf[n:])
		if c <= 0 {
			return Value{}, 0, ErrTruncated
		}
		return Int(i), n + c, nil
	case KindFloat:
		if len(buf) < n+8 {
			return Value{}, 0, ErrTruncated
		}
		return Float(math.Float64frombits(binary.LittleEndian.Uint64(buf[n:]))), n + 8, nil
	case KindString:
		s, c, err := decodeBytes(buf[n:])
		if err != nil {
			return Value{}, 0, err
		}
		return Str(string(s)), n + c, nil
	case KindBytes:
		b, c, err := decodeBytes(buf[n:])
		if err != nil {
			return Value{}, 0, err
		}
		return Bytes(b), n + c, nil
	case KindList:
		count, c := binary.Uvarint(buf[n:])
		if c <= 0 {
			return Value{}, 0, ErrTruncated
		}
		n += c
		// Clamp the preallocation to what the buffer could possibly
		// hold (>= 1 byte per element): the count is attacker data and
		// must not drive a huge allocation before validation.
		elems := make([]Value, 0, clampCount(count, len(buf)-n))
		for i := uint64(0); i < count; i++ {
			e, c, err := Unmarshal(buf[n:])
			if err != nil {
				return Value{}, 0, err
			}
			elems = append(elems, e)
			n += c
		}
		return Value{kind: KindList, list: elems}, n, nil
	case KindMap:
		count, c := binary.Uvarint(buf[n:])
		if c <= 0 {
			return Value{}, 0, ErrTruncated
		}
		n += c
		pairs := make([]Pair, 0, clampCount(count, len(buf)-n))
		for i := uint64(0); i < count; i++ {
			k, c, err := decodeBytes(buf[n:])
			if err != nil {
				return Value{}, 0, err
			}
			n += c
			val, c, err := Unmarshal(buf[n:])
			if err != nil {
				return Value{}, 0, err
			}
			n += c
			pairs = append(pairs, Pair{Key: string(k), Val: val})
		}
		return Value{kind: KindMap, pairs: pairs}, n, nil
	case KindRef:
		hash, c := binary.Varint(buf[n:])
		if c <= 0 {
			return Value{}, 0, ErrTruncated
		}
		n += c
		class, c, err := decodeBytes(buf[n:])
		if err != nil {
			return Value{}, 0, err
		}
		return Ref(string(class), hash), n + c, nil
	default:
		return Value{}, 0, fmt.Errorf("%w: %d", ErrBadTag, kind)
	}
}

// UnmarshalList decodes a buffer produced by MarshalList.
func UnmarshalList(buf []byte) ([]Value, error) {
	v, n, err := Unmarshal(buf)
	if err != nil {
		return nil, err
	}
	if n != len(buf) {
		return nil, fmt.Errorf("wire: %d trailing bytes", len(buf)-n)
	}
	vs, ok := v.AsList()
	if !ok {
		return nil, fmt.Errorf("wire: expected list, got %s", v.Kind())
	}
	return vs, nil
}

// clampCount bounds an attacker-supplied element count by the remaining
// buffer bytes, preventing allocation bombs in the decoder.
func clampCount(count uint64, remaining int) int {
	if remaining < 0 {
		return 0
	}
	if count > uint64(remaining) {
		return remaining
	}
	return int(count)
}

func decodeBytes(buf []byte) ([]byte, int, error) {
	l, c := binary.Uvarint(buf)
	if c <= 0 {
		return nil, 0, ErrTruncated
	}
	if uint64(len(buf)-c) < l {
		return nil, 0, ErrTruncated
	}
	out := make([]byte, l)
	copy(out, buf[c:])
	return out, c + int(l), nil
}
