package wire

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRoundTripScalars(t *testing.T) {
	tests := []struct {
		name string
		v    Value
	}{
		{name: "null", v: Null()},
		{name: "true", v: Bool(true)},
		{name: "false", v: Bool(false)},
		{name: "zero", v: Int(0)},
		{name: "negative", v: Int(-123456789)},
		{name: "max int", v: Int(math.MaxInt64)},
		{name: "min int", v: Int(math.MinInt64)},
		{name: "float", v: Float(3.14159)},
		{name: "neg inf", v: Float(math.Inf(-1))},
		{name: "nan", v: Float(math.NaN())},
		{name: "empty string", v: Str("")},
		{name: "string", v: Str("hello, enclave")},
		{name: "unicode", v: Str("héllo∀")},
		{name: "bytes", v: Bytes([]byte{0, 1, 2, 255})},
		{name: "empty bytes", v: Bytes(nil)},
		{name: "ref", v: Ref("Account", 424242)},
		{name: "negative ref hash", v: Ref("X", -7)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			buf := Marshal(tt.v)
			got, n, err := Unmarshal(buf)
			if err != nil {
				t.Fatalf("Unmarshal: %v", err)
			}
			if n != len(buf) {
				t.Fatalf("consumed %d of %d bytes", n, len(buf))
			}
			if !got.Equal(tt.v) {
				t.Fatalf("round trip: got %v, want %v", got, tt.v)
			}
		})
	}
}

func TestRoundTripComposites(t *testing.T) {
	v := List(
		Int(1),
		Str("two"),
		List(Bool(true), Null()),
		Map(Pair{Key: "k1", Val: Int(10)}, Pair{Key: "k0", Val: Bytes([]byte("x"))}),
		Ref("Registry", 99),
	)
	buf := Marshal(v)
	got, n, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d", n, len(buf))
	}
	if !got.Equal(v) {
		t.Fatalf("round trip: got %v, want %v", got, v)
	}
}

func TestMapSortedAndDeduplicated(t *testing.T) {
	v := Map(
		Pair{Key: "b", Val: Int(1)},
		Pair{Key: "a", Val: Int(2)},
		Pair{Key: "b", Val: Int(3)}, // later duplicate wins
	)
	pairs, ok := v.AsMap()
	if !ok {
		t.Fatal("AsMap failed")
	}
	if len(pairs) != 2 || pairs[0].Key != "a" || pairs[1].Key != "b" {
		t.Fatalf("pairs = %v, want sorted a,b", pairs)
	}
	if got, _ := v.Get("b"); !got.Equal(Int(3)) {
		t.Fatalf("Get(b) = %v, want 3", got)
	}
	if _, ok := v.Get("missing"); ok {
		t.Fatal("Get(missing) reported ok")
	}
}

func TestAccessorsKindMismatch(t *testing.T) {
	v := Int(5)
	if _, ok := v.AsStr(); ok {
		t.Fatal("AsStr on int reported ok")
	}
	if _, ok := v.AsBool(); ok {
		t.Fatal("AsBool on int reported ok")
	}
	if _, ok := v.AsList(); ok {
		t.Fatal("AsList on int reported ok")
	}
	if _, _, ok := v.AsRef(); ok {
		t.Fatal("AsRef on int reported ok")
	}
	if i, ok := v.AsInt(); !ok || i != 5 {
		t.Fatalf("AsInt = %d,%v", i, ok)
	}
}

func TestValueImmutability(t *testing.T) {
	src := []byte{1, 2, 3}
	v := Bytes(src)
	src[0] = 99
	got, _ := v.AsBytes()
	if got[0] != 1 {
		t.Fatal("Bytes did not copy input")
	}
	got[1] = 99
	got2, _ := v.AsBytes()
	if got2[1] != 2 {
		t.Fatal("AsBytes did not copy output")
	}

	elems := []Value{Int(1)}
	lv := List(elems...)
	elems[0] = Int(9)
	l, _ := lv.AsList()
	if !l[0].Equal(Int(1)) {
		t.Fatal("List did not copy input")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	tests := []struct {
		name string
		buf  []byte
	}{
		{name: "empty", buf: nil},
		{name: "bad tag", buf: []byte{0xEE}},
		{name: "truncated bool", buf: []byte{byte(KindBool)}},
		{name: "truncated float", buf: []byte{byte(KindFloat), 1, 2}},
		{name: "truncated string", buf: []byte{byte(KindString), 10, 'a'}},
		{name: "truncated list elem", buf: []byte{byte(KindList), 2, byte(KindInt), 2}},
		{name: "truncated map", buf: []byte{byte(KindMap), 1, 3, 'a'}},
		{name: "truncated ref", buf: []byte{byte(KindRef), 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, err := Unmarshal(tt.buf); err == nil {
				t.Fatal("Unmarshal accepted malformed input")
			}
		})
	}
}

func TestUnmarshalListRejectsTrailing(t *testing.T) {
	buf := MarshalList([]Value{Int(1)})
	buf = append(buf, 0x00)
	if _, err := UnmarshalList(buf); err == nil {
		t.Fatal("UnmarshalList accepted trailing bytes")
	}
}

func TestUnmarshalListRejectsNonList(t *testing.T) {
	if _, err := UnmarshalList(Marshal(Int(1))); err == nil {
		t.Fatal("UnmarshalList accepted scalar")
	}
}

func TestLen(t *testing.T) {
	if List(Int(1), Int(2)).Len() != 2 {
		t.Fatal("list len")
	}
	if Str("abc").Len() != 3 {
		t.Fatal("string len")
	}
	if Int(7).Len() != 0 {
		t.Fatal("scalar len")
	}
}

// randomValue builds an arbitrary Value of bounded depth for property
// testing.
func randomValue(r *rand.Rand, depth int) Value {
	kinds := []Kind{KindNull, KindBool, KindInt, KindFloat, KindString, KindBytes, KindRef}
	if depth > 0 {
		kinds = append(kinds, KindList, KindMap)
	}
	switch kinds[r.Intn(len(kinds))] {
	case KindNull:
		return Null()
	case KindBool:
		return Bool(r.Intn(2) == 0)
	case KindInt:
		return Int(r.Int63() - r.Int63())
	case KindFloat:
		return Float(r.NormFloat64())
	case KindString:
		b := make([]byte, r.Intn(20))
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		return Str(string(b))
	case KindBytes:
		b := make([]byte, r.Intn(20))
		r.Read(b)
		return Bytes(b)
	case KindRef:
		return Ref("C", r.Int63())
	case KindList:
		n := r.Intn(5)
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = randomValue(r, depth-1)
		}
		return List(elems...)
	default: // KindMap
		n := r.Intn(5)
		pairs := make([]Pair, n)
		for i := range pairs {
			pairs[i] = Pair{Key: string(rune('a' + i)), Val: randomValue(r, depth-1)}
		}
		return Map(pairs...)
	}
}

// Property: every generated value round-trips exactly.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r, 3)
		got, n, err := Unmarshal(Marshal(v))
		if err != nil {
			return false
		}
		return n == len(Marshal(v)) && got.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: encoding is deterministic (canonical), so identical values
// produce identical buffers.
func TestQuickDeterministicEncoding(t *testing.T) {
	f := func(seed int64) bool {
		r1 := rand.New(rand.NewSource(seed))
		r2 := rand.New(rand.NewSource(seed))
		v1 := randomValue(r1, 3)
		v2 := randomValue(r2, 3)
		return reflect.DeepEqual(Marshal(v1), Marshal(v2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
