package wire

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: Size matches the encoder exactly for arbitrary values, so
// exact-size buffers never reallocate.
func TestQuickSizeMatchesAppend(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r, 3)
		return Size(v) == len(Marshal(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeExtremes(t *testing.T) {
	for _, v := range []Value{
		Int(math.MaxInt64), Int(math.MinInt64), Int(0), Int(-1),
		Ref("", math.MinInt64), Str(""), Bytes(nil), List(), Map(),
		Float(math.NaN()), Bool(true), Null(),
	} {
		if got, want := Size(v), len(Marshal(v)); got != want {
			t.Errorf("Size(%s) = %d, encoded length %d", v, got, want)
		}
	}
}

// AppendValues must produce the same bytes as encoding List(vs...), and
// SizeValues must predict the length exactly.
func TestAppendValuesMatchesList(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		vs := make([]Value, r.Intn(6))
		for i := range vs {
			vs[i] = randomValue(r, 2)
		}
		direct := AppendValues(nil, vs)
		viaList := Append(nil, List(vs...))
		return string(direct) == string(viaList) && SizeValues(vs) == len(direct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	calls := []FrameCall{
		{Class: "Account", Method: "relay$set", Hash: -42, Args: MarshalList([]Value{Int(7)})},
		{Class: "", Method: "<release>", Hash: 1 << 40, Args: nil},
		{Class: "KV", Method: "relay$put", Hash: 0, Args: MarshalList([]Value{Str("k"), Bytes([]byte{1, 2, 3})})},
	}
	buf := MarshalFrame(calls)
	if len(buf) != FrameSize(calls) {
		t.Fatalf("FrameSize = %d, encoded %d bytes", FrameSize(calls), len(buf))
	}
	got, err := UnmarshalFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(calls) {
		t.Fatalf("decoded %d calls, want %d", len(got), len(calls))
	}
	for i, c := range calls {
		g := got[i]
		if g.Class != c.Class || g.Method != c.Method || g.Hash != c.Hash || string(g.Args) != string(c.Args) {
			t.Errorf("call %d: got %+v, want %+v", i, g, c)
		}
	}
}

func TestFrameEmptyRoundTrip(t *testing.T) {
	got, err := UnmarshalFrame(MarshalFrame(nil))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty frame: %v, %d calls", err, len(got))
	}
}

func TestFrameDecodedArgsAreCopies(t *testing.T) {
	calls := []FrameCall{{Class: "C", Method: "m", Args: []byte{1, 2, 3}}}
	buf := MarshalFrame(calls)
	got, err := UnmarshalFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] = 0xff
	}
	if string(got[0].Args) != string([]byte{1, 2, 3}) {
		t.Fatal("decoded args alias the input buffer")
	}
}

func TestFrameErrors(t *testing.T) {
	calls := []FrameCall{{Class: "Account", Method: "relay$set", Hash: 9, Args: []byte{1, 2}}}
	buf := MarshalFrame(calls)
	for cut := 1; cut < len(buf); cut++ {
		if _, err := UnmarshalFrame(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d bytes not detected", cut, len(buf))
		}
	}
	if _, err := UnmarshalFrame(append(buf, 0)); err == nil {
		t.Fatal("trailing bytes not detected")
	}
	if _, err := UnmarshalFrame(nil); err == nil {
		t.Fatal("empty input not detected")
	}
}
