package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// This file is the wire vocabulary of the zero-copy ring data plane
// (internal/ring): fixed-capacity "slot" encoding variants and the
// single-call submission format.
//
// A ring slot is a fixed region of untrusted shared memory. Encoding
// into it must never reallocate — a grown slice would silently point at
// private Go memory instead of the slot, defeating the zero-copy path
// and the in-place seal that follows. The *Slot variants therefore
// check the exact precomputed size (Size/SizeValues/FrameSize) against
// the slot's remaining capacity up front and fail with ErrSlotFull
// instead of growing.

// ErrSlotFull is returned by the slot-encoding variants when the
// encoded payload would exceed the slot's fixed capacity. Callers fall
// back to the (growable, pooled) frame path.
var ErrSlotFull = errors.New("wire: encoded payload exceeds slot capacity")

// AppendValuesSlot is AppendValues into a fixed-capacity slot buffer:
// it returns ErrSlotFull — without writing — when the exact encoded
// size does not fit in cap(slot)-len(slot), and otherwise guarantees
// the append never reallocates, so the returned slice aliases slot's
// backing array.
func AppendValuesSlot(slot []byte, vs []Value) ([]byte, error) {
	if SizeValues(vs) > cap(slot)-len(slot) {
		return slot, ErrSlotFull
	}
	return AppendValues(slot, vs), nil
}

// AppendFrameSlot is AppendFrame into a fixed-capacity slot buffer,
// with the same no-reallocation guarantee as AppendValuesSlot.
func AppendFrameSlot(slot []byte, calls []FrameCall) ([]byte, error) {
	if FrameSize(calls) > cap(slot)-len(slot) {
		return slot, ErrSlotFull
	}
	return AppendFrame(slot, calls), nil
}

// Ring-call header flags.
const (
	// CallWantResult marks a submission whose completion carries a
	// marshalled result vector; batched void calls leave it clear so
	// the consumer skips (and never charges for) result serialization.
	CallWantResult = 1 << 0
)

// CallSize returns the exact slot bytes of one ring submission: the
// call header (flags, class, method, hash, argument length prefix)
// followed by argsLen bytes of marshalled arguments. Pass
// SizeValues(args) as argsLen to size a zero-copy encode.
func CallSize(class, method string, hash int64, argsLen int) int {
	return 1 + // flags
		uvarintLen(uint64(len(class))) + len(class) +
		uvarintLen(uint64(len(method))) + len(method) +
		varintLen(hash) +
		uvarintLen(uint64(argsLen)) + argsLen
}

// AppendCallHeader encodes a ring-call header onto dst: flags,
// length-prefixed class and method names, the varint receiver hash and
// the argument byte-length prefix. The caller appends exactly argsLen
// marshalled argument bytes afterwards — for the zero-copy path via
// AppendValues straight into the slot, with the length prefix trusted
// from the exact-size precompute.
func AppendCallHeader(dst []byte, class, method string, hash int64, flags byte, argsLen int) []byte {
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(len(class)))
	dst = append(dst, class...)
	dst = binary.AppendUvarint(dst, uint64(len(method)))
	dst = append(dst, method...)
	dst = binary.AppendVarint(dst, hash)
	dst = binary.AppendUvarint(dst, uint64(argsLen))
	return dst
}

// AppendCallSlot encodes one complete ring submission — header plus
// argument vector — into a fixed-capacity slot buffer with zero
// intermediate copies: the arguments are encoded in place after the
// header, whose length prefix comes from the exact-size precompute.
// Returns ErrSlotFull, without writing, when the submission does not
// fit.
func AppendCallSlot(slot []byte, class, method string, hash int64, flags byte, args []Value) ([]byte, error) {
	argsLen := SizeValues(args)
	if CallSize(class, method, hash, argsLen) > cap(slot)-len(slot) {
		return slot, ErrSlotFull
	}
	slot = AppendCallHeader(slot, class, method, hash, flags, argsLen)
	return AppendValues(slot, args), nil
}

// DecodeCall decodes a ring submission produced by AppendCallSlot (or
// AppendCallHeader + argument bytes). The returned args slice ALIASES
// buf — the zero-copy read side — so it is valid only until the slot is
// reused; class and method are copies.
func DecodeCall(buf []byte) (class, method string, hash int64, flags byte, args []byte, err error) {
	if len(buf) == 0 {
		return "", "", 0, 0, nil, ErrTruncated
	}
	flags, n := buf[0], 1
	cb, l, err := decodeBytes(buf[n:])
	if err != nil {
		return "", "", 0, 0, nil, err
	}
	class, n = string(cb), n+l
	mb, l, err := decodeBytes(buf[n:])
	if err != nil {
		return "", "", 0, 0, nil, err
	}
	method, n = string(mb), n+l
	hash, l = binary.Varint(buf[n:])
	if l <= 0 {
		return "", "", 0, 0, nil, ErrTruncated
	}
	n += l
	argsLen, l := binary.Uvarint(buf[n:])
	if l <= 0 || uint64(len(buf)-n-l) < argsLen {
		return "", "", 0, 0, nil, ErrTruncated
	}
	n += l
	args = buf[n : n+int(argsLen)]
	if n+int(argsLen) != len(buf) {
		return "", "", 0, 0, nil, fmt.Errorf("wire: %d trailing call-slot bytes", len(buf)-n-int(argsLen))
	}
	return class, method, hash, flags, args, nil
}
