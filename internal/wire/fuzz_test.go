package wire

import (
	"testing"
)

// FuzzUnmarshal hardens the boundary decoder: arbitrary bytes must never
// panic, and every successfully decoded value must re-encode to a buffer
// that decodes back to an equal value (canonical round trip). The decoder
// parses attacker-influenced data — an untrusted runtime can hand the
// enclave arbitrary argument buffers — so robustness here is part of the
// threat model (§4).
func FuzzUnmarshal(f *testing.F) {
	seeds := [][]byte{
		nil,
		{0},
		{255},
		Marshal(Null()),
		Marshal(Int(-12345)),
		Marshal(Str("hello")),
		Marshal(Bytes([]byte{1, 2, 3})),
		Marshal(List(Int(1), Str("x"), Ref("C", 9))),
		Marshal(Map(Pair{Key: "k", Val: Float(1.5)})),
		MarshalList([]Value{Int(1), List(Bool(true))}),
		{byte(KindList), 0xff, 0xff, 0xff, 0xff, 0x0f}, // huge count
		{byte(KindString), 0xff, 0xff, 0x7f},           // huge length
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, n, err := Unmarshal(data)
		if err != nil {
			return
		}
		if n < 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re := Marshal(v)
		v2, _, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !v2.Equal(v) {
			t.Fatalf("canonical round trip: %v != %v", v2, v)
		}
	})
}
