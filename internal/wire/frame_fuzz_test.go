package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame hardens the batched-transition frame decoder the same
// way FuzzUnmarshal hardens the value decoder: frames cross the enclave
// boundary, so arbitrary input must never panic or over-allocate, and a
// decoded frame must re-encode canonically.
func FuzzDecodeFrame(f *testing.F) {
	seeds := [][]byte{
		nil,
		{0},
		{1},
		{0xff, 0xff, 0xff, 0xff, 0x0f}, // huge call count, no payload
		MarshalFrame(nil),
		MarshalFrame([]FrameCall{{Class: "Account", Method: "relay$set", Hash: -1, Args: MarshalList([]Value{Int(7)})}}),
		MarshalFrame([]FrameCall{
			{Class: "KV", Method: "relay$put", Hash: 1 << 40, Args: MarshalList([]Value{Str("k"), Bytes([]byte{1, 2})})},
			{Class: "", Method: "<gc-release>", Hash: 0, Args: nil},
		}),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		calls, err := UnmarshalFrame(data)
		if err != nil {
			return
		}
		// Varint encodings are not unique (the decoder accepts padded
		// forms), so the invariant is semantic: re-encoding decodes to
		// the same calls, and the re-encoded form is a fixed point.
		re := MarshalFrame(calls)
		calls2, err := UnmarshalFrame(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(calls2) != len(calls) {
			t.Fatalf("re-decode count %d != %d", len(calls2), len(calls))
		}
		for i := range calls {
			if calls2[i].Class != calls[i].Class || calls2[i].Method != calls[i].Method ||
				calls2[i].Hash != calls[i].Hash || !bytes.Equal(calls2[i].Args, calls[i].Args) {
				t.Fatalf("round trip call %d: %+v != %+v", i, calls2[i], calls[i])
			}
		}
		if re2 := MarshalFrame(calls2); !bytes.Equal(re2, re) {
			t.Fatalf("re-encode not stable: %x != %x", re2, re)
		}
	})
}

// TestFrameCorruptInputs pins down the error behaviour of the frame
// decoder on specific malformed shapes — the named cousins of the random
// truncation loop in TestFrameErrors.
func TestFrameCorruptInputs(t *testing.T) {
	valid := MarshalFrame([]FrameCall{
		{Class: "Account", Method: "relay$set", Hash: 9, Args: MarshalList([]Value{Int(1)})},
	})
	cases := []struct {
		name string
		buf  []byte
	}{
		{"empty", nil},
		{"count without calls", []byte{3}},
		{"huge count no payload", []byte{0xff, 0xff, 0xff, 0xff, 0x0f}},
		{"unterminated count varint", []byte{0x80, 0x80, 0x80}},
		{"class length overruns", []byte{1, 0x20, 'A'}},
		{"huge class length", append([]byte{1}, 0xff, 0xff, 0xff, 0xff, 0x0f)},
		{"missing method", []byte{1, 1, 'C'}},
		{"missing hash", []byte{1, 1, 'C', 1, 'm'}},
		{"missing args", []byte{1, 1, 'C', 1, 'm', 0x02}},
		{"args length overruns", []byte{1, 1, 'C', 1, 'm', 0x02, 0x7f, 0x01}},
		{"trailing bytes", append(append([]byte{}, valid...), 0xAA)},
		{"second call truncated", bytes.Replace(valid, []byte{1}, []byte{2}, 1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := UnmarshalFrame(tc.buf); err == nil {
				t.Fatalf("corrupt frame %x accepted", tc.buf)
			}
		})
	}
}

// TestFrameCountClamp checks the allocation clamp: a frame announcing an
// absurd call count must fail on the missing payload without first
// allocating storage for the announced count.
func TestFrameCountClamp(t *testing.T) {
	// Announces 2^32 calls with a 1-byte payload. clampCount bounds the
	// preallocation by the remaining bytes; decode must error, not OOM.
	buf := []byte{0x80, 0x80, 0x80, 0x80, 0x10, 0x00}
	if _, err := UnmarshalFrame(buf); err == nil {
		t.Fatal("frame with 2^32 announced calls accepted")
	}
}
