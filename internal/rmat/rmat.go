// Package rmat generates synthetic power-law directed graphs with the
// R-MAT recursive-matrix algorithm [Chakrabarti et al., SDM'04], the
// generator the paper uses for its GraphChi PageRank inputs (§6.5: "We
// run the PageRank algorithm on synthetic directed graphs generated using
// the RMAT algorithm").
package rmat

import "fmt"

// Edge is one directed edge.
type Edge struct {
	Src int32
	Dst int32
}

// Graph is an edge-list graph.
type Graph struct {
	NumVertices int
	Edges       []Edge
}

// Default R-MAT partition probabilities (the common (0.57, 0.19, 0.19,
// 0.05) parameterisation).
const (
	probA = 0.57
	probB = 0.19
	probC = 0.19
)

// Generate produces a graph with numVertices vertices (rounded up to a
// power of two internally for quadrant recursion; emitted vertex ids are
// folded into range) and numEdges edges. Generation is deterministic for
// a given seed.
func Generate(numVertices, numEdges int, seed int64) (Graph, error) {
	if numVertices < 2 {
		return Graph{}, fmt.Errorf("rmat: need at least 2 vertices, got %d", numVertices)
	}
	if numEdges < 1 {
		return Graph{}, fmt.Errorf("rmat: need at least 1 edge, got %d", numEdges)
	}
	scale := 1
	for 1<<scale < numVertices {
		scale++
	}
	rng := uint64(seed)*2862933555777941757 + 3037000493
	next := func() float64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return float64(rng>>11) / float64(1<<53)
	}
	g := Graph{NumVertices: numVertices, Edges: make([]Edge, 0, numEdges)}
	for len(g.Edges) < numEdges {
		var src, dst int
		for level := scale - 1; level >= 0; level-- {
			r := next()
			switch {
			case r < probA:
				// top-left: neither bit set
			case r < probA+probB:
				dst |= 1 << level
			case r < probA+probB+probC:
				src |= 1 << level
			default:
				src |= 1 << level
				dst |= 1 << level
			}
		}
		src %= numVertices
		dst %= numVertices
		if src == dst {
			// Skip self loops, as GraphChi's sharder does.
			src, dst = 0, 0
			continue
		}
		g.Edges = append(g.Edges, Edge{Src: int32(src), Dst: int32(dst)})
		src, dst = 0, 0
	}
	return g, nil
}

// OutDegrees computes the out-degree of every vertex.
func (g Graph) OutDegrees() []int {
	deg := make([]int, g.NumVertices)
	for _, e := range g.Edges {
		deg[e.Src]++
	}
	return deg
}
