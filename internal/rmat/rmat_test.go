package rmat

import "testing"

func TestGenerateBasics(t *testing.T) {
	g, err := Generate(1000, 5000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices != 1000 {
		t.Fatalf("NumVertices = %d", g.NumVertices)
	}
	if len(g.Edges) != 5000 {
		t.Fatalf("edges = %d", len(g.Edges))
	}
	for _, e := range g.Edges {
		if e.Src < 0 || int(e.Src) >= 1000 || e.Dst < 0 || int(e.Dst) >= 1000 {
			t.Fatalf("edge out of range: %+v", e)
		}
		if e.Src == e.Dst {
			t.Fatalf("self loop: %+v", e)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g1, err := Generate(512, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Generate(512, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g1.Edges {
		if g1.Edges[i] != g2.Edges[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, g1.Edges[i], g2.Edges[i])
		}
	}
	g3, err := Generate(512, 2000, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range g1.Edges {
		if g1.Edges[i] == g3.Edges[i] {
			same++
		}
	}
	if same == len(g1.Edges) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestPowerLawSkew(t *testing.T) {
	// R-MAT with a=0.57 concentrates edges on low-id vertices: the top
	// 10% of vertices by id must carry well under 10% of the sources,
	// and vertex 0's neighbourhood must be dense.
	g, err := Generate(1024, 50000, 3)
	if err != nil {
		t.Fatal(err)
	}
	deg := g.OutDegrees()
	lowTenth, total := 0, 0
	for v, d := range deg {
		total += d
		if v < 103 {
			lowTenth += d
		}
	}
	if total != len(g.Edges) {
		t.Fatalf("degree sum %d != edges %d", total, len(g.Edges))
	}
	// The lowest 10% of ids should hold far more than 10% of edges.
	if float64(lowTenth) < 0.2*float64(total) {
		t.Fatalf("no power-law skew: low tenth holds %d of %d", lowTenth, total)
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(1, 10, 0); err == nil {
		t.Fatal("accepted 1 vertex")
	}
	if _, err := Generate(10, 0, 0); err == nil {
		t.Fatal("accepted 0 edges")
	}
}

func TestNonPowerOfTwoVertices(t *testing.T) {
	g, err := Generate(1000, 3000, 11)
	if err != nil {
		t.Fatal(err)
	}
	maxV := int32(0)
	for _, e := range g.Edges {
		if e.Src > maxV {
			maxV = e.Src
		}
		if e.Dst > maxV {
			maxV = e.Dst
		}
	}
	if int(maxV) >= 1000 {
		t.Fatalf("vertex %d out of range", maxV)
	}
}
