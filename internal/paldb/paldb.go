// Package paldb implements an embeddable write-once key-value store in
// the style of LinkedIn's PalDB, the macro-benchmark of the paper's §6.5.
//
// Like PalDB, the store is built once by a writer and then served
// read-only: the writer streams records to the store file with regular
// I/O ("PalDB ... does regular I/O for writes to the store file") and
// seals it with a hash index; the reader memory-maps the file ("PalDB
// optimises reads by memory mapping the store file in memory") and
// serves gets from the mapped bytes.
//
// The store operates over a shim.FS, so when it runs inside an enclave
// every write is an ocall through the shim (§5.4) while reads hit the
// mapped copy — exactly the asymmetry that makes the RTWU partitioning
// scheme much faster than RUWT in Fig. 7.
//
// File layout:
//
//	[8]  magic "PALDBGO1"
//	[8]  record count
//	[8]  index offset
//	...  records: varint keyLen, key, varint valLen, val
//	...  index: 8-byte capacity, then capacity slots of
//	     (8-byte key hash, 8-byte record offset); offset 0 = empty
package paldb

import (
	"encoding/binary"
	"errors"
	"fmt"

	"montsalvat/internal/shim"
)

const (
	magic      = "PALDBGO1"
	headerSize = 24
	slotSize   = 16
	loadFactor = 0.7
)

// Errors returned by the store.
var (
	ErrKeyNotFound  = errors.New("paldb: key not found")
	ErrDuplicateKey = errors.New("paldb: duplicate key in write-once store")
	ErrClosed       = errors.New("paldb: writer already closed")
	ErrCorrupt      = errors.New("paldb: corrupt store file")
)

// WriterStats counts writer activity.
type WriterStats struct {
	// Puts is the number of records written.
	Puts int
	// BytesWritten counts all file writes including the index.
	BytesWritten int64
	// WriteOps counts FS write operations (each is an ocall when the
	// writer runs inside the enclave).
	WriteOps int
}

// Writer builds a store file. It is not safe for concurrent use.
type Writer struct {
	fs     shim.FS
	name   string
	off    int64
	keys   map[uint64]int64 // key hash -> record offset
	closed bool
	stats  WriterStats
}

// NewWriter creates a store file, truncating any previous content, and
// writes the (placeholder) header.
func NewWriter(fs shim.FS, name string) (*Writer, error) {
	if err := fs.Remove(name); err != nil && !errors.Is(err, shim.ErrNotFound) {
		return nil, err
	}
	w := &Writer{fs: fs, name: name, off: headerSize, keys: make(map[uint64]int64)}
	header := make([]byte, headerSize)
	copy(header, magic)
	if err := fs.WriteAt(name, 0, header); err != nil {
		return nil, err
	}
	w.stats.WriteOps++
	w.stats.BytesWritten += headerSize
	return w, nil
}

// Put appends one record. Keys must be unique (write-once semantics).
// Each Put performs one file write, like PalDB's streaming store build.
func (w *Writer) Put(key, value []byte) error {
	if w.closed {
		return ErrClosed
	}
	h := hashKey(key)
	if _, dup := w.keys[h]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateKey, key)
	}
	rec := make([]byte, 0, len(key)+len(value)+8)
	rec = binary.AppendUvarint(rec, uint64(len(key)))
	rec = append(rec, key...)
	rec = binary.AppendUvarint(rec, uint64(len(value)))
	rec = append(rec, value...)
	if err := w.fs.WriteAt(w.name, w.off, rec); err != nil {
		return err
	}
	w.keys[h] = w.off
	w.off += int64(len(rec))
	w.stats.Puts++
	w.stats.WriteOps++
	w.stats.BytesWritten += int64(len(rec))
	return nil
}

// Close writes the hash index and the final header, sealing the store.
func (w *Writer) Close() error {
	if w.closed {
		return ErrClosed
	}
	w.closed = true

	capacity := 8
	for float64(len(w.keys)) > loadFactor*float64(capacity) {
		capacity *= 2
	}
	index := make([]byte, 8+capacity*slotSize)
	binary.LittleEndian.PutUint64(index, uint64(capacity))
	for h, off := range w.keys {
		slot := int(h % uint64(capacity))
		for {
			base := 8 + slot*slotSize
			if binary.LittleEndian.Uint64(index[base+8:]) == 0 {
				binary.LittleEndian.PutUint64(index[base:], h)
				binary.LittleEndian.PutUint64(index[base+8:], uint64(off))
				break
			}
			slot = (slot + 1) % capacity
		}
	}
	if err := w.fs.WriteAt(w.name, w.off, index); err != nil {
		return err
	}
	w.stats.WriteOps++
	w.stats.BytesWritten += int64(len(index))

	header := make([]byte, headerSize)
	copy(header, magic)
	binary.LittleEndian.PutUint64(header[8:], uint64(len(w.keys)))
	binary.LittleEndian.PutUint64(header[16:], uint64(w.off))
	if err := w.fs.WriteAt(w.name, 0, header); err != nil {
		return err
	}
	w.stats.WriteOps++
	w.stats.BytesWritten += headerSize
	return nil
}

// Stats returns writer counters.
func (w *Writer) Stats() WriterStats { return w.stats }

// ReaderStats counts reader activity.
type ReaderStats struct {
	// Gets counts lookups; Hits the successful ones.
	Gets int
	Hits int
	// MappedBytes is the size of the memory-mapped store file.
	MappedBytes int64
	// BytesAccessed counts mapped bytes touched by lookups (the traffic
	// that pays MEE cost when the reader runs inside an enclave).
	BytesAccessed int64
}

// Reader serves lookups from a sealed store. It is not safe for
// concurrent use.
type Reader struct {
	data     []byte // the "memory-mapped" store file
	count    int
	indexOff int64
	capacity int
	stats    ReaderStats
	// touch, when set, is invoked with the number of mapped bytes each
	// lookup reads — the hook the enclave runtime uses to charge MEE
	// cost for accessing the map from trusted code.
	touch func(n int)
}

// Open memory-maps the store file. The whole file is read once (a single
// large I/O), matching PalDB's mmap-based reader.
func Open(fs shim.FS, name string) (*Reader, error) {
	size, err := fs.Size(name)
	if err != nil {
		return nil, err
	}
	if size < headerSize {
		return nil, fmt.Errorf("%w: file too small", ErrCorrupt)
	}
	data, err := fs.ReadAt(name, 0, int(size))
	if err != nil {
		return nil, err
	}
	if string(data[:8]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	count := int(binary.LittleEndian.Uint64(data[8:]))
	indexOff := int64(binary.LittleEndian.Uint64(data[16:]))
	if indexOff < headerSize || indexOff+8 > size {
		return nil, fmt.Errorf("%w: bad index offset", ErrCorrupt)
	}
	capacity := int(binary.LittleEndian.Uint64(data[indexOff:]))
	if capacity <= 0 || indexOff+8+int64(capacity*slotSize) > size {
		return nil, fmt.Errorf("%w: bad index capacity", ErrCorrupt)
	}
	return &Reader{
		data:     data,
		count:    count,
		indexOff: indexOff,
		capacity: capacity,
		stats:    ReaderStats{MappedBytes: size},
	}, nil
}

// SetTouch installs a hook invoked with the mapped bytes each lookup
// touches.
func (r *Reader) SetTouch(touch func(n int)) { r.touch = touch }

// Count returns the number of records.
func (r *Reader) Count() int { return r.count }

// Get returns the value stored for key.
func (r *Reader) Get(key []byte) ([]byte, error) {
	r.stats.Gets++
	h := hashKey(key)
	slot := int(h % uint64(r.capacity))
	touched := 0
	defer func() {
		r.stats.BytesAccessed += int64(touched)
		if r.touch != nil {
			r.touch(touched)
		}
	}()
	for probes := 0; probes < r.capacity; probes++ {
		base := r.indexOff + 8 + int64(slot*slotSize)
		slotHash := binary.LittleEndian.Uint64(r.data[base:])
		slotOff := binary.LittleEndian.Uint64(r.data[base+8:])
		touched += slotSize
		if slotOff == 0 {
			return nil, fmt.Errorf("%w: %q", ErrKeyNotFound, key)
		}
		if slotHash == h {
			k, v, n, err := r.record(int64(slotOff))
			if err != nil {
				return nil, err
			}
			touched += n
			if string(k) == string(key) {
				r.stats.Hits++
				return v, nil
			}
		}
		slot = (slot + 1) % r.capacity
	}
	return nil, fmt.Errorf("%w: %q", ErrKeyNotFound, key)
}

// Stats returns reader counters.
func (r *Reader) Stats() ReaderStats { return r.stats }

func (r *Reader) record(off int64) (key, val []byte, n int, err error) {
	if off >= int64(len(r.data)) {
		return nil, nil, 0, ErrCorrupt
	}
	buf := r.data[off:]
	kLen, c1 := binary.Uvarint(buf)
	if c1 <= 0 || uint64(len(buf)-c1) < kLen {
		return nil, nil, 0, ErrCorrupt
	}
	key = buf[c1 : c1+int(kLen)]
	rest := buf[c1+int(kLen):]
	vLen, c2 := binary.Uvarint(rest)
	if c2 <= 0 || uint64(len(rest)-c2) < vLen {
		return nil, nil, 0, ErrCorrupt
	}
	val = rest[c2 : c2+int(vLen)]
	return key, val, c1 + int(kLen) + c2 + int(vLen), nil
}

// hashKey is FNV-1a, standing in for PalDB's key hashing (the paper notes
// a strong hash such as MD5 minimises collisions; FNV-1a over full keys
// plus an exact key compare gives the same correctness).
func hashKey(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	if h == 0 {
		h = 1 // offset 0 marks empty slots
	}
	return h
}
