package paldb

import (
	"fmt"
)

// Iterator walks all records of a sealed store in insertion order, like
// PalDB's StoreReader.iterable(). It reads from the reader's memory map,
// so iteration inside an enclave pays MEE cost through the touch hook.
type Iterator struct {
	r   *Reader
	off int64
	idx int

	key []byte
	val []byte
	err error
}

// Iterate returns an iterator positioned before the first record.
func (r *Reader) Iterate() *Iterator {
	return &Iterator{r: r, off: headerSize}
}

// Next advances to the next record, returning false at the end of the
// store or on error (check Err).
func (it *Iterator) Next() bool {
	if it.err != nil || it.idx >= it.r.count {
		return false
	}
	if it.off >= it.r.indexOff {
		it.err = fmt.Errorf("%w: record %d overruns the data section", ErrCorrupt, it.idx)
		return false
	}
	key, val, n, err := it.r.record(it.off)
	if err != nil {
		it.err = err
		return false
	}
	it.key = key
	it.val = val
	it.off += int64(n)
	it.idx++
	it.r.stats.BytesAccessed += int64(n)
	if it.r.touch != nil {
		it.r.touch(n)
	}
	return true
}

// Key returns the current record's key. The slice aliases the store map;
// copy it to retain it past the next call to Next.
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current record's value (aliases the store map).
func (it *Iterator) Value() []byte { return it.val }

// Err returns the error that stopped iteration, if any.
func (it *Iterator) Err() error { return it.err }
