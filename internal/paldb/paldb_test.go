package paldb

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"montsalvat/internal/shim"
)

func buildStore(t *testing.T, fs shim.FS, name string, kv map[string]string) {
	t.Helper()
	w, err := NewWriter(fs, name)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range kv {
		if err := w.Put([]byte(k), []byte(v)); err != nil {
			t.Fatalf("Put(%q): %v", k, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := shim.NewMemFS()
	kv := map[string]string{
		"alpha": "one",
		"beta":  "two",
		"gamma": "a much longer value with some structure 0123456789",
		"":      "empty key is legal",
	}
	buildStore(t, fs, "store.paldb", kv)

	r, err := Open(fs, "store.paldb")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if r.Count() != len(kv) {
		t.Fatalf("Count = %d, want %d", r.Count(), len(kv))
	}
	for k, v := range kv {
		got, err := r.Get([]byte(k))
		if err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
		if string(got) != v {
			t.Fatalf("Get(%q) = %q, want %q", k, got, v)
		}
	}
	if _, err := r.Get([]byte("missing")); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("missing key: %v", err)
	}
	st := r.Stats()
	if st.Gets != len(kv)+1 || st.Hits != len(kv) {
		t.Fatalf("reader stats: %+v", st)
	}
}

func TestWriteOnceSemantics(t *testing.T) {
	fs := shim.NewMemFS()
	w, err := NewWriter(fs, "db")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Put([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := w.Put([]byte("k"), []byte("v2")); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("duplicate: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Put([]byte("late"), []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("put after close: %v", err)
	}
	if err := w.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
}

func TestEachPutIsOneWrite(t *testing.T) {
	// PalDB does regular I/O per write: the write-op count (= ocalls
	// when trusted) must scale with the number of puts.
	fs := shim.NewMemFS()
	w, err := NewWriter(fs, "db")
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if err := w.Put([]byte("key"+strconv.Itoa(i)), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Puts != n {
		t.Fatalf("Puts = %d", st.Puts)
	}
	// header + n puts + index + final header.
	if st.WriteOps != n+3 {
		t.Fatalf("WriteOps = %d, want %d", st.WriteOps, n+3)
	}
}

func TestReaderIsMmapStyle(t *testing.T) {
	fs := shim.NewMemFS()
	kv := map[string]string{}
	for i := 0; i < 50; i++ {
		kv["k"+strconv.Itoa(i)] = "v" + strconv.Itoa(i)
	}
	buildStore(t, fs, "db", kv)
	r, err := Open(fs, "db")
	if err != nil {
		t.Fatal(err)
	}
	size, _ := fs.Size("db")
	if r.Stats().MappedBytes != size {
		t.Fatalf("MappedBytes = %d, want %d", r.Stats().MappedBytes, size)
	}
	// Reads must touch only a small portion of the map per get.
	if _, err := r.Get([]byte("k7")); err != nil {
		t.Fatal(err)
	}
	if r.Stats().BytesAccessed >= size/2 {
		t.Fatalf("Get scanned the file: %d of %d bytes", r.Stats().BytesAccessed, size)
	}
}

func TestTouchHook(t *testing.T) {
	fs := shim.NewMemFS()
	buildStore(t, fs, "db", map[string]string{"a": "b"})
	r, err := Open(fs, "db")
	if err != nil {
		t.Fatal(err)
	}
	var touched int
	r.SetTouch(func(n int) { touched += n })
	if _, err := r.Get([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if touched == 0 {
		t.Fatal("touch hook not invoked")
	}
	if int64(touched) != r.Stats().BytesAccessed {
		t.Fatalf("touch %d != stats %d", touched, r.Stats().BytesAccessed)
	}
}

func TestOpenErrors(t *testing.T) {
	fs := shim.NewMemFS()
	if _, err := Open(fs, "absent"); !errors.Is(err, shim.ErrNotFound) {
		t.Fatalf("absent: %v", err)
	}
	if err := fs.WriteAt("tiny", 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(fs, "tiny"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tiny: %v", err)
	}
	if err := fs.WriteAt("badmagic", 0, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(fs, "badmagic"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("badmagic: %v", err)
	}
}

func TestNewWriterTruncatesExisting(t *testing.T) {
	fs := shim.NewMemFS()
	buildStore(t, fs, "db", map[string]string{"old": "data"})
	buildStore(t, fs, "db", map[string]string{"new": "data"})
	r, err := Open(fs, "db")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get([]byte("old")); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("old key survived rebuild: %v", err)
	}
	if _, err := r.Get([]byte("new")); err != nil {
		t.Fatal(err)
	}
}

func TestLargeStoreOnDirFS(t *testing.T) {
	fs, err := shim.NewDirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(fs, "big.paldb")
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%06d", i))
		val := bytes.Repeat([]byte{byte(i)}, 32)
		if err := w.Put(key, val); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(fs, "big.paldb")
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, 999, 1998, 1999} {
		got, err := r.Get([]byte(fmt.Sprintf("key-%06d", i)))
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 32)) {
			t.Fatalf("value %d mismatch", i)
		}
	}
}

// Property: an arbitrary key/value set round-trips through the store.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fs := shim.NewMemFS()
		n := 1 + rng.Intn(60)
		kv := make(map[string]string, n)
		for i := 0; i < n; i++ {
			k := make([]byte, rng.Intn(24))
			rng.Read(k)
			v := make([]byte, rng.Intn(128))
			rng.Read(v)
			kv[string(k)] = string(v)
		}
		w, err := NewWriter(fs, "q")
		if err != nil {
			return false
		}
		for k, v := range kv {
			if err := w.Put([]byte(k), []byte(v)); err != nil {
				return false
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		r, err := Open(fs, "q")
		if err != nil {
			return false
		}
		for k, v := range kv {
			got, err := r.Get([]byte(k))
			if err != nil || string(got) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
