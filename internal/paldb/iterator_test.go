package paldb

import (
	"strconv"
	"testing"

	"montsalvat/internal/shim"
)

func TestIteratorVisitsAllRecords(t *testing.T) {
	fs := shim.NewMemFS()
	w, err := NewWriter(fs, "it")
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		if err := w.Put([]byte("k"+strconv.Itoa(i)), []byte("v"+strconv.Itoa(i*i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(fs, "it")
	if err != nil {
		t.Fatal(err)
	}

	it := r.Iterate()
	seen := 0
	for it.Next() {
		// Records come back in insertion order.
		wantK := "k" + strconv.Itoa(seen)
		wantV := "v" + strconv.Itoa(seen*seen)
		if string(it.Key()) != wantK || string(it.Value()) != wantV {
			t.Fatalf("record %d = (%q,%q), want (%q,%q)", seen, it.Key(), it.Value(), wantK, wantV)
		}
		seen++
	}
	if err := it.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	if seen != n {
		t.Fatalf("visited %d records, want %d", seen, n)
	}
	// Exhausted iterator stays exhausted.
	if it.Next() {
		t.Fatal("Next() after end returned true")
	}
}

func TestIteratorEmptyStore(t *testing.T) {
	fs := shim.NewMemFS()
	w, err := NewWriter(fs, "empty")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(fs, "empty")
	if err != nil {
		t.Fatal(err)
	}
	it := r.Iterate()
	if it.Next() {
		t.Fatal("empty store iterated")
	}
	if it.Err() != nil {
		t.Fatalf("Err: %v", it.Err())
	}
}

func TestIteratorTouchHook(t *testing.T) {
	fs := shim.NewMemFS()
	buildStore(t, fs, "touch", map[string]string{"a": "1", "b": "2"})
	r, err := Open(fs, "touch")
	if err != nil {
		t.Fatal(err)
	}
	var touched int
	r.SetTouch(func(n int) { touched += n })
	it := r.Iterate()
	for it.Next() {
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if touched == 0 {
		t.Fatal("iteration did not touch the map")
	}
}
