// Package demo builds the paper's illustrative bank-account application
// (Listing 1): trusted Account and AccountRegistry classes, an untrusted
// Person class, and an untrusted Main whose main method creates two
// persons, transfers money between their (enclave-resident) accounts and
// registers one account in the registry.
//
// The program is shared by the integration tests, the examples and the
// benchmark harness.
package demo

import (
	"fmt"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/wire"
)

// Class and method names of the demo program.
const (
	Account         = "Account"
	AccountRegistry = "AccountRegistry"
	Person          = "Person"
	Main            = "Main"
)

// BankProgram constructs the annotated program of Listing 1. main returns
// [aliceBalance, bobBalance, registrySize] so callers can verify the
// computation end-to-end.
func BankProgram() (*classmodel.Program, error) {
	p := classmodel.NewProgram()

	if err := p.AddClass(accountClass()); err != nil {
		return nil, err
	}
	if err := p.AddClass(registryClass()); err != nil {
		return nil, err
	}
	if err := p.AddClass(personClass()); err != nil {
		return nil, err
	}
	if err := p.AddClass(mainClass()); err != nil {
		return nil, err
	}
	p.MainClass = Main
	return p, nil
}

// MustBankProgram is BankProgram for tests and examples where
// construction cannot fail.
func MustBankProgram() *classmodel.Program {
	p, err := BankProgram()
	if err != nil {
		panic(fmt.Sprintf("demo: %v", err))
	}
	return p
}

// accountClass models Listing 1 lines 1-12 (@Trusted).
func accountClass() *classmodel.Class {
	c := classmodel.NewClass(Account, classmodel.Trusted)
	mustField(c, classmodel.Field{Name: "owner", Kind: classmodel.FieldString})
	mustField(c, classmodel.Field{Name: "balance", Kind: classmodel.FieldInt})

	mustMethod(c, &classmodel.Method{
		Name:   classmodel.CtorName,
		Public: true,
		Params: []classmodel.Param{
			{Name: "s", Kind: wire.KindString},
			{Name: "b", Kind: wire.KindInt},
		},
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			if err := env.SetField(self, "owner", args[0]); err != nil {
				return wire.Value{}, err
			}
			return wire.Null(), env.SetField(self, "balance", args[1])
		},
	})
	mustMethod(c, &classmodel.Method{
		Name:   "updateBalance",
		Public: true,
		Params: []classmodel.Param{{Name: "v", Kind: wire.KindInt}},
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			cur, err := env.GetField(self, "balance")
			if err != nil {
				return wire.Value{}, err
			}
			b, _ := cur.AsInt()
			v, _ := args[0].AsInt()
			return wire.Null(), env.SetField(self, "balance", wire.Int(b+v))
		},
	})
	mustMethod(c, &classmodel.Method{
		Name:    "getBalance",
		Public:  true,
		Returns: wire.KindInt,
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			return env.GetField(self, "balance")
		},
	})
	mustMethod(c, &classmodel.Method{
		Name:    "getOwner",
		Public:  true,
		Returns: wire.KindString,
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			return env.GetField(self, "owner")
		},
	})
	return c
}

// registryClass models Listing 1 lines 13-21 (@Trusted).
func registryClass() *classmodel.Class {
	c := classmodel.NewClass(AccountRegistry, classmodel.Trusted)
	mustField(c, classmodel.Field{Name: "reg", Kind: classmodel.FieldRef, ClassName: classmodel.BuiltinList})

	mustMethod(c, &classmodel.Method{
		Name:      classmodel.CtorName,
		Public:    true,
		Allocates: []string{classmodel.BuiltinList},
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			list, err := env.New(classmodel.BuiltinList)
			if err != nil {
				return wire.Value{}, err
			}
			return wire.Null(), env.SetField(self, "reg", list)
		},
	})
	mustMethod(c, &classmodel.Method{
		Name:   "addAccount",
		Public: true,
		Params: []classmodel.Param{{Name: "a", Kind: wire.KindRef, ClassName: Account}},
		Calls:  []classmodel.MethodRef{{Class: classmodel.BuiltinList, Method: "add"}},
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			list, err := env.GetField(self, "reg")
			if err != nil {
				return wire.Value{}, err
			}
			return env.Call(list, "add", args[0])
		},
	})
	mustMethod(c, &classmodel.Method{
		Name:    "size",
		Public:  true,
		Returns: wire.KindInt,
		Calls:   []classmodel.MethodRef{{Class: classmodel.BuiltinList, Method: "size"}},
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			list, err := env.GetField(self, "reg")
			if err != nil {
				return wire.Value{}, err
			}
			return env.Call(list, "size")
		},
	})
	mustMethod(c, &classmodel.Method{
		Name:    "totalBalance",
		Public:  true,
		Returns: wire.KindInt,
		Calls: []classmodel.MethodRef{
			{Class: classmodel.BuiltinList, Method: "size"},
			{Class: classmodel.BuiltinList, Method: "get"},
			{Class: Account, Method: "getBalance"},
		},
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			list, err := env.GetField(self, "reg")
			if err != nil {
				return wire.Value{}, err
			}
			sizeV, err := env.Call(list, "size")
			if err != nil {
				return wire.Value{}, err
			}
			n, _ := sizeV.AsInt()
			var total int64
			for i := int64(0); i < n; i++ {
				acct, err := env.Call(list, "get", wire.Int(i))
				if err != nil {
					return wire.Value{}, err
				}
				bal, err := env.Call(acct, "getBalance")
				if err != nil {
					return wire.Value{}, err
				}
				b, _ := bal.AsInt()
				total += b
			}
			return wire.Int(total), nil
		},
	})
	return c
}

// personClass models Listing 1 lines 22-37 (@Untrusted).
func personClass() *classmodel.Class {
	c := classmodel.NewClass(Person, classmodel.Untrusted)
	mustField(c, classmodel.Field{Name: "name", Kind: classmodel.FieldString})
	mustField(c, classmodel.Field{Name: "account", Kind: classmodel.FieldRef, ClassName: Account})

	mustMethod(c, &classmodel.Method{
		Name:   classmodel.CtorName,
		Public: true,
		Params: []classmodel.Param{
			{Name: "s", Kind: wire.KindString},
			{Name: "v", Kind: wire.KindInt},
		},
		Allocates: []string{Account},
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			if err := env.SetField(self, "name", args[0]); err != nil {
				return wire.Value{}, err
			}
			// Trusted in untrusted obj: instantiating Account from the
			// untrusted runtime creates a proxy + enclave mirror.
			acct, err := env.New(Account, args[0], args[1])
			if err != nil {
				return wire.Value{}, err
			}
			return wire.Null(), env.SetField(self, "account", acct)
		},
	})
	mustMethod(c, &classmodel.Method{
		Name:    "getAccount",
		Public:  true,
		Returns: wire.KindRef,
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			return env.GetField(self, "account")
		},
	})
	mustMethod(c, &classmodel.Method{
		Name:    "getName",
		Public:  true,
		Returns: wire.KindString,
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			return env.GetField(self, "name")
		},
	})
	mustMethod(c, &classmodel.Method{
		Name:   "transfer",
		Public: true,
		Params: []classmodel.Param{
			{Name: "p", Kind: wire.KindRef, ClassName: Person},
			{Name: "v", Kind: wire.KindInt},
		},
		Calls: []classmodel.MethodRef{
			{Class: Person, Method: "getAccount"},
			{Class: Account, Method: "updateBalance"},
		},
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			v, _ := args[1].AsInt()
			theirs, err := env.Call(args[0], "getAccount")
			if err != nil {
				return wire.Value{}, err
			}
			if _, err := env.Call(theirs, "updateBalance", wire.Int(v)); err != nil {
				return wire.Value{}, err
			}
			mine, err := env.GetField(self, "account")
			if err != nil {
				return wire.Value{}, err
			}
			_, err = env.Call(mine, "updateBalance", wire.Int(-v))
			return wire.Null(), err
		},
	})
	return c
}

// mainClass models Listing 1 lines 38-47 (@Untrusted).
func mainClass() *classmodel.Class {
	c := classmodel.NewClass(Main, classmodel.Untrusted)
	mustMethod(c, &classmodel.Method{
		Name:      classmodel.MainMethodName,
		Static:    true,
		Public:    true,
		Returns:   wire.KindList,
		Allocates: []string{Person, AccountRegistry},
		Calls: []classmodel.MethodRef{
			{Class: Person, Method: "transfer"},
			{Class: Person, Method: "getAccount"},
			{Class: AccountRegistry, Method: "addAccount"},
			{Class: AccountRegistry, Method: "size"},
			{Class: Account, Method: "getBalance"},
		},
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			p1, err := env.New(Person, wire.Str("Alice"), wire.Int(100))
			if err != nil {
				return wire.Value{}, err
			}
			p2, err := env.New(Person, wire.Str("Bob"), wire.Int(25))
			if err != nil {
				return wire.Value{}, err
			}
			if _, err := env.Call(p1, "transfer", p2, wire.Int(25)); err != nil {
				return wire.Value{}, err
			}
			reg, err := env.New(AccountRegistry)
			if err != nil {
				return wire.Value{}, err
			}
			a1, err := env.Call(p1, "getAccount")
			if err != nil {
				return wire.Value{}, err
			}
			if _, err := env.Call(reg, "addAccount", a1); err != nil {
				return wire.Value{}, err
			}

			aliceBal, err := env.Call(a1, "getBalance")
			if err != nil {
				return wire.Value{}, err
			}
			a2, err := env.Call(p2, "getAccount")
			if err != nil {
				return wire.Value{}, err
			}
			bobBal, err := env.Call(a2, "getBalance")
			if err != nil {
				return wire.Value{}, err
			}
			size, err := env.Call(reg, "size")
			if err != nil {
				return wire.Value{}, err
			}
			return wire.List(aliceBal, bobBal, size), nil
		},
	})
	return c
}

func mustField(c *classmodel.Class, f classmodel.Field) {
	if err := c.AddField(f); err != nil {
		panic(fmt.Sprintf("demo: %v", err))
	}
}

func mustMethod(c *classmodel.Class, m *classmodel.Method) {
	if err := c.AddMethod(m); err != nil {
		panic(fmt.Sprintf("demo: %v", err))
	}
}
