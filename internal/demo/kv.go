package demo

import (
	"fmt"
	"hash/fnv"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/wire"
)

// Class names of the secure KV demo program (paper §6.7), the workload
// served by the enclave gateway: storage logic (Entry, KVStore) is
// @Trusted and lives on the enclave heap; FrontEnd is the @Untrusted
// driver whose declared call graph makes the serving surface reachable.
const (
	KVEntry    = "Entry"
	KVStoreCls = "KVStore"
	KVFrontEnd = "FrontEnd"
	KVAuditLog = "AuditLog"
)

// KVRequests is the per-run request count of FrontEnd.main.
const KVRequests = 300

// kvBuckets is the fan-out of the store's enclave-resident hash index.
// Lookups scan one bucket instead of the whole store, so put/get stay
// near-constant as gateway workloads (which, unlike FrontEnd.main's
// 64-key loop, write unbounded keyspaces) grow the store.
const kvBuckets = 128

// KVProgram constructs the secure key-value store program. main returns
// [hits, misses, size]. The KVStore surface (put/get/size) is what the
// enclave gateway serves to network clients.
func KVProgram() (*classmodel.Program, error) {
	return KVProgramWithBuckets(kvBuckets)
}

// KVProgramWithBuckets is KVProgram with an explicit hash-index
// fan-out. Harnesses that build and tear down thousands of stores
// (the orderly model checker resets the world on every backtrack)
// shrink the fan-out so the constructor's bucket allocations stop
// dominating reset latency; the serving surface is unchanged.
func KVProgramWithBuckets(buckets int) (*classmodel.Program, error) {
	if buckets <= 0 {
		return nil, fmt.Errorf("demo: bucket fan-out must be positive, got %d", buckets)
	}
	p := classmodel.NewProgram()
	if err := p.AddClass(kvEntryClass()); err != nil {
		return nil, err
	}
	if err := p.AddClass(kvStoreClass(buckets)); err != nil {
		return nil, err
	}
	if err := p.AddClass(kvAuditLogClass()); err != nil {
		return nil, err
	}
	if err := p.AddClass(kvFrontEndClass()); err != nil {
		return nil, err
	}
	p.MainClass = KVFrontEnd
	return p, nil
}

// MustKVProgram is KVProgram for tests and commands where construction
// cannot fail.
func MustKVProgram() *classmodel.Program {
	p, err := KVProgram()
	if err != nil {
		panic(fmt.Sprintf("demo: %v", err))
	}
	return p
}

// kvEntryClass is a trusted key/value cell.
func kvEntryClass() *classmodel.Class {
	c := classmodel.NewClass(KVEntry, classmodel.Trusted)
	mustField(c, classmodel.Field{Name: "key", Kind: classmodel.FieldString})
	mustField(c, classmodel.Field{Name: "value", Kind: classmodel.FieldString})

	mustMethod(c, &classmodel.Method{
		Name:   classmodel.CtorName,
		Public: true,
		Params: []classmodel.Param{
			{Name: "k", Kind: wire.KindString},
			{Name: "v", Kind: wire.KindString},
		},
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			if err := env.SetField(self, "key", args[0]); err != nil {
				return wire.Null(), err
			}
			return wire.Null(), env.SetField(self, "value", args[1])
		},
	})
	for _, field := range []string{"key", "value"} {
		field := field
		mustMethod(c, &classmodel.Method{
			Name: "get" + field, Public: true, Returns: wire.KindString,
			Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
				return env.GetField(self, field)
			},
		})
	}
	mustMethod(c, &classmodel.Method{
		Name: "setvalue", Public: true,
		Params: []classmodel.Param{{Name: "v", Kind: wire.KindString}},
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			return wire.Null(), env.SetField(self, "value", args[0])
		},
	})
	return c
}

// kvAuditLogClass is an untrusted audit sink the trusted store reports
// writes to: its record method returns the running count, so the
// trusted→untrusted call is result-dependent and crosses the boundary
// immediately as an ocall nested under the put ecall — the pattern the
// transition tracer captures as a child span.
func kvAuditLogClass() *classmodel.Class {
	c := classmodel.NewClass(KVAuditLog, classmodel.Untrusted)
	mustField(c, classmodel.Field{Name: "count", Kind: classmodel.FieldInt})

	mustMethod(c, &classmodel.Method{
		Name: classmodel.CtorName, Public: true,
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			return wire.Null(), env.SetField(self, "count", wire.Int(0))
		},
	})
	mustMethod(c, &classmodel.Method{
		Name: "record", Public: true,
		Params:  []classmodel.Param{{Name: "k", Kind: wire.KindString}},
		Returns: wire.KindInt,
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			v, err := env.GetField(self, "count")
			if err != nil {
				return wire.Null(), err
			}
			n, _ := v.AsInt()
			if err := env.SetField(self, "count", wire.Int(n+1)); err != nil {
				return wire.Null(), err
			}
			return wire.Int(n + 1), nil
		},
	})
	return c
}

// kvStoreClass holds Entry objects on the enclave heap, reachable two
// ways: a flat insertion-ordered list (the O(1) enumeration surface the
// durability layer's snapshot walker drives through keyat) and a
// fixed-fan-out hash index of bucket lists (the near-constant lookup
// path put/get take). Both reference the same Entry objects, so an
// in-place setvalue is visible through either route.
func kvStoreClass(fanout int) *classmodel.Class {
	c := classmodel.NewClass(KVStoreCls, classmodel.Trusted)
	mustField(c, classmodel.Field{Name: "entries", Kind: classmodel.FieldRef, ClassName: classmodel.BuiltinList})
	mustField(c, classmodel.Field{Name: "buckets", Kind: classmodel.FieldRef, ClassName: classmodel.BuiltinList})
	mustField(c, classmodel.Field{Name: "audit", Kind: classmodel.FieldRef, ClassName: KVAuditLog})

	mustMethod(c, &classmodel.Method{
		Name: classmodel.CtorName, Public: true,
		Allocates: []string{classmodel.BuiltinList, KVAuditLog},
		Calls:     []classmodel.MethodRef{{Class: classmodel.BuiltinList, Method: "add"}},
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			list, err := env.New(classmodel.BuiltinList)
			if err != nil {
				return wire.Null(), err
			}
			if err := env.SetField(self, "entries", list); err != nil {
				return wire.Null(), err
			}
			buckets, err := env.New(classmodel.BuiltinList)
			if err != nil {
				return wire.Null(), err
			}
			for i := 0; i < fanout; i++ {
				b, err := env.New(classmodel.BuiltinList)
				if err != nil {
					return wire.Null(), err
				}
				if _, err := env.Call(buckets, "add", b); err != nil {
					return wire.Null(), err
				}
			}
			if err := env.SetField(self, "buckets", buckets); err != nil {
				return wire.Null(), err
			}
			audit, err := env.New(KVAuditLog)
			if err != nil {
				return wire.Null(), err
			}
			return wire.Null(), env.SetField(self, "audit", audit)
		},
	})
	mustMethod(c, &classmodel.Method{
		Name: "put", Public: true,
		Params: []classmodel.Param{
			{Name: "k", Kind: wire.KindString},
			{Name: "v", Kind: wire.KindString},
		},
		Allocates: []string{KVEntry},
		Calls: []classmodel.MethodRef{
			{Class: classmodel.BuiltinList, Method: "add"},
			{Class: classmodel.BuiltinList, Method: "size"},
			{Class: classmodel.BuiltinList, Method: "get"},
			{Class: KVEntry, Method: "getkey"},
			{Class: KVEntry, Method: "setvalue"},
			{Class: KVAuditLog, Method: "record"},
		},
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			bucket, err := kvBucket(env, self, args[0], fanout)
			if err != nil {
				return wire.Null(), err
			}
			idx, err := kvFindIn(env, bucket, args[0])
			if err != nil {
				return wire.Null(), err
			}
			if idx >= 0 {
				e, err := env.Call(bucket, "get", wire.Int(idx))
				if err != nil {
					return wire.Null(), err
				}
				if _, err := env.Call(e, "setvalue", args[1]); err != nil {
					return wire.Null(), err
				}
			} else {
				e, err := env.New(KVEntry, args[0], args[1])
				if err != nil {
					return wire.Null(), err
				}
				if _, err := env.Call(bucket, "add", e); err != nil {
					return wire.Null(), err
				}
				entries, err := env.GetField(self, "entries")
				if err != nil {
					return wire.Null(), err
				}
				if _, err := env.Call(entries, "add", e); err != nil {
					return wire.Null(), err
				}
			}
			// Report the write out to the untrusted audit log. The result
			// dependency forces an immediate nested ocall under this
			// (ecall-relayed) put.
			audit, err := env.GetField(self, "audit")
			if err != nil {
				return wire.Null(), err
			}
			if _, err := env.Call(audit, "record", args[0]); err != nil {
				return wire.Null(), err
			}
			return wire.Null(), nil
		},
	})
	mustMethod(c, &classmodel.Method{
		Name: "get", Public: true,
		Params:  []classmodel.Param{{Name: "k", Kind: wire.KindString}},
		Returns: wire.KindString,
		Calls: []classmodel.MethodRef{
			{Class: classmodel.BuiltinList, Method: "size"},
			{Class: classmodel.BuiltinList, Method: "get"},
			{Class: KVEntry, Method: "getkey"},
			{Class: KVEntry, Method: "getvalue"},
		},
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			bucket, err := kvBucket(env, self, args[0], fanout)
			if err != nil {
				return wire.Null(), err
			}
			idx, err := kvFindIn(env, bucket, args[0])
			if err != nil {
				return wire.Null(), err
			}
			if idx < 0 {
				return wire.Null(), nil
			}
			e, err := env.Call(bucket, "get", wire.Int(idx))
			if err != nil {
				return wire.Null(), err
			}
			return env.Call(e, "getvalue")
		},
	})
	mustMethod(c, &classmodel.Method{
		Name: "keyat", Public: true,
		Params:  []classmodel.Param{{Name: "i", Kind: wire.KindInt}},
		Returns: wire.KindString,
		Calls: []classmodel.MethodRef{
			{Class: classmodel.BuiltinList, Method: "size"},
			{Class: classmodel.BuiltinList, Method: "get"},
			{Class: KVEntry, Method: "getkey"},
		},
		// keyat enumerates the store by index — with get, the iteration
		// surface the durability layer's snapshot walker uses to drain
		// the enclave-resident entries into a sealed checkpoint.
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			list, err := env.GetField(self, "entries")
			if err != nil {
				return wire.Null(), err
			}
			sz, err := env.Call(list, "size")
			if err != nil {
				return wire.Null(), err
			}
			n, _ := sz.AsInt()
			i, _ := args[0].AsInt()
			if i < 0 || i >= n {
				return wire.Null(), nil
			}
			e, err := env.Call(list, "get", wire.Int(i))
			if err != nil {
				return wire.Null(), err
			}
			return env.Call(e, "getkey")
		},
	})
	mustMethod(c, &classmodel.Method{
		Name: "size", Public: true, Returns: wire.KindInt,
		Calls: []classmodel.MethodRef{{Class: classmodel.BuiltinList, Method: "size"}},
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			list, err := env.GetField(self, "entries")
			if err != nil {
				return wire.Null(), err
			}
			return env.Call(list, "size")
		},
	})
	return c
}

// kvFrontEndClass is the untrusted driver; its declared call graph keeps
// the KVStore serving surface reachable in the closed-world build.
func kvFrontEndClass() *classmodel.Class {
	c := classmodel.NewClass(KVFrontEnd, classmodel.Untrusted)
	mustMethod(c, &classmodel.Method{
		Name: classmodel.MainMethodName, Static: true, Public: true,
		Returns:   wire.KindList,
		Allocates: []string{KVStoreCls},
		Calls: []classmodel.MethodRef{
			{Class: KVStoreCls, Method: "put"},
			{Class: KVStoreCls, Method: "get"},
			{Class: KVStoreCls, Method: "size"},
			// Keeps the snapshot-enumeration surface reachable in the
			// closed-world build for gateway deployments that persist the
			// store (the build prunes undeclared methods).
			{Class: KVStoreCls, Method: "keyat"},
		},
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			store, err := env.New(KVStoreCls)
			if err != nil {
				return wire.Null(), err
			}
			var hits, misses int64
			for i := 0; i < KVRequests; i++ {
				key := wire.Str(fmt.Sprintf("user:%04d", i%64))
				switch {
				case i%3 == 0:
					val := wire.Str(fmt.Sprintf("session-token-%08x", i*2654435761))
					if _, err := env.Call(store, "put", key, val); err != nil {
						return wire.Null(), err
					}
				default:
					got, err := env.Call(store, "get", key)
					if err != nil {
						return wire.Null(), err
					}
					if got.IsNull() {
						misses++
					} else {
						hits++
					}
				}
			}
			size, err := env.Call(store, "size")
			if err != nil {
				return wire.Null(), err
			}
			return wire.List(wire.Int(hits), wire.Int(misses), size), nil
		},
	})
	return c
}

// kvBucket resolves the index bucket owning a key: hash the key (plain
// Go, no boundary traffic), then one list lookup.
func kvBucket(env classmodel.Env, self, key wire.Value, fanout int) (wire.Value, error) {
	buckets, err := env.GetField(self, "buckets")
	if err != nil {
		return wire.Null(), err
	}
	k, _ := key.AsStr()
	h := fnv.New32a()
	_, _ = h.Write([]byte(k))
	return env.Call(buckets, "get", wire.Int(int64(h.Sum32()%uint32(fanout))))
}

// kvFindIn scans one bucket list for a key (inside the enclave, as part
// of KVStore's methods) and returns its index or -1.
func kvFindIn(env classmodel.Env, list, key wire.Value) (int64, error) {
	sz, err := env.Call(list, "size")
	if err != nil {
		return 0, err
	}
	n, _ := sz.AsInt()
	want, _ := key.AsStr()
	for i := int64(0); i < n; i++ {
		e, err := env.Call(list, "get", wire.Int(i))
		if err != nil {
			return 0, err
		}
		k, err := env.Call(e, "getkey")
		if err != nil {
			return 0, err
		}
		got, _ := k.AsStr()
		if got == want {
			return i, nil
		}
	}
	return -1, nil
}
