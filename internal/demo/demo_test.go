package demo

import (
	"testing"

	"montsalvat/internal/classmodel"
)

func TestBankProgramValidates(t *testing.T) {
	p, err := BankProgram()
	if err != nil {
		t.Fatal(err)
	}
	if err := classmodel.AddBuiltins(p); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBankProgramShape(t *testing.T) {
	p := MustBankProgram()
	tr, un, ne := p.ByAnnotation()
	if len(tr) != 2 || tr[0] != Account || tr[1] != AccountRegistry {
		t.Fatalf("trusted = %v", tr)
	}
	if len(un) != 2 || un[0] != Main || un[1] != Person {
		t.Fatalf("untrusted = %v", un)
	}
	if len(ne) != 0 {
		t.Fatalf("neutral = %v", ne)
	}
	if p.MainClass != Main {
		t.Fatalf("MainClass = %q", p.MainClass)
	}
	// Listing 1 surface.
	acct, _ := p.Class(Account)
	for _, m := range []string{classmodel.CtorName, "updateBalance", "getBalance", "getOwner"} {
		if _, ok := acct.Method(m); !ok {
			t.Fatalf("Account missing %s", m)
		}
	}
	person, _ := p.Class(Person)
	for _, m := range []string{classmodel.CtorName, "getAccount", "transfer"} {
		if _, ok := person.Method(m); !ok {
			t.Fatalf("Person missing %s", m)
		}
	}
	// Encapsulation: all fields private.
	for _, c := range p.Classes() {
		for _, f := range c.Fields {
			if f.Public {
				t.Fatalf("%s.%s is public", c.Name, f.Name)
			}
		}
	}
}

func TestMustBankProgramFresh(t *testing.T) {
	p1 := MustBankProgram()
	p2 := MustBankProgram()
	c1, _ := p1.Class(Account)
	if err := c1.AddField(classmodel.Field{Name: "extra", Kind: classmodel.FieldInt}); err != nil {
		t.Fatal(err)
	}
	c2, _ := p2.Class(Account)
	if _, ok := c2.Field("extra"); ok {
		t.Fatal("programs share class instances")
	}
}
