package heap

import (
	"fmt"
)

// Backend abstracts the memory a heap semispace lives in. The untrusted
// runtime uses PlainMemory; the trusted runtime uses an epc.Memory, so
// every byte the collector copies pays real MEE encryption cost — the
// mechanism behind the paper's Fig. 5a ("the copy operation of this GC in
// the enclave leads to more data exchange between the CPU and the EPC").
type Backend interface {
	// Read copies len(dst) bytes at off into dst.
	Read(off int, dst []byte) error
	// Write copies src into memory at off.
	Write(off int, src []byte) error
	// Size is the current addressable size in bytes.
	Size() int
	// Grow extends the address space to at least newSize bytes.
	Grow(newSize int) error
}

// PlainMemory is an unencrypted Backend: ordinary process memory, as used
// by the untrusted runtime's heap.
type PlainMemory struct {
	buf []byte
}

var _ Backend = (*PlainMemory)(nil)

// NewPlainMemory returns a zeroed plain memory of the given size.
func NewPlainMemory(size int) *PlainMemory {
	return &PlainMemory{buf: make([]byte, size)}
}

// Read implements Backend.
func (m *PlainMemory) Read(off int, dst []byte) error {
	if off < 0 || off+len(dst) > len(m.buf) {
		return fmt.Errorf("plain memory: read out of range: off=%d len=%d size=%d", off, len(dst), len(m.buf))
	}
	copy(dst, m.buf[off:])
	return nil
}

// Write implements Backend.
func (m *PlainMemory) Write(off int, src []byte) error {
	if off < 0 || off+len(src) > len(m.buf) {
		return fmt.Errorf("plain memory: write out of range: off=%d len=%d size=%d", off, len(src), len(m.buf))
	}
	copy(m.buf[off:], src)
	return nil
}

// Size implements Backend.
func (m *PlainMemory) Size() int { return len(m.buf) }

// Grow implements Backend.
func (m *PlainMemory) Grow(newSize int) error {
	if newSize <= len(m.buf) {
		return nil
	}
	buf := make([]byte, newSize)
	copy(buf, m.buf)
	m.buf = buf
	return nil
}
