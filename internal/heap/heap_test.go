package heap

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"montsalvat/internal/cycles"
	"montsalvat/internal/epc"
	"montsalvat/internal/mee"
)

func testHeap(t *testing.T, cfg Config) *Heap {
	t.Helper()
	h, err := NewPlain(cfg)
	if err != nil {
		t.Fatalf("NewPlain: %v", err)
	}
	return h
}

func smallCfg() Config {
	return Config{InitialSemi: 4096, MaxSemi: 1 << 20}
}

func TestAllocAndAccessors(t *testing.T) {
	h := testHeap(t, smallCfg())
	addr, err := h.Alloc(42, 3, 20)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if cid, err := h.ClassID(addr); err != nil || cid != 42 {
		t.Fatalf("ClassID = %d, %v; want 42", cid, err)
	}
	if n, err := h.NumRefs(addr); err != nil || n != 3 {
		t.Fatalf("NumRefs = %d, %v; want 3", n, err)
	}
	if n, err := h.DataBytes(addr); err != nil || n < 20 {
		t.Fatalf("DataBytes = %d, %v; want >= 20", n, err)
	}
}

func TestDataRoundTrip(t *testing.T) {
	h := testHeap(t, smallCfg())
	addr, err := h.Alloc(1, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	src := []byte("some object payload data here")
	if err := h.WriteData(addr, 5, src); err != nil {
		t.Fatalf("WriteData: %v", err)
	}
	dst := make([]byte, len(src))
	if err := h.ReadData(addr, 5, dst); err != nil {
		t.Fatalf("ReadData: %v", err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatalf("data = %q, want %q", dst, src)
	}
}

func TestDataOutOfRange(t *testing.T) {
	h := testHeap(t, smallCfg())
	addr, _ := h.Alloc(1, 0, 16)
	if err := h.WriteData(addr, 20, make([]byte, 8)); !errors.Is(err, ErrDataOutOfRange) {
		t.Fatalf("err = %v, want ErrDataOutOfRange", err)
	}
	if err := h.ReadData(addr, -1, make([]byte, 1)); !errors.Is(err, ErrDataOutOfRange) {
		t.Fatalf("err = %v, want ErrDataOutOfRange", err)
	}
}

func TestRefSlots(t *testing.T) {
	h := testHeap(t, smallCfg())
	a, _ := h.Alloc(1, 2, 0)
	b, _ := h.Alloc(2, 0, 8)
	if err := h.SetRef(a, 0, b); err != nil {
		t.Fatalf("SetRef: %v", err)
	}
	got, err := h.GetRef(a, 0)
	if err != nil {
		t.Fatalf("GetRef: %v", err)
	}
	if got != b {
		t.Fatalf("GetRef = %#x, want %#x", got, b)
	}
	// Unset slot reads null.
	if got, _ := h.GetRef(a, 1); got != 0 {
		t.Fatalf("unset slot = %#x, want 0", got)
	}
	// Out-of-range slot.
	if _, err := h.GetRef(a, 2); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("err = %v, want ErrBadSlot", err)
	}
	// Null target is allowed (clearing a field).
	if err := h.SetRef(a, 0, 0); err != nil {
		t.Fatalf("SetRef null: %v", err)
	}
	// Garbage target is rejected.
	if err := h.SetRef(a, 0, Addr(3)); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("err = %v, want ErrBadAddress", err)
	}
}

func TestBadAddress(t *testing.T) {
	h := testHeap(t, smallCfg())
	if _, err := h.ClassID(0); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("null addr: err = %v, want ErrBadAddress", err)
	}
	if _, err := h.ClassID(Addr(1 << 40)); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("huge addr: err = %v, want ErrBadAddress", err)
	}
}

func TestCollectPreservesReachableGraph(t *testing.T) {
	h := testHeap(t, smallCfg())
	// root -> a -> b, with payload on each.
	b, _ := h.Alloc(3, 0, 8)
	if err := h.WriteData(b, 0, []byte("leafleaf")); err != nil {
		t.Fatal(err)
	}
	a, _ := h.Alloc(2, 1, 8)
	if err := h.SetRef(a, 0, b); err != nil {
		t.Fatal(err)
	}
	if err := h.WriteData(a, 0, []byte("midmidmi")); err != nil {
		t.Fatal(err)
	}
	root, err := h.NewHandle(a)
	if err != nil {
		t.Fatal(err)
	}

	if err := h.Collect(); err != nil {
		t.Fatalf("Collect: %v", err)
	}

	na, err := h.Deref(root)
	if err != nil {
		t.Fatalf("Deref after GC: %v", err)
	}
	if cid, _ := h.ClassID(na); cid != 2 {
		t.Fatalf("class after GC = %d, want 2", cid)
	}
	buf := make([]byte, 8)
	if err := h.ReadData(na, 0, buf); err != nil || string(buf) != "midmidmi" {
		t.Fatalf("mid data after GC = %q, %v", buf, err)
	}
	nb, err := h.GetRef(na, 0)
	if err != nil || nb == 0 {
		t.Fatalf("child ref after GC = %#x, %v", nb, err)
	}
	if err := h.ReadData(nb, 0, buf); err != nil || string(buf) != "leafleaf" {
		t.Fatalf("leaf data after GC = %q, %v", buf, err)
	}
}

func TestCollectReclaimsGarbage(t *testing.T) {
	h := testHeap(t, Config{InitialSemi: 1 << 16, MaxSemi: 1 << 16})
	keep, _ := h.Alloc(1, 0, 16)
	hd, _ := h.NewHandle(keep)
	for i := 0; i < 100; i++ {
		if _, err := h.Alloc(2, 0, 32); err != nil {
			t.Fatalf("Alloc %d: %v", i, err)
		}
	}
	before := h.Stats().LiveBytes
	if err := h.Collect(); err != nil {
		t.Fatal(err)
	}
	after := h.Stats().LiveBytes
	if after >= before {
		t.Fatalf("LiveBytes %d -> %d, want reclamation", before, after)
	}
	// Exactly one object should have been copied.
	if got := h.Stats().ObjectsCopied; got != 1 {
		t.Fatalf("ObjectsCopied = %d, want 1", got)
	}
	if _, err := h.Deref(hd); err != nil {
		t.Fatal(err)
	}
}

func TestSharedObjectCopiedOnce(t *testing.T) {
	h := testHeap(t, smallCfg())
	shared, _ := h.Alloc(9, 0, 8)
	a, _ := h.Alloc(1, 1, 0)
	b, _ := h.Alloc(2, 1, 0)
	if err := h.SetRef(a, 0, shared); err != nil {
		t.Fatal(err)
	}
	if err := h.SetRef(b, 0, shared); err != nil {
		t.Fatal(err)
	}
	ha, _ := h.NewHandle(a)
	hb, _ := h.NewHandle(b)
	if err := h.Collect(); err != nil {
		t.Fatal(err)
	}
	na, _ := h.Deref(ha)
	nb, _ := h.Deref(hb)
	sa, _ := h.GetRef(na, 0)
	sb, _ := h.GetRef(nb, 0)
	if sa != sb || sa == 0 {
		t.Fatalf("shared object duplicated: %#x vs %#x", sa, sb)
	}
	if got := h.Stats().ObjectsCopied; got != 3 {
		t.Fatalf("ObjectsCopied = %d, want 3", got)
	}
}

func TestCycleSurvivesCollection(t *testing.T) {
	h := testHeap(t, smallCfg())
	a, _ := h.Alloc(1, 1, 0)
	b, _ := h.Alloc(2, 1, 0)
	if err := h.SetRef(a, 0, b); err != nil {
		t.Fatal(err)
	}
	if err := h.SetRef(b, 0, a); err != nil {
		t.Fatal(err)
	}
	ha, _ := h.NewHandle(a)
	if err := h.Collect(); err != nil {
		t.Fatalf("Collect on cyclic graph: %v", err)
	}
	na, _ := h.Deref(ha)
	nb, _ := h.GetRef(na, 0)
	back, _ := h.GetRef(nb, 0)
	if back != na {
		t.Fatalf("cycle broken: back=%#x, want %#x", back, na)
	}
}

func TestWeakRefClearedForGarbage(t *testing.T) {
	h := testHeap(t, smallCfg())
	obj, _ := h.Alloc(1, 0, 8)
	w, err := h.NewWeak(obj)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := h.WeakGet(w); !ok {
		t.Fatal("weak ref cleared before GC")
	}
	if err := h.Collect(); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := h.WeakGet(w); err != nil || ok {
		t.Fatalf("weak ref to garbage still live: ok=%v err=%v", ok, err)
	}
}

func TestWeakRefUpdatedForSurvivor(t *testing.T) {
	h := testHeap(t, smallCfg())
	obj, _ := h.Alloc(7, 0, 8)
	if err := h.WriteData(obj, 0, []byte("survivor")); err != nil {
		t.Fatal(err)
	}
	hd, _ := h.NewHandle(obj)
	w, _ := h.NewWeak(obj)
	if err := h.Collect(); err != nil {
		t.Fatal(err)
	}
	addr, ok, err := h.WeakGet(w)
	if err != nil || !ok {
		t.Fatalf("weak ref lost survivor: ok=%v err=%v", ok, err)
	}
	want, _ := h.Deref(hd)
	if addr != want {
		t.Fatalf("weak addr = %#x, want %#x", addr, want)
	}
	buf := make([]byte, 8)
	if err := h.ReadData(addr, 0, buf); err != nil || string(buf) != "survivor" {
		t.Fatalf("weak target data = %q, %v", buf, err)
	}
}

func TestWeakDoesNotKeepAlive(t *testing.T) {
	h := testHeap(t, Config{InitialSemi: 1 << 14, MaxSemi: 1 << 14})
	obj, _ := h.Alloc(1, 0, 1024)
	if _, err := h.NewWeak(obj); err != nil {
		t.Fatal(err)
	}
	// Allocate enough to force collections; the weakly-referenced object
	// must not pin memory, so this succeeds within a fixed-size heap.
	for i := 0; i < 64; i++ {
		if _, err := h.Alloc(2, 0, 512); err != nil {
			t.Fatalf("Alloc %d: %v", i, err)
		}
	}
}

func TestHandleReleaseMakesGarbage(t *testing.T) {
	h := testHeap(t, smallCfg())
	obj, _ := h.Alloc(1, 0, 8)
	hd, _ := h.NewHandle(obj)
	w, _ := h.NewWeak(obj)
	if err := h.Collect(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := h.WeakGet(w); !ok {
		t.Fatal("handle did not keep object alive")
	}
	if err := h.Release(hd); err != nil {
		t.Fatal(err)
	}
	if err := h.Collect(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := h.WeakGet(w); ok {
		t.Fatal("object survived after handle release")
	}
	// Double release errors.
	if err := h.Release(hd); !errors.Is(err, ErrBadHandle) {
		t.Fatalf("double release: err = %v, want ErrBadHandle", err)
	}
}

func TestAutoCollectOnExhaustion(t *testing.T) {
	h := testHeap(t, Config{InitialSemi: 1 << 13, MaxSemi: 1 << 13})
	// Fill with garbage repeatedly: automatic collection must kick in.
	for i := 0; i < 200; i++ {
		if _, err := h.Alloc(1, 0, 128); err != nil {
			t.Fatalf("Alloc %d: %v", i, err)
		}
	}
	if h.Stats().Collections == 0 {
		t.Fatal("no automatic collection happened")
	}
}

func TestOutOfMemoryAtMax(t *testing.T) {
	h := testHeap(t, Config{InitialSemi: 1 << 13, MaxSemi: 1 << 13})
	var handles []Handle
	var err error
	for i := 0; i < 1000; i++ {
		var addr Addr
		addr, err = h.Alloc(1, 0, 128)
		if err != nil {
			break
		}
		var hd Handle
		hd, err = h.NewHandle(addr)
		if err != nil {
			break
		}
		handles = append(handles, hd)
	}
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	_ = handles
}

func TestHeapGrowsUpToMax(t *testing.T) {
	h := testHeap(t, Config{InitialSemi: 1 << 12, MaxSemi: 1 << 16})
	var handles []Handle
	for i := 0; i < 100; i++ {
		addr, err := h.Alloc(1, 0, 256)
		if err != nil {
			t.Fatalf("Alloc %d: %v", i, err)
		}
		hd, err := h.NewHandle(addr)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, hd)
	}
	if got := h.Stats().SemiSize; got <= 1<<12 {
		t.Fatalf("SemiSize = %d, want growth beyond %d", got, 1<<12)
	}
	// All objects still intact.
	for _, hd := range handles {
		if _, err := h.Deref(hd); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEPCBackedHeap(t *testing.T) {
	eng, err := mee.New()
	if err != nil {
		t.Fatal(err)
	}
	clk := cycles.New(3.8e9, false)
	h, err := New(Config{InitialSemi: 1 << 14, MaxSemi: 1 << 18}, func(size int) (Backend, error) {
		return epc.New(size, nil, eng, clk)
	})
	if err != nil {
		t.Fatalf("New EPC heap: %v", err)
	}
	obj, err := h.Alloc(5, 1, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.WriteData(obj, 0, []byte("secret in the enclave heap!!")); err != nil {
		t.Fatal(err)
	}
	hd, _ := h.NewHandle(obj)
	if err := h.Collect(); err != nil {
		t.Fatalf("Collect on EPC heap: %v", err)
	}
	na, _ := h.Deref(hd)
	buf := make([]byte, 28)
	if err := h.ReadData(na, 0, buf); err != nil || string(buf) != "secret in the enclave heap!!" {
		t.Fatalf("EPC heap data after GC = %q, %v", buf, err)
	}
	if clk.Total() == 0 {
		t.Fatal("EPC heap charged no MEE cycles")
	}
	if eng.Stats().LinesEncrypted == 0 {
		t.Fatal("EPC heap performed no encryption")
	}
}

func TestStatsProgression(t *testing.T) {
	h := testHeap(t, smallCfg())
	addr, _ := h.Alloc(1, 0, 8)
	if _, err := h.NewHandle(addr); err != nil {
		t.Fatal(err)
	}
	if err := h.Collect(); err != nil {
		t.Fatal(err)
	}
	s := h.Stats()
	if s.Collections != 1 || s.ObjectsCopied != 1 || s.BytesCopied == 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Handles != 1 {
		t.Fatalf("Handles = %d, want 1", s.Handles)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := NewPlain(Config{InitialSemi: 4}); err == nil {
		t.Fatal("accepted tiny semispace")
	}
	if _, err := New(smallCfg(), nil); err == nil {
		t.Fatal("accepted nil backend factory")
	}
}

// Property: a randomly built object graph survives collection with all
// payloads and topology intact (checked via a shadow model).
func TestQuickGCPreservesGraph(t *testing.T) {
	type node struct {
		handle  Handle
		refs    []int // indices into nodes
		payload []byte
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h, err := NewPlain(Config{InitialSemi: 1 << 14, MaxSemi: 1 << 20})
		if err != nil {
			return false
		}
		n := 2 + r.Intn(20)
		nodes := make([]node, n)
		addrs := make([]Addr, n)
		// Allocate all nodes first (no GC can trigger: heap is large
		// enough for this phase), then wire references.
		for i := range nodes {
			nRefs := r.Intn(3)
			payload := make([]byte, 1+r.Intn(24))
			r.Read(payload)
			addr, err := h.Alloc(int32(i), nRefs, len(payload))
			if err != nil {
				return false
			}
			if err := h.WriteData(addr, 0, payload); err != nil {
				return false
			}
			addrs[i] = addr
			nodes[i] = node{payload: payload, refs: make([]int, nRefs)}
		}
		for i := range nodes {
			for s := range nodes[i].refs {
				target := r.Intn(n)
				nodes[i].refs[s] = target
				if err := h.SetRef(addrs[i], s, addrs[target]); err != nil {
					return false
				}
			}
			hd, err := h.NewHandle(addrs[i])
			if err != nil {
				return false
			}
			nodes[i].handle = hd
		}
		for c := 0; c < 2; c++ {
			if err := h.Collect(); err != nil {
				return false
			}
		}
		// Verify the shadow model.
		newAddrs := make([]Addr, n)
		for i := range nodes {
			addr, err := h.Deref(nodes[i].handle)
			if err != nil {
				return false
			}
			newAddrs[i] = addr
		}
		for i := range nodes {
			cid, err := h.ClassID(newAddrs[i])
			if err != nil || cid != int32(i) {
				return false
			}
			buf := make([]byte, len(nodes[i].payload))
			if err := h.ReadData(newAddrs[i], 0, buf); err != nil {
				return false
			}
			if !bytes.Equal(buf, nodes[i].payload) {
				return false
			}
			for s, target := range nodes[i].refs {
				got, err := h.GetRef(newAddrs[i], s)
				if err != nil || got != newAddrs[target] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHugeObjectForcesGrowth(t *testing.T) {
	h := testHeap(t, Config{InitialSemi: 1 << 12, MaxSemi: 1 << 20})
	// A single object far larger than the current semispace must grow
	// the heap rather than fail.
	addr, err := h.Alloc(1, 0, 200_000)
	if err != nil {
		t.Fatalf("huge alloc: %v", err)
	}
	hd, err := h.NewHandle(addr)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5a}, 200_000)
	if err := h.WriteData(addr, 0, payload); err != nil {
		t.Fatal(err)
	}
	if err := h.Collect(); err != nil {
		t.Fatal(err)
	}
	na, err := h.Deref(hd)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 200_000)
	if err := h.ReadData(na, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("huge object corrupted by growth/collection")
	}
	// An object that can never fit is rejected cleanly.
	if _, err := h.Alloc(1, 0, 1<<21); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("impossible alloc: %v", err)
	}
}
