// Package heap implements the managed heap embedded in Montsalvat native
// images.
//
// GraalVM native images "embed a serial stop and copy GC" (paper §6.4);
// each isolate operates on a separate heap collected independently (§2.2).
// This package is that runtime component: a semispace heap with bump
// allocation, a Cheney stop-and-copy collector, a strong handle table (the
// analog of pinned/JNI references, used by the mirror–proxy registry), and
// weak references (the basis of the GC helper in §5.5).
//
// Objects are addressed by Addr values that are INVALIDATED by every
// collection; anything that must survive a collection — or any call that
// may allocate — must be held via a Handle or WeakRef. This matches the
// discipline of a real moving collector.
package heap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

const (
	wordBytes   = 8
	headerBytes = 16
	// magic tags valid object headers so stale or corrupt addresses are
	// caught immediately instead of silently misreading memory.
	magic = 0xA5

	flagForwarded = 1 << 0
)

// Addr is the address of an object in the current from-space. The zero
// Addr is the null reference. Addrs are invalidated by garbage collection.
type Addr uint64

// Handle is a GC-stable strong reference to an object. Objects reachable
// from a handle are never collected until the handle is released.
type Handle uint64

// WeakRef is a GC-stable weak reference: it does not keep its target
// alive, and reads as cleared once the target has been collected. This is
// the primitive the Montsalvat GC helper scans (§5.5).
type WeakRef uint64

// Errors returned by heap operations.
var (
	ErrOutOfMemory    = errors.New("heap: out of memory")
	ErrBadAddress     = errors.New("heap: bad object address")
	ErrBadHandle      = errors.New("heap: unknown handle")
	ErrBadWeak        = errors.New("heap: unknown weak reference")
	ErrBadSlot        = errors.New("heap: reference slot out of range")
	ErrDataOutOfRange = errors.New("heap: data access out of range")
)

// Stats describes heap and collector state.
type Stats struct {
	// Collections is the number of completed GC cycles.
	Collections uint64
	// ObjectsCopied and BytesCopied accumulate over all collections.
	ObjectsCopied uint64
	BytesCopied   uint64
	// LastPause and TotalPause are wall-clock collection times.
	LastPause  time.Duration
	TotalPause time.Duration
	// LiveBytes is the bytes in use after the last collection (or
	// allocated so far if none has run). AllocatedBytes counts all
	// allocation ever performed.
	LiveBytes      int
	AllocatedBytes uint64
	// SemiSize is the current semispace size; Handles and Weaks count
	// live external references.
	SemiSize int
	Handles  int
	Weaks    int
}

// Config sizes a heap.
type Config struct {
	// InitialSemi is the initial semispace size in bytes.
	InitialSemi int
	// MaxSemi bounds semispace growth (the enclave heap bound, §6.1).
	MaxSemi int
}

// DefaultConfig returns a small heap suitable for tests.
func DefaultConfig() Config {
	return Config{InitialSemi: 1 << 20, MaxSemi: 64 << 20}
}

// Heap is a semispace managed heap. It is not safe for concurrent use;
// each isolate serialises access to its heap (stop-the-world discipline).
type Heap struct {
	newBackend func(size int) (Backend, error)
	from       Backend
	to         Backend
	semiSize   int
	maxSemi    int
	allocPtr   int

	handles    map[Handle]Addr
	nextHandle Handle
	weaks      map[WeakRef]Addr
	nextWeak   WeakRef

	stats Stats
}

// New creates a heap whose semispaces are produced by newBackend — plain
// memory for an untrusted heap, EPC-encrypted memory for an enclave heap.
func New(cfg Config, newBackend func(size int) (Backend, error)) (*Heap, error) {
	if cfg.InitialSemi <= headerBytes {
		return nil, fmt.Errorf("heap: initial semispace too small: %d", cfg.InitialSemi)
	}
	if cfg.MaxSemi < cfg.InitialSemi {
		cfg.MaxSemi = cfg.InitialSemi
	}
	if newBackend == nil {
		return nil, errors.New("heap: nil backend factory")
	}
	from, err := newBackend(cfg.InitialSemi)
	if err != nil {
		return nil, fmt.Errorf("heap: from-space: %w", err)
	}
	to, err := newBackend(cfg.InitialSemi)
	if err != nil {
		return nil, fmt.Errorf("heap: to-space: %w", err)
	}
	return &Heap{
		newBackend: newBackend,
		from:       from,
		to:         to,
		semiSize:   cfg.InitialSemi,
		maxSemi:    cfg.MaxSemi,
		allocPtr:   wordBytes, // Addr 0 is reserved for null.
		handles:    make(map[Handle]Addr),
		weaks:      make(map[WeakRef]Addr),
	}, nil
}

// NewPlain creates a heap over ordinary process memory.
func NewPlain(cfg Config) (*Heap, error) {
	return New(cfg, func(size int) (Backend, error) {
		return NewPlainMemory(size), nil
	})
}

// Alloc allocates an object with the given class, number of reference
// slots, and raw data payload size. Reference slots are initialised to
// null and data to zero. Alloc may trigger a collection, invalidating all
// outstanding Addrs; callers holding raw Addrs must re-derive them from
// Handles afterwards.
func (h *Heap) Alloc(classID int32, nRefs int, dataBytes int) (Addr, error) {
	if nRefs < 0 || dataBytes < 0 {
		return 0, fmt.Errorf("heap: invalid allocation: nRefs=%d dataBytes=%d", nRefs, dataBytes)
	}
	// Sizes are exact (no alignment padding) so DataBytes reports the
	// requested payload size; the simulated memory handles any offset.
	size := headerBytes + nRefs*wordBytes + dataBytes
	if h.allocPtr+size > h.semiSize {
		if err := h.Collect(); err != nil {
			return 0, err
		}
		for h.allocPtr+size > h.semiSize {
			if err := h.grow(); err != nil {
				return 0, err
			}
		}
	}
	addr := Addr(h.allocPtr)
	h.allocPtr += size
	h.stats.AllocatedBytes += uint64(size)
	h.stats.LiveBytes = h.allocPtr

	buf := make([]byte, size)
	putHeader(buf, classID, uint16(nRefs), 0, uint64(size))
	if err := h.from.Write(int(addr), buf); err != nil {
		return 0, fmt.Errorf("heap: init object: %w", err)
	}
	return addr, nil
}

// ClassID returns the class identifier of the object at addr.
func (h *Heap) ClassID(addr Addr) (int32, error) {
	w0, _, err := h.header(addr)
	if err != nil {
		return 0, err
	}
	return int32(w0 >> 32), nil
}

// NumRefs returns the number of reference slots of the object at addr.
func (h *Heap) NumRefs(addr Addr) (int, error) {
	w0, _, err := h.header(addr)
	if err != nil {
		return 0, err
	}
	return int(uint16(w0 >> 16)), nil
}

// DataBytes returns the raw data payload size of the object at addr
// (excluding padding).
func (h *Heap) DataBytes(addr Addr) (int, error) {
	w0, w1, err := h.header(addr)
	if err != nil {
		return 0, err
	}
	nRefs := int(uint16(w0 >> 16))
	return int(w1) - headerBytes - nRefs*wordBytes, nil
}

// GetRef reads reference slot i of the object at addr.
func (h *Heap) GetRef(addr Addr, i int) (Addr, error) {
	off, err := h.refOff(addr, i)
	if err != nil {
		return 0, err
	}
	var buf [wordBytes]byte
	if err := h.from.Read(off, buf[:]); err != nil {
		return 0, err
	}
	return Addr(binary.LittleEndian.Uint64(buf[:])), nil
}

// SetRef writes reference slot i of the object at addr.
func (h *Heap) SetRef(addr Addr, i int, target Addr) error {
	off, err := h.refOff(addr, i)
	if err != nil {
		return err
	}
	if target != 0 {
		if _, _, err := h.header(target); err != nil {
			return fmt.Errorf("heap: SetRef target: %w", err)
		}
	}
	var buf [wordBytes]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(target))
	return h.from.Write(off, buf[:])
}

// ReadData copies len(dst) bytes of the object's raw payload at offset off
// into dst.
func (h *Heap) ReadData(addr Addr, off int, dst []byte) error {
	base, err := h.dataOff(addr, off, len(dst))
	if err != nil {
		return err
	}
	return h.from.Read(base, dst)
}

// WriteData copies src into the object's raw payload at offset off.
func (h *Heap) WriteData(addr Addr, off int, src []byte) error {
	base, err := h.dataOff(addr, off, len(src))
	if err != nil {
		return err
	}
	return h.from.Write(base, src)
}

// NewHandle registers a strong reference to the object at addr.
func (h *Heap) NewHandle(addr Addr) (Handle, error) {
	if _, _, err := h.header(addr); err != nil {
		return 0, err
	}
	h.nextHandle++
	h.handles[h.nextHandle] = addr
	return h.nextHandle, nil
}

// Deref resolves a handle to the object's current address.
func (h *Heap) Deref(hd Handle) (Addr, error) {
	addr, ok := h.handles[hd]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrBadHandle, hd)
	}
	return addr, nil
}

// Release drops a strong handle. Releasing an unknown handle is an error.
func (h *Heap) Release(hd Handle) error {
	if _, ok := h.handles[hd]; !ok {
		return fmt.Errorf("%w: %d", ErrBadHandle, hd)
	}
	delete(h.handles, hd)
	return nil
}

// NewWeak registers a weak reference to the object at addr.
func (h *Heap) NewWeak(addr Addr) (WeakRef, error) {
	if _, _, err := h.header(addr); err != nil {
		return 0, err
	}
	h.nextWeak++
	h.weaks[h.nextWeak] = addr
	return h.nextWeak, nil
}

// WeakGet resolves a weak reference. ok is false once the referent has
// been collected ("null referent", §5.5).
func (h *Heap) WeakGet(w WeakRef) (Addr, bool, error) {
	addr, present := h.weaks[w]
	if !present {
		return 0, false, fmt.Errorf("%w: %d", ErrBadWeak, w)
	}
	return addr, addr != 0, nil
}

// ReleaseWeak drops a weak reference.
func (h *Heap) ReleaseWeak(w WeakRef) error {
	if _, ok := h.weaks[w]; !ok {
		return fmt.Errorf("%w: %d", ErrBadWeak, w)
	}
	delete(h.weaks, w)
	return nil
}

// Stats returns a snapshot of collector statistics.
func (h *Heap) Stats() Stats {
	s := h.stats
	s.LiveBytes = h.allocPtr
	s.SemiSize = h.semiSize
	s.Handles = len(h.handles)
	s.Weaks = len(h.weaks)
	return s
}

// Collect runs one stop-and-copy cycle: objects reachable from the handle
// table are evacuated to to-space (Cheney's algorithm), weak references to
// unreached objects are cleared, and the spaces are flipped.
func (h *Heap) Collect() error {
	start := time.Now()

	// Pre-grow if occupancy is high so that repeated collections are not
	// needed for a single large allocation burst.
	if h.allocPtr > h.semiSize*3/4 && h.semiSize < h.maxSemi {
		if err := h.growTo(min(h.semiSize*2, h.maxSemi)); err != nil {
			return err
		}
	}

	scan := wordBytes
	free := wordBytes

	// Evacuate roots: the handle table.
	for hd, addr := range h.handles {
		if addr == 0 {
			continue
		}
		na, nf, err := h.evacuate(addr, free)
		if err != nil {
			return err
		}
		h.handles[hd] = na
		free = nf
	}

	// Cheney scan of to-space.
	for scan < free {
		w0, w1, err := h.headerIn(h.to, Addr(scan))
		if err != nil {
			return fmt.Errorf("heap: scan: %w", err)
		}
		nRefs := int(uint16(w0 >> 16))
		size := int(w1)
		for i := 0; i < nRefs; i++ {
			slotOff := scan + headerBytes + i*wordBytes
			var buf [wordBytes]byte
			if err := h.to.Read(slotOff, buf[:]); err != nil {
				return err
			}
			target := Addr(binary.LittleEndian.Uint64(buf[:]))
			if target == 0 {
				continue
			}
			na, nf, err := h.evacuate(target, free)
			if err != nil {
				return err
			}
			free = nf
			binary.LittleEndian.PutUint64(buf[:], uint64(na))
			if err := h.to.Write(slotOff, buf[:]); err != nil {
				return err
			}
		}
		scan += size
	}

	// Fix up weak references: forwarded targets are updated, unreached
	// targets are cleared.
	for w, addr := range h.weaks {
		if addr == 0 {
			continue
		}
		w0, w1, err := h.header(addr)
		if err != nil {
			return fmt.Errorf("heap: weak fixup: %w", err)
		}
		if w0&uint64(flagForwarded) != 0 {
			h.weaks[w] = Addr(w1)
		} else {
			h.weaks[w] = 0
		}
	}

	// Flip.
	h.from, h.to = h.to, h.from
	h.allocPtr = free
	if h.to.Size() < h.semiSize {
		if err := h.to.Grow(h.semiSize); err != nil {
			return err
		}
	}

	pause := time.Since(start)
	h.stats.Collections++
	h.stats.LastPause = pause
	h.stats.TotalPause += pause
	h.stats.LiveBytes = h.allocPtr
	return nil
}

// evacuate copies the object at addr (in from-space) to to-space unless it
// has already been forwarded, and returns its new address plus the updated
// free pointer.
func (h *Heap) evacuate(addr Addr, free int) (Addr, int, error) {
	w0, w1, err := h.header(addr)
	if err != nil {
		return 0, free, fmt.Errorf("heap: evacuate %#x: %w", uint64(addr), err)
	}
	if w0&uint64(flagForwarded) != 0 {
		return Addr(w1), free, nil
	}
	size := int(w1)
	buf := make([]byte, size)
	if err := h.from.Read(int(addr), buf); err != nil {
		return 0, free, err
	}
	if free+size > h.to.Size() {
		return 0, free, fmt.Errorf("%w: to-space exhausted during collection", ErrOutOfMemory)
	}
	if err := h.to.Write(free, buf); err != nil {
		return 0, free, err
	}
	// Install forwarding pointer in from-space.
	var fwd [headerBytes]byte
	binary.LittleEndian.PutUint64(fwd[0:8], w0|uint64(flagForwarded))
	binary.LittleEndian.PutUint64(fwd[8:16], uint64(free))
	if err := h.from.Write(int(addr), fwd[:]); err != nil {
		return 0, free, err
	}
	h.stats.ObjectsCopied++
	h.stats.BytesCopied += uint64(size)
	return Addr(free), free + size, nil
}

func (h *Heap) grow() error {
	if h.semiSize >= h.maxSemi {
		return fmt.Errorf("%w: semispace at maximum %d bytes", ErrOutOfMemory, h.maxSemi)
	}
	if err := h.growTo(min(h.semiSize*2, h.maxSemi)); err != nil {
		return err
	}
	return h.Collect()
}

// growTo enlarges the to-space (and records the new semispace size) so the
// next collection evacuates into the larger space.
func (h *Heap) growTo(newSize int) error {
	if newSize <= h.semiSize {
		return nil
	}
	if err := h.to.Grow(newSize); err != nil {
		return err
	}
	h.semiSize = newSize
	return nil
}

func (h *Heap) header(addr Addr) (uint64, uint64, error) {
	return h.headerIn(h.from, addr)
}

func (h *Heap) headerIn(b Backend, addr Addr) (uint64, uint64, error) {
	if addr == 0 || int(addr)+headerBytes > b.Size() {
		return 0, 0, fmt.Errorf("%w: %#x", ErrBadAddress, uint64(addr))
	}
	var buf [headerBytes]byte
	if err := b.Read(int(addr), buf[:]); err != nil {
		return 0, 0, err
	}
	w0 := binary.LittleEndian.Uint64(buf[0:8])
	w1 := binary.LittleEndian.Uint64(buf[8:16])
	if byte(w0>>8) != magic {
		return 0, 0, fmt.Errorf("%w: no object at %#x", ErrBadAddress, uint64(addr))
	}
	return w0, w1, nil
}

func (h *Heap) refOff(addr Addr, i int) (int, error) {
	w0, _, err := h.header(addr)
	if err != nil {
		return 0, err
	}
	nRefs := int(uint16(w0 >> 16))
	if i < 0 || i >= nRefs {
		return 0, fmt.Errorf("%w: slot %d of %d", ErrBadSlot, i, nRefs)
	}
	return int(addr) + headerBytes + i*wordBytes, nil
}

func (h *Heap) dataOff(addr Addr, off, n int) (int, error) {
	w0, w1, err := h.header(addr)
	if err != nil {
		return 0, err
	}
	nRefs := int(uint16(w0 >> 16))
	dataBytes := int(w1) - headerBytes - nRefs*wordBytes
	if off < 0 || n < 0 || off+n > dataBytes {
		return 0, fmt.Errorf("%w: off=%d len=%d data=%d", ErrDataOutOfRange, off, n, dataBytes)
	}
	return int(addr) + headerBytes + nRefs*wordBytes + off, nil
}

// putHeader encodes an object header into buf:
// word0 = classID<<32 | nRefs<<16 | magic<<8 | flags, word1 = size.
func putHeader(buf []byte, classID int32, nRefs uint16, flags uint8, size uint64) {
	w0 := uint64(uint32(classID))<<32 | uint64(nRefs)<<16 | uint64(magic)<<8 | uint64(flags)
	binary.LittleEndian.PutUint64(buf[0:8], w0)
	binary.LittleEndian.PutUint64(buf[8:16], size)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
