// Package ring implements the zero-copy data plane of the boundary:
// per-worker shared-memory single-producer/single-consumer rings that
// replace the marshal-copy path for proxy calls.
//
// Each Ring is a pair of fixed-slot submission/completion queues in the
// io_uring shape: the producer encodes a request directly into a slot
// (no intermediate buffer), seals it in place with AES-256-GCM —
// encrypt-on-write into untrusted memory — and publishes it by bumping
// the atomic tail index. A resident consumer worker polls the tail,
// opens the request in place, runs the handler (which encodes its
// response into the same slot), seals the response and publishes the
// completion count. Per-byte cost is therefore one streaming crypto
// pass per direction instead of an MEE-taxed buffer copy per crossing.
//
// Trust-boundary rules for slot memory: the slots live in UNTRUSTED
// shared memory. Neither side ever stages plaintext in a separate
// enclave buffer — sealing happens as the bytes are produced, opening
// as they are consumed — and authenticity comes from the GCM tag plus
// a (ring, sequence, direction) nonce and the routine id as additional
// authenticated data, so a tampering host yields an authentication
// error, never silently corrupt arguments.
//
// Doorbell protocol: the consumer spins on the tail for a bounded
// number of polls, then publishes "asleep", re-checks the tail (closing
// the race where a submission lands between the last poll and the
// wait) and blocks on the doorbell channel. The producer rings the
// doorbell — and pays the futex-wake cost — only when it observes the
// consumer asleep; while the consumer polls, publishing costs only a
// cross-core cache-line hand-off. The producer's completion wait is the
// symmetric protocol. This folds the adaptive-switchless sleep logic
// into ring polling. Adaptive batching falls out of the shape: every
// submission published while the consumer was busy or waking is
// consumed in the same wakeup.
package ring

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"montsalvat/internal/cycles"
	"montsalvat/internal/simcfg"
	"montsalvat/internal/telemetry"
)

// Errors returned by the ring data plane. ErrBusy, ErrTooLarge and
// ErrStopped mean "nothing ran" — callers fall back to the frame path.
var (
	// ErrBusy is returned by TryCall/TryBatch when every ring's
	// producer side is occupied (a slot-full stall).
	ErrBusy = errors.New("ring: all ring producers busy")
	// ErrTooLarge is returned when an encoded payload exceeds the slot
	// capacity; the caller falls back to the frame path.
	ErrTooLarge = errors.New("ring: payload exceeds slot capacity")
	// ErrStopped is returned for submissions after Close.
	ErrStopped = errors.New("ring: stopped")
)

// Handler consumes one submission on the consumer side. req is the
// opened (decrypted) request payload and resp the zero-length response
// area — both alias the SAME slot memory, so the handler must fully
// decode req before writing resp. The returned out must be
// append-derived from resp (the in-place path); when the response does
// not fit the slot, the handler returns a separately allocated buffer
// with overflow=true, which crosses as a plain bounce buffer charged at
// MEE rate. sp is the producer's trace span (nil when unsampled).
type Handler func(id int, req, resp []byte, sp *telemetry.Span) (out []byte, overflow bool, err error)

// DefaultPollSpins is the consumer/producer poll budget before the
// sleep protocol engages, matching the spin-then-sleep shape of SDK
// switchless workers.
const DefaultPollSpins = 256

// gcmNonceSize and gcmOverhead are fixed by the AES-GCM construction.
const (
	gcmNonceSize = 12
	gcmOverhead  = 16
)

// nonce direction markers: request and response streams of one
// sequence number must never share a nonce.
const (
	nonceReq  = 0
	nonceResp = 1
)

// slot is one fixed-capacity submission/completion cell. All fields
// are owned by exactly one side at a time (producer until publish,
// consumer until completion), so none need atomics; the tail/comp
// indices publish ownership hand-offs.
type slot struct {
	id    int
	seq   uint64
	reqN  int    // sealed request length in buf
	respN int    // sealed response length in buf
	over  []byte // overflow response (plain bounce buffer, rare)
	err   error
	sp    *telemetry.Span
	buf   []byte // fixed capacity: payloadCap + gcmOverhead
}

// Ring is one SPSC submission/completion queue pair with a resident
// consumer worker. Producers serialise on prodMu (holding it for the
// duration of a call preserves the single-producer discipline).
type Ring struct {
	idx        int
	slots      []slot
	mask       uint64
	payloadCap int

	aead  cipher.AEAD
	clock *cycles.Clock

	// tail counts published submissions (producer-owned store); comp
	// counts published completions (consumer-owned store). head is
	// consumer-local; reaped is producer-local under prodMu. Free slots
	// = len(slots) - (tail - reaped).
	tail   atomic.Uint64
	comp   atomic.Uint64
	reaped uint64
	seq    uint64

	prodMu sync.Mutex

	csleep atomic.Bool
	psleep atomic.Bool
	bell   chan struct{} // consumer doorbell
	pbell  chan struct{} // producer completion doorbell
	stop   chan struct{}

	pollSpins int
	handler   Handler

	stats ringStats
}

// ringStats are the per-ring activity counters, absorbed into
// Group.Stats.
type ringStats struct {
	submits   atomic.Uint64
	doorbells atomic.Uint64
	wakeups   atomic.Uint64
	consumed  atomic.Uint64
	overflows atomic.Uint64
	sealed    atomic.Uint64 // bytes through the in-place crypto pass
	overBytes atomic.Uint64 // bytes bounced via overflow buffers
}

func newRing(idx, slots, payloadCap, pollSpins int, aead cipher.AEAD, clock *cycles.Clock, h Handler) *Ring {
	n := 1
	for n < slots {
		n <<= 1
	}
	r := &Ring{
		idx:        idx,
		slots:      make([]slot, n),
		mask:       uint64(n - 1),
		payloadCap: payloadCap,
		aead:       aead,
		clock:      clock,
		bell:       make(chan struct{}, 1),
		pbell:      make(chan struct{}, 1),
		stop:       make(chan struct{}),
		pollSpins:  pollSpins,
		handler:    h,
	}
	for i := range r.slots {
		r.slots[i].buf = make([]byte, 0, payloadCap+gcmOverhead)
	}
	return r
}

// nonce derives the unique 96-bit nonce of one sealed payload: ring
// index, direction marker and submission sequence. The group key is
// never reused across rings with the same (dir, seq) pair.
func (r *Ring) nonce(seq uint64, dir byte) [gcmNonceSize]byte {
	var n [gcmNonceSize]byte
	binary.LittleEndian.PutUint16(n[0:2], uint16(r.idx))
	n[2] = dir
	binary.LittleEndian.PutUint64(n[4:12], seq)
	return n
}

// aad binds the routine id into the authenticated data.
func callAAD(id int) [8]byte {
	var a [8]byte
	binary.LittleEndian.PutUint64(a[:], uint64(id))
	return a
}

// seal encrypts plain in place inside the slot buffer (dst reuses
// plain's storage) and charges the streaming crypto pass — the one
// point where per-byte cost accrues on this path.
func (r *Ring) seal(s *slot, plain []byte, dir byte) []byte {
	n := r.nonce(s.seq, dir)
	a := callAAD(s.id)
	sealed := r.aead.Seal(plain[:0], n[:], plain, a[:])
	r.stats.sealed.Add(uint64(len(sealed)))
	if r.clock != nil {
		r.clock.ChargeBytes(len(sealed), simcfg.RingCryptoBytesPerCycle)
	}
	return sealed
}

// open decrypts a sealed slot payload in place. The open is pipelined
// with the streaming read on real hardware, so no second per-byte
// charge accrues here.
func (r *Ring) open(s *slot, sealed []byte, dir byte) ([]byte, error) {
	n := r.nonce(s.seq, dir)
	a := callAAD(s.id)
	plain, err := r.aead.Open(sealed[:0], n[:], sealed, a[:])
	if err != nil {
		return nil, fmt.Errorf("ring: slot authentication failed: %w", err)
	}
	return plain, nil
}

// reserve returns the next free slot, draining completions when the
// ring is full (producer stall then drain). Caller holds prodMu.
func (r *Ring) reserve() (*slot, uint64, error) {
	idx := r.tail.Load()
	for idx-r.reaped >= uint64(len(r.slots)) {
		// Full: the oldest outstanding submission must complete before
		// its slot can be reused.
		if err := r.awaitComp(r.reaped); err != nil {
			return nil, 0, err
		}
		r.reaped++
	}
	s := &r.slots[idx&r.mask]
	r.seq++
	s.seq = r.seq
	s.err = nil
	s.over = nil
	s.respN = 0
	return s, idx, nil
}

// publish makes the filled slot visible to the consumer and rings the
// doorbell only when the consumer is asleep, charging the matching
// hand-off cost. Caller holds prodMu.
func (r *Ring) publish(idx uint64) {
	r.tail.Store(idx + 1)
	r.stats.submits.Add(1)
	if r.csleep.Load() {
		select {
		case r.bell <- struct{}{}:
		default:
		}
		r.stats.doorbells.Add(1)
		if r.clock != nil {
			r.clock.Charge(simcfg.RingDoorbellCycles)
		}
		return
	}
	if r.clock != nil {
		r.clock.Charge(simcfg.RingSubmitCycles)
	}
}

// awaitComp blocks until the completion count exceeds idx, using the
// symmetric spin-then-sleep protocol. Caller holds prodMu.
func (r *Ring) awaitComp(idx uint64) error {
	for spun := 0; ; spun++ {
		if r.comp.Load() > idx {
			return nil
		}
		if spun < r.pollSpins {
			runtime.Gosched()
			continue
		}
		r.psleep.Store(true)
		if r.comp.Load() > idx {
			r.psleep.Store(false)
			return nil
		}
		select {
		case <-r.pbell:
			r.psleep.Store(false)
			spun = 0
		case <-r.stop:
			r.psleep.Store(false)
			if r.comp.Load() > idx {
				return nil
			}
			return ErrStopped
		}
	}
}

// serve is the resident consumer loop: poll the submission tail, drain
// every published entry per wakeup, then spin-then-sleep.
func (r *Ring) serve(enter func() (func(), error), onBatch func(int), wg *sync.WaitGroup) {
	defer wg.Done()
	if enter != nil {
		leave, err := enter()
		if err != nil {
			// Residency denied (e.g. enclave tearing down): the ring
			// stays submittable but nothing consumes; producers time out
			// via stop. In practice Close follows immediately.
			return
		}
		defer leave()
	}
	head := uint64(0)
	for {
		t := r.tail.Load()
		if t == head {
			if !r.idle(head) {
				return
			}
			continue
		}
		r.stats.wakeups.Add(1)
		if onBatch != nil {
			onBatch(int(t - head))
		}
		for ; head < t; head++ {
			select {
			case <-r.stop:
				return
			default:
			}
			r.consume(&r.slots[head&r.mask], head)
		}
	}
}

// idle runs the consumer's spin-then-sleep protocol; it returns false
// when the ring is stopping. The asleep flag is published BEFORE the
// final tail re-check, so a producer that publishes between the check
// and the wait necessarily observes it and rings the doorbell.
func (r *Ring) idle(head uint64) bool {
	for spun := 0; ; spun++ {
		if r.tail.Load() != head {
			return true
		}
		select {
		case <-r.stop:
			return false
		default:
		}
		if spun < r.pollSpins {
			runtime.Gosched()
			continue
		}
		r.csleep.Store(true)
		if r.tail.Load() != head {
			r.csleep.Store(false)
			return true
		}
		select {
		case <-r.bell:
			r.csleep.Store(false)
			return true
		case <-r.stop:
			r.csleep.Store(false)
			return false
		}
	}
}

// consume opens one submission in place, runs the handler, seals the
// in-place response (or records the overflow bounce buffer) and
// publishes the completion.
func (r *Ring) consume(s *slot, idx uint64) {
	req, err := r.open(s, s.buf[:s.reqN], nonceReq)
	if err != nil {
		s.err = err
	} else {
		out, overflow, herr := r.handler(s.id, req, s.buf[:0], s.sp)
		s.err = herr
		switch {
		case herr != nil:
			// Errors cross out of band (as on the closure-based frame
			// path); no response payload.
		case overflow:
			s.over = out
			r.stats.overflows.Add(1)
			r.stats.overBytes.Add(uint64(len(out)))
		default:
			sealed := r.seal(s, out, nonceResp)
			s.respN = len(sealed)
		}
	}
	r.stats.consumed.Add(1)
	r.comp.Store(idx + 1)
	if r.psleep.Load() {
		select {
		case r.pbell <- struct{}{}:
		default:
		}
		if r.clock != nil {
			r.clock.Charge(simcfg.RingDoorbellCycles)
		}
	} else if r.clock != nil {
		r.clock.Charge(simcfg.RingSubmitCycles)
	}
}

// finish resolves one completed submission on the producer side:
// surface the handler error, open the in-place response, or charge the
// overflow bounce buffer at MEE rate (it crossed as a plain copy).
// Caller holds prodMu and has awaited the completion.
func (r *Ring) finish(s *slot, done func(resp []byte) error) error {
	if s.err != nil {
		return s.err
	}
	if s.over != nil {
		if r.clock != nil {
			r.clock.ChargeBytes(len(s.over), simcfg.MEEBytesPerCycle)
		}
		if done == nil {
			return nil
		}
		return done(s.over)
	}
	if done == nil {
		return nil
	}
	resp, err := r.open(s, s.buf[:s.respN], nonceResp)
	if err != nil {
		return err
	}
	return done(resp)
}

// occupancy reports the submissions currently in flight.
func (r *Ring) occupancy() int {
	return int(r.tail.Load() - r.comp.Load())
}

// generateKey returns a fresh 32-byte AES-256 session key.
func generateKey() ([]byte, error) {
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return nil, err
	}
	return key, nil
}

// newAEAD builds the AES-256-GCM sealer shared by a ring group.
func newAEAD(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}
