package ring

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"montsalvat/internal/telemetry"
)

// echoGroup builds a group whose handler echoes the request payload
// back as the response (in place when it fits).
func echoGroup(t *testing.T, cfg Config) (*Group, *atomic.Uint64) {
	t.Helper()
	var served atomic.Uint64
	h := func(id int, req, resp []byte, sp *telemetry.Span) ([]byte, bool, error) {
		served.Add(1)
		// req and resp alias the same slot: consume req fully first.
		cp := append([]byte(nil), req...)
		return append(resp, cp...), false, nil
	}
	g, err := NewGroup(cfg, nil, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g, &served
}

func callEcho(g *Group, payload []byte) ([]byte, error) {
	var got []byte
	err := g.TryCall(7, len(payload), nil,
		func(slot []byte) ([]byte, error) { return append(slot, payload...), nil },
		func(resp []byte) error {
			got = append([]byte(nil), resp...)
			return nil
		})
	return got, err
}

func TestRoundTrip(t *testing.T) {
	g, served := echoGroup(t, Config{Workers: 1, Slots: 4, SlotBytes: 256})
	payload := []byte("sealed through the slot")
	got, err := callEcho(g, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("echo mismatch: %q != %q", got, payload)
	}
	if served.Load() != 1 {
		t.Fatalf("served %d calls, want 1", served.Load())
	}
	st := g.Stats()
	if st.Submits != 1 || st.Consumed != 1 {
		t.Fatalf("stats %+v, want 1 submit / 1 consumed", st)
	}
	// Request and response each sealed once: plaintext + 16-byte tag.
	wantSealed := uint64(2 * (len(payload) + gcmOverhead))
	if st.SealedBytes != wantSealed {
		t.Fatalf("sealed %d bytes, want %d", st.SealedBytes, wantSealed)
	}
}

// TestSlotWraparound pushes many sequential calls through a tiny ring so
// the indices wrap the slot array repeatedly, with distinct payloads to
// catch any slot/sequence confusion (a wrong nonce would also fail the
// GCM open).
func TestSlotWraparound(t *testing.T) {
	g, served := echoGroup(t, Config{Workers: 1, Slots: 4, SlotBytes: 128})
	for i := 0; i < 64; i++ {
		payload := []byte(fmt.Sprintf("call-%d", i))
		got, err := callEcho(g, payload)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("call %d: echo mismatch %q", i, got)
		}
	}
	if served.Load() != 64 {
		t.Fatalf("served %d, want 64", served.Load())
	}
}

// TestBatchBackpressure submits a batch much larger than the ring so the
// producer must stall on completions and drain mid-batch.
func TestBatchBackpressure(t *testing.T) {
	g, served := echoGroup(t, Config{Workers: 1, Slots: 4, SlotBytes: 128})
	const n = 37 // deliberately not a multiple of the ring size
	entries := make([]BatchEntry, n)
	for i := range entries {
		payload := []byte(fmt.Sprintf("batched-%d", i))
		entries[i] = BatchEntry{
			ID:   3,
			Need: len(payload),
			Fill: func(slot []byte) ([]byte, error) { return append(slot, payload...), nil },
		}
	}
	if err := g.TryBatch(entries); err != nil {
		t.Fatal(err)
	}
	if served.Load() != n {
		t.Fatalf("served %d, want %d", served.Load(), n)
	}
	st := g.Stats()
	if st.Stalls == 0 {
		t.Fatalf("expected slot-full stalls for a %d-entry batch on a 4-slot ring, got stats %+v", n, st)
	}
	if st.Submits != n || st.Consumed != n {
		t.Fatalf("stats %+v, want %d submits/consumed", st, n)
	}
}

// TestDoorbellRace forces the consumer to sleep constantly (poll budget
// 1) while a producer publishes at arrival gaps longer than the spin
// window: every submission races the consumer's check-then-wait, and
// the Dekker protocol (publish asleep, re-check tail, then block) must
// never lose a wakeup.
func TestDoorbellRace(t *testing.T) {
	g, _ := echoGroup(t, Config{Workers: 1, Slots: 4, SlotBytes: 128, PollSpins: 1})
	for i := 0; i < 200; i++ {
		payload := []byte(fmt.Sprintf("ding-%d", i))
		done := make(chan error, 1)
		go func() {
			_, err := callEcho(g, payload)
			done <- err
		}()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("call %d: %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("call %d: lost wakeup — doorbell race", i)
		}
		if i%3 == 0 {
			time.Sleep(50 * time.Microsecond) // let the consumer go back to sleep
		}
	}
	if st := g.Stats(); st.Doorbells == 0 {
		t.Fatalf("expected doorbell rings with poll budget 1, got stats %+v", st)
	}
}

func TestTooLarge(t *testing.T) {
	g, served := echoGroup(t, Config{Workers: 1, Slots: 4, SlotBytes: 64})
	if _, err := callEcho(g, make([]byte, 65)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
	err := g.TryBatch([]BatchEntry{{ID: 1, Need: 65, Fill: func(s []byte) ([]byte, error) { return s, nil }}})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("batch: got %v, want ErrTooLarge", err)
	}
	if served.Load() != 0 {
		t.Fatal("oversized submissions must not reach the handler")
	}
}

// TestBusyFallback occupies every ring's producer side and verifies the
// group reports ErrBusy instead of blocking (the deadlock-freedom
// contract the dispatcher's frame fallback relies on).
func TestBusyFallback(t *testing.T) {
	g, _ := echoGroup(t, Config{Workers: 2, Slots: 4, SlotBytes: 64})
	for _, r := range g.rings {
		r.prodMu.Lock()
	}
	defer func() {
		for _, r := range g.rings {
			r.prodMu.Unlock()
		}
	}()
	if _, err := callEcho(g, []byte("x")); !errors.Is(err, ErrBusy) {
		t.Fatalf("got %v, want ErrBusy", err)
	}
	if st := g.Stats(); st.Busy != 1 {
		t.Fatalf("busy stat %d, want 1", st.Busy)
	}
}

func TestHandlerError(t *testing.T) {
	boom := errors.New("boom")
	h := func(id int, req, resp []byte, sp *telemetry.Span) ([]byte, bool, error) {
		return nil, false, boom
	}
	g, err := NewGroup(Config{Workers: 1, Slots: 4, SlotBytes: 64}, nil, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	_, cerr := callEcho(g, []byte("x"))
	if !errors.Is(cerr, boom) {
		t.Fatalf("got %v, want handler error", cerr)
	}
}

// TestOverflowResponse has the handler return a response larger than the
// slot via the overflow path and checks it reaches the producer intact.
func TestOverflowResponse(t *testing.T) {
	big := bytes.Repeat([]byte("L"), 4096)
	h := func(id int, req, resp []byte, sp *telemetry.Span) ([]byte, bool, error) {
		return append([]byte(nil), big...), true, nil
	}
	g, err := NewGroup(Config{Workers: 1, Slots: 4, SlotBytes: 64}, nil, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	var got []byte
	err = g.TryCall(1, 1, nil,
		func(slot []byte) ([]byte, error) { return append(slot, 'q'), nil },
		func(resp []byte) error { got = append([]byte(nil), resp...); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatalf("overflow response corrupted: %d bytes", len(got))
	}
	st := g.Stats()
	if st.Overflows != 1 || st.OverflowBytes != uint64(len(big)) {
		t.Fatalf("stats %+v, want 1 overflow of %d bytes", st, len(big))
	}
}

func TestClosedGroup(t *testing.T) {
	g, _ := echoGroup(t, Config{Workers: 1, Slots: 4, SlotBytes: 64})
	g.Close()
	if _, err := callEcho(g, []byte("x")); !errors.Is(err, ErrStopped) {
		t.Fatalf("got %v, want ErrStopped", err)
	}
	g.Close() // idempotent
}

// TestConcurrentStress hammers one small group from many producers
// mixing single calls and batches; run with -race this exercises the
// publication ordering of tail/comp and both doorbell directions.
func TestConcurrentStress(t *testing.T) {
	g, served := echoGroup(t, Config{Workers: 2, Slots: 8, SlotBytes: 256, PollSpins: 4})
	const (
		producers = 8
		perProd   = 50
	)
	var wg sync.WaitGroup
	var riding, fell atomic.Uint64
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				if i%5 == 4 {
					entries := make([]BatchEntry, 3)
					for j := range entries {
						payload := []byte(fmt.Sprintf("p%d-b%d-%d", p, i, j))
						entries[j] = BatchEntry{ID: 2, Need: len(payload),
							Fill: func(slot []byte) ([]byte, error) { return append(slot, payload...), nil }}
					}
					switch err := g.TryBatch(entries); {
					case err == nil:
						riding.Add(3)
					case errors.Is(err, ErrBusy):
						fell.Add(3)
					default:
						t.Errorf("batch: %v", err)
						return
					}
					continue
				}
				payload := []byte(fmt.Sprintf("p%d-c%d", p, i))
				got, err := callEcho(g, payload)
				switch {
				case err == nil:
					riding.Add(1)
					if !bytes.Equal(got, payload) {
						t.Errorf("p%d call %d: echo mismatch", p, i)
						return
					}
				case errors.Is(err, ErrBusy):
					fell.Add(1)
				default:
					t.Errorf("p%d call %d: %v", p, i, err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if served.Load() != riding.Load() {
		t.Fatalf("served %d != rode %d", served.Load(), riding.Load())
	}
	if riding.Load() == 0 {
		t.Fatal("no call rode the rings")
	}
	if g.Occupancy() != 0 {
		t.Fatalf("occupancy %d after quiesce, want 0", g.Occupancy())
	}
}
