package ring

import (
	"errors"
	"sync"
	"sync/atomic"

	"montsalvat/internal/cycles"
	"montsalvat/internal/simcfg"
	"montsalvat/internal/telemetry"
)

// Config sizes one ring group (one crossing direction).
type Config struct {
	// Workers is the number of rings, each with its own resident
	// consumer worker.
	Workers int
	// Slots is the submission-queue depth per ring (rounded up to a
	// power of two).
	Slots int
	// SlotBytes is the plaintext payload capacity of one slot; the
	// backing buffer adds the 16-byte GCM tag.
	SlotBytes int
	// PollSpins is the poll budget before the sleep protocol engages
	// (DefaultPollSpins when zero).
	PollSpins int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = simcfg.DefaultRingWorkers
	}
	if c.Slots <= 0 {
		c.Slots = simcfg.DefaultRingSlots
	}
	if c.SlotBytes <= 0 {
		c.SlotBytes = simcfg.DefaultRingSlotBytes
	}
	if c.PollSpins <= 0 {
		c.PollSpins = DefaultPollSpins
	}
	return c
}

// BatchEntry is one void (result-independent) call submitted through
// TryBatch. Fill encodes the complete submission into the slot — it
// must use the exact-size slot writers and may not reallocate.
type BatchEntry struct {
	ID   int
	Need int
	Sp   *telemetry.Span
	Fill func(slot []byte) ([]byte, error)
}

// Stats is an aggregate snapshot of a ring group's activity counters.
type Stats struct {
	// Submits counts published submission entries.
	Submits uint64
	// Doorbells counts submissions that found the consumer asleep and
	// paid the futex-wake cost (the doorbell rate is Doorbells/Submits).
	Doorbells uint64
	// Stalls counts slot-full producer stalls (ring backpressure).
	Stalls uint64
	// Busy counts TryCall/TryBatch attempts that found every producer
	// occupied and fell back to the frame path.
	Busy uint64
	// Wakeups counts consumer drain passes; Consumed/Wakeups is the
	// adaptive batch size.
	Wakeups uint64
	// Consumed counts entries drained by consumers.
	Consumed uint64
	// Overflows counts responses too large for in-place sealing that
	// crossed as plain bounce buffers instead.
	Overflows uint64
	// SealedBytes is the total bytes through the in-place crypto pass
	// (both directions).
	SealedBytes uint64
	// OverflowBytes is the total bytes bounced via overflow buffers.
	OverflowBytes uint64
}

// Group is a set of SPSC rings serving one crossing direction. Callers
// submit through TryCall/TryBatch, which are strictly non-blocking on
// ring acquisition: when every ring's producer side is occupied the
// group reports ErrBusy and the dispatcher falls back to the frame
// path, so nested call chains can never deadlock on ring capacity.
type Group struct {
	cfg   Config
	rings []*Ring
	clock *cycles.Clock

	next   atomic.Uint32
	busy   atomic.Uint64
	stalls atomic.Uint64

	hBatch *telemetry.Histogram

	closed atomic.Bool
	stopWg sync.WaitGroup
}

// NewGroup builds the rings, generates the group's AES-256-GCM session
// key, and starts one resident consumer worker per ring. enter, when
// non-nil, establishes the worker's residency on the consuming side
// (e.g. taking an enclave TCS slot) and returns the matching leave.
func NewGroup(cfg Config, clock *cycles.Clock, h Handler, enter func() (func(), error)) (*Group, error) {
	cfg = cfg.withDefaults()
	key, err := generateKey()
	if err != nil {
		return nil, err
	}
	aead, err := newAEAD(key)
	if err != nil {
		return nil, err
	}
	g := &Group{cfg: cfg, clock: clock}
	for i := 0; i < cfg.Workers; i++ {
		r := newRing(i, cfg.Slots, cfg.SlotBytes, cfg.PollSpins, aead, clock, h)
		g.rings = append(g.rings, r)
		g.stopWg.Add(1)
		go r.serve(enter, g.observeBatch, &g.stopWg)
	}
	return g, nil
}

// SetTelemetry attaches the adaptive-batching histogram (entries
// consumed per consumer wakeup) for this group's direction.
func (g *Group) SetTelemetry(reg *telemetry.Registry, dir string) {
	if g == nil || reg == nil {
		return
	}
	g.hBatch = reg.Histogram("montsalvat_ring_batch_per_wakeup", "dir", dir)
}

func (g *Group) observeBatch(n int) {
	g.hBatch.Observe(int64(n))
}

// SlotBytes reports the plaintext payload capacity of one slot; larger
// submissions must take the frame path.
func (g *Group) SlotBytes() int {
	if g == nil {
		return 0
	}
	return g.cfg.SlotBytes
}

// acquire try-locks a ring's producer side, round-robin from a rotating
// start so load spreads across rings. Strictly non-blocking.
func (g *Group) acquire() *Ring {
	start := int(g.next.Add(1))
	for i := 0; i < len(g.rings); i++ {
		r := g.rings[(start+i)%len(g.rings)]
		if r.prodMu.TryLock() {
			return r
		}
	}
	g.busy.Add(1)
	return nil
}

// TryCall submits one call through a ring: fill encodes the request
// directly into the slot (zero intermediate copies), the sealed slot
// crosses, and done — when non-nil — receives the opened response,
// which aliases slot memory and is valid only until TryCall returns.
// need is the exact encoded request size (from the wire size
// precomputes). Returns ErrTooLarge / ErrBusy / ErrStopped without
// side effects when the call cannot ride the ring; any other error is
// from the remote handler or from done.
func (g *Group) TryCall(id, need int, sp *telemetry.Span, fill func(slot []byte) ([]byte, error), done func(resp []byte) error) error {
	if g == nil || g.closed.Load() {
		return ErrStopped
	}
	if need > g.cfg.SlotBytes {
		return ErrTooLarge
	}
	r := g.acquire()
	if r == nil {
		return ErrBusy
	}
	defer r.prodMu.Unlock()
	s, idx, err := g.reserve(r)
	if err != nil {
		return err
	}
	plain, err := fill(s.buf[:0])
	if err != nil {
		return err
	}
	s.id = id
	s.sp = sp
	s.reqN = len(r.seal(s, plain, nonceReq))
	r.publish(idx)
	if err := r.awaitComp(idx); err != nil {
		return err
	}
	err = r.finish(s, done)
	r.reaped = idx + 1
	return err
}

// TryBatch submits a set of void calls as individual ring entries —
// the adaptive-batching shape: every entry published while the
// consumer is draining rides the same wakeup. When the ring fills
// mid-batch the producer stalls on the oldest completion and drains
// (backpressure), so batches larger than the ring depth still go
// through. Returns ErrTooLarge (before submitting anything) when any
// entry exceeds the slot, ErrBusy when no producer slot is free; after
// submission, handler errors are joined.
func (g *Group) TryBatch(entries []BatchEntry) error {
	if g == nil || g.closed.Load() {
		return ErrStopped
	}
	if len(entries) == 0 {
		return nil
	}
	for _, e := range entries {
		if e.Need > g.cfg.SlotBytes {
			return ErrTooLarge
		}
	}
	r := g.acquire()
	if r == nil {
		return ErrBusy
	}
	defer r.prodMu.Unlock()
	var errs []error
	first := r.reaped // next completion whose outcome we still owe the caller
	for i := range entries {
		e := &entries[i]
		s, idx, err := g.reserve(r)
		if err != nil {
			errs = append(errs, err)
			break
		}
		// A full ring makes reserve drain completed slots (backpressure);
		// collect their handler errors as reaped advances past them.
		for ; first < r.reaped; first++ {
			if ferr := r.finish(&r.slots[first&r.mask], nil); ferr != nil {
				errs = append(errs, ferr)
			}
		}
		plain, err := e.Fill(s.buf[:0])
		if err != nil {
			// Reserved but never published: tail is unchanged, so the
			// slot is simply handed out again next time.
			errs = append(errs, err)
			break
		}
		s.id = e.ID
		s.sp = e.Sp
		s.reqN = len(r.seal(s, plain, nonceReq))
		r.publish(idx)
	}
	if tail := r.tail.Load(); tail > first {
		if err := r.awaitComp(tail - 1); err != nil {
			errs = append(errs, err)
		} else {
			for ; first < tail; first++ {
				if ferr := r.finish(&r.slots[first&r.mask], nil); ferr != nil {
					errs = append(errs, ferr)
				}
			}
			r.reaped = tail
		}
	}
	return errors.Join(errs...)
}

// reserve wraps Ring.reserve with the group's stall accounting.
func (g *Group) reserve(r *Ring) (*slot, uint64, error) {
	if r.tail.Load()-r.reaped >= uint64(len(r.slots)) {
		g.stalls.Add(1)
	}
	return r.reserve()
}

// Occupancy reports submissions currently in flight across all rings.
func (g *Group) Occupancy() int {
	if g == nil {
		return 0
	}
	total := 0
	for _, r := range g.rings {
		total += r.occupancy()
	}
	return total
}

// Stats aggregates the group's counters.
func (g *Group) Stats() Stats {
	var st Stats
	if g == nil {
		return st
	}
	st.Busy = g.busy.Load()
	st.Stalls = g.stalls.Load()
	for _, r := range g.rings {
		st.Submits += r.stats.submits.Load()
		st.Doorbells += r.stats.doorbells.Load()
		st.Wakeups += r.stats.wakeups.Load()
		st.Consumed += r.stats.consumed.Load()
		st.Overflows += r.stats.overflows.Load()
		st.SealedBytes += r.stats.sealed.Load()
		st.OverflowBytes += r.stats.overBytes.Load()
	}
	return st
}

// Close stops the consumer workers and rejects further submissions.
// Safe to call more than once.
func (g *Group) Close() {
	if g == nil || !g.closed.CompareAndSwap(false, true) {
		return
	}
	for _, r := range g.rings {
		close(r.stop)
	}
	g.stopWg.Wait()
}
